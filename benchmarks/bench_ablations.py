"""E9-E11 — ablations of design choices the paper motivates.

* **E9 — collection-relative vs fixed-threshold classification.**  The
  paper's classifier sets thresholds at avg ± stddev of the score
  distribution (Sec. 5.1 footnote).  Ablation: a fixed absolute
  threshold tuned on a good lab, evaluated on a degraded lab, against
  the adaptive classifier on both.
* **E10 — single Data-Enrichment operator vs per-QA enrichment.**  The
  compiler's Sec. 6.1 rule adds one DE for the whole view.  Ablation:
  each QA fetching its own variables issues overlapping repository
  reads; we count keyed lookups and time both strategies.
* **E11 — learned vs hand-crafted decision models.**  Paper current
  work (ii): deriving decision models from example data.  We train a
  decision tree on one world's ground truth and compare its filtering
  precision/recall with the hand-crafted classifier on a fresh world.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import write_table
from repro.annotation.map import AnnotationMap
from repro.annotation.store import AnnotationStore
from repro.proteomics import ProteomicsScenario, SpectrometerSettings
from repro.proteomics.results import ImprintResultSet
from repro.qa import (
    ImprintOutputAnnotator,
    LabeledExample,
    PIScoreClassifierQA,
    ThresholdClassifierQA,
    learn_quality_assertion,
)
from repro.rdf import Q, URIRef


def make_world(seed: int, detection: float, noise: int):
    settings = SpectrometerSettings(
        detection_rate=detection, mass_error_ppm=30.0, noise_peaks=noise
    )
    scenario = ProteomicsScenario.generate(
        seed=seed, n_proteins=250, n_spots=8, spectrometer_settings=settings
    )
    results = ImprintResultSet(scenario.identify_all())
    annotator = ImprintOutputAnnotator(results)
    amap = annotator.annotate(
        results.items(),
        {Q.HitRatio, Q.Coverage, Q.PeptidesCount},
    )
    return scenario, results, amap


def precision_recall(scenario, results, kept: List[URIRef]):
    truth = {
        (sample, accession)
        for sample, accessions in scenario.ground_truth.items()
        for accession in accessions
    }
    pairs = {(results.run_id(i), results.accession(i)) for i in kept}
    true_kept = len(pairs & truth)
    return (
        true_kept / max(1, len(pairs)),
        true_kept / max(1, len(truth)),
    )


def high_items(qa, amap, tag: str) -> List[URIRef]:
    out = qa.execute(amap)
    return [
        item
        for item in out.items()
        if out.get_tag(item, tag) is not None
        and out.get_tag(item, tag).plain() == Q.high
    ]


def test_e9_adaptive_vs_fixed_thresholds(benchmark):
    """Adaptive avg±std classification survives a lab-quality shift."""

    def experiment():
        good = make_world(seed=5, detection=0.8, noise=6)
        bad = make_world(seed=6, detection=0.4, noise=40)

        adaptive = PIScoreClassifierQA()
        # Fixed threshold tuned on the good lab: the mean+std of the
        # good lab's score distribution, frozen as an absolute cut.
        from repro.qa.classifier import mean_and_stddev
        from repro.qa.pi_score import UniversalPIScoreQA

        scorer = UniversalPIScoreQA()
        good_scores = [
            value
            for value in scorer.compute(
                good[2].items(),
                [scorer.evidence_vector(good[2], i) for i in good[2].items()],
            )
            if value is not None
        ]
        mean, std = mean_and_stddev(good_scores)
        frozen_cut = mean + std

        fixed = ThresholdClassifierQA(
            "fixed",
            "ScoreClass",
            {"hitRatio": Q.HitRatio, "coverage": Q.Coverage},
            lambda v: (
                None
                if v.get("hitRatio") is None or v.get("coverage") is None
                else 50.0 * v["hitRatio"] + 50.0 * v["coverage"]
            ),
            bands=[(frozen_cut, Q.mid)],
            top_class=Q.high,
            scheme=Q.PIScoreClassification,
        )

        rows = []
        for label, (scenario, results, amap) in (("good lab", good),
                                                 ("bad lab", bad)):
            for name, qa in (("adaptive", adaptive), ("fixed", fixed)):
                kept = high_items(qa, amap, "ScoreClass")
                precision, recall = precision_recall(scenario, results, kept)
                rows.append((label, name, len(kept), precision, recall))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [f"{'world':<10} {'classifier':<10} {'kept':>5} "
             f"{'precision':>9} {'recall':>7}"]
    by_key: Dict[Tuple[str, str], Tuple[int, float, float]] = {}
    for world, name, kept, precision, recall in rows:
        lines.append(
            f"{world:<10} {name:<10} {kept:>5} {precision:>9.2f} {recall:>7.2f}"
        )
        by_key[(world, name)] = (kept, precision, recall)
    write_table(
        "E9_adaptive_thresholds",
        "Adaptive (avg±std) vs fixed-threshold classification",
        lines,
    )
    # On the degraded lab the adaptive classifier must retain clearly
    # better recall than the frozen threshold at comparable precision.
    adaptive_bad = by_key[("bad lab", "adaptive")]
    fixed_bad = by_key[("bad lab", "fixed")]
    assert adaptive_bad[2] > fixed_bad[2]
    assert adaptive_bad[1] >= 0.8


class CountingStore(AnnotationStore):
    """Annotation store instrumented with a lookup counter."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.lookups = 0

    def lookup(self, data_item, evidence_type):
        self.lookups += 1
        return super().lookup(data_item, evidence_type)


def test_e10_single_de_vs_per_qa_enrichment(benchmark, paper_scenario,
                                            paper_runs):
    results = ImprintResultSet(paper_runs)
    items = results.items()
    annotator = ImprintOutputAnnotator(results)

    #: Evidence needs of the three example QAs (overlapping on purpose,
    #: exactly as the Sec. 5.1 view overlaps).
    qa_needs = [
        {Q.HitRatio, Q.Coverage, Q.PeptidesCount},
        {Q.HitRatio},
        {Q.HitRatio, Q.Coverage},
    ]

    def populate() -> CountingStore:
        store = CountingStore("cache", persistent=False)
        amap = annotator.annotate(
            items, {Q.HitRatio, Q.Coverage, Q.PeptidesCount}
        )
        store.annotate_map(amap)
        store.lookups = 0
        return store

    def single_de() -> int:
        store = populate()
        union = set().union(*qa_needs)
        amap = AnnotationMap(items)
        store.enrich(amap, items, union)
        for _ in qa_needs:
            pass  # every QA reads the shared map: no further lookups
        return store.lookups

    def per_qa() -> int:
        store = populate()
        for needs in qa_needs:
            amap = AnnotationMap(items)
            store.enrich(amap, items, needs)
        return store.lookups

    single_lookups = single_de()
    per_qa_lookups = per_qa()
    timed = benchmark.pedantic(single_de, rounds=3, iterations=1)
    assert timed == single_lookups

    lines = [
        f"items: {len(items)}",
        f"single-DE repository lookups: {single_lookups}",
        f"per-QA repository lookups:    {per_qa_lookups}",
        f"read amplification avoided:   {per_qa_lookups / single_lookups:.2f}x",
    ]
    write_table(
        "E10_single_de", "Single Data-Enrichment vs per-QA enrichment", lines
    )
    assert per_qa_lookups > single_lookups


def test_e11_learned_vs_handcrafted_qa(benchmark):
    """A tree learned from one world's truth, evaluated on a fresh world."""

    def experiment():
        train_scenario, train_results, train_map = make_world(
            seed=31, detection=0.65, noise=16
        )
        test_scenario, test_results, test_map = make_world(
            seed=47, detection=0.65, noise=16
        )

        examples = []
        for item in train_results.items():
            hit = train_results.hit(item)
            label = (
                Q.high
                if train_scenario.is_true_positive(
                    train_results.run_id(item), hit.accession
                )
                else Q.low
            )
            examples.append(
                LabeledExample(
                    {
                        "hitRatio": hit.hit_ratio,
                        "coverage": hit.mass_coverage,
                        "peptidesCount": float(hit.peptides_count),
                    },
                    label,
                )
            )
        learned = learn_quality_assertion(
            "Learned",
            "ScoreClass",
            {
                "hitRatio": Q.HitRatio,
                "coverage": Q.Coverage,
                "peptidesCount": Q.PeptidesCount,
            },
            examples,
            tag_syn_type=Q["class"],
            tag_sem_type=Q.PIScoreClassification,
            min_samples_leaf=2,
        )
        handcrafted = PIScoreClassifierQA()

        rows = []
        for name, qa in (("hand-crafted", handcrafted), ("learned", learned)):
            kept = high_items(qa, test_map, "ScoreClass")
            precision, recall = precision_recall(
                test_scenario, test_results, kept
            )
            rows.append((name, len(kept), precision, recall))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [f"{'model':<14} {'kept':>5} {'precision':>9} {'recall':>7}"]
    for name, kept, precision, recall in rows:
        lines.append(f"{name:<14} {kept:>5} {precision:>9.2f} {recall:>7.2f}")
    write_table(
        "E11_learned_qa", "Learned vs hand-crafted quality assertion", lines
    )
    by_name = {name: (p, r) for name, _, p, r in rows}
    # The learned model must be competitive with the expert heuristic
    # (within 10% precision, at least comparable recall).
    assert by_name["learned"][0] >= by_name["hand-crafted"][0] - 0.1
    assert by_name["learned"][1] >= by_name["hand-crafted"][1] - 0.1
