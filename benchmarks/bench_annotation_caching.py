"""E5 — persistent annotations vs on-the-fly computation (Sec. 4).

The paper motivates the Annotation / Data-Enrichment split: "when the
quality process involves querying a database with stable data, the
quality annotations are likely to be long-lived and can be made
persistent", whereas evidence produced within the computing process
(Imprint) is scoped to one execution.  This experiment measures both
regimes over repeated view executions against a stable Uniprot-like
database with a deliberately expensive annotation function:

* **on-the-fly** — evidence recomputed into the per-execution cache on
  every run (the only option for execution-scoped evidence);
* **persistent** — evidence computed once into a persistent repository,
  later runs perform Data-Enrichment reads only.

Shape expected: persistent mode amortises the annotation cost, so a
run against the warm repository is several times faster.
"""

from __future__ import annotations

import time
from typing import Any, List, Mapping, Optional, Set

import pytest

from benchmarks.conftest import write_table
from repro.annotation.functions import AnnotationFunction
from repro.annotation.map import AnnotationMap
from repro.core.framework import QuratorFramework
from repro.proteomics.results import ImprintResultSet
from repro.qa.annotators import EvidenceCodeAnnotator
from repro.rdf import Q, URIRef

#: Simulated per-item latency of consulting the external source
#: (e.g. an ISI impact-factor table or a remote Uniprot query).
LOOKUP_LATENCY_S = 0.0005


class SlowEvidenceCodeAnnotator(AnnotationFunction):
    """Evidence-code annotation with a simulated external-source cost."""

    function_class = Q.EvidenceCodeAnnotation
    provides = frozenset({Q.EvidenceCode})

    def __init__(self, results, uniprot) -> None:
        self._inner = EvidenceCodeAnnotator(results, uniprot)

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        for _ in items:
            time.sleep(LOOKUP_LATENCY_S)
        return self._inner.annotate(items, evidence_types, context)


VIEW_TEMPLATE = """
<QualityView name="evidence-code-view">
  {annotator}
  <QualityAssertion serviceName="CurationReliability"
                    serviceType="q:HRScore"
                    tagName="Reliability" tagSynType="q:score">
    <variables repositoryRef="{repo}">
      <var variableName="hitRatio" evidence="q:EvidenceCode"/>
    </variables>
  </QualityAssertion>
  <action name="trusted">
    <filter><condition>Reliability &gt;= 300</condition></filter>
  </action>
</QualityView>
"""

ANNOTATOR_BLOCK = """
  <Annotator serviceName="SlowEvidenceCode"
             serviceType="q:EvidenceCodeAnnotation">
    <variables repositoryRef="{repo}" persistent="{persistent}">
      <var evidence="q:EvidenceCode"/>
    </variables>
  </Annotator>
"""


def make_framework(scenario, results):
    framework = QuratorFramework()
    framework.register_standard_services()
    framework.deploy_annotation_service(
        "SlowEvidenceCode",
        SlowEvidenceCodeAnnotator(results, scenario.uniprot),
    )
    framework.create_repository("curated", persistent=True)
    return framework


def test_on_the_fly_annotation(benchmark, paper_scenario, paper_runs):
    """Every execution re-annotates into the transient cache."""
    results = ImprintResultSet(paper_runs)
    framework = make_framework(paper_scenario, results)
    xml = VIEW_TEMPLATE.format(
        annotator=ANNOTATOR_BLOCK.format(repo="cache", persistent="false"),
        repo="cache",
    )
    view = framework.quality_view(xml)
    items = results.items()

    outcome = benchmark.pedantic(
        lambda: view.run(items), rounds=3, iterations=1, warmup_rounds=1
    )
    assert outcome.annotation_map.get_evidence(items[0], Q.EvidenceCode)


def test_persistent_annotation_warm(benchmark, paper_scenario, paper_runs):
    """Annotate once into a persistent repository; later runs only read."""
    results = ImprintResultSet(paper_runs)
    framework = make_framework(paper_scenario, results)
    items = results.items()

    # Cold run: a view WITH the annotator writes the persistent repo.
    warmup_xml = VIEW_TEMPLATE.format(
        annotator=ANNOTATOR_BLOCK.format(repo="curated", persistent="true"),
        repo="curated",
    )
    cold_start = time.perf_counter()
    framework.quality_view(warmup_xml).run(items)
    cold_duration = time.perf_counter() - cold_start

    # Warm runs: a view WITHOUT the annotator reads the repository.
    warm_xml = VIEW_TEMPLATE.format(annotator="", repo="curated")
    warm_view = framework.quality_view(warm_xml)
    outcome = benchmark.pedantic(
        lambda: warm_view.run(items), rounds=3, iterations=1, warmup_rounds=1
    )
    assert outcome.annotation_map.get_evidence(items[0], Q.EvidenceCode)

    warm_duration = benchmark.stats.stats.mean
    speedup = cold_duration / warm_duration
    lines = [
        f"items annotated: {len(items)}",
        f"simulated external-lookup latency: {LOOKUP_LATENCY_S * 1e3:.2f} ms/item",
        f"cold run (annotate + persist): {cold_duration * 1e3:.1f} ms",
        f"warm run (enrichment read only): {warm_duration * 1e3:.1f} ms",
        f"speedup from persistent annotations: {speedup:.1f}x",
    ]
    write_table("E5_caching", "Persistent vs on-the-fly annotation", lines)
    assert speedup > 1.5, "persistent annotations must amortise the cost"
