"""E17 — staged compiler passes: invocations saved, latency preserved.

ISSUE 5 replaced the single-shot quality-view compiler with a staged
pipeline (frontend -> pass manager -> backend).  Two claims to pin
down with numbers:

* on a workload shaped for the optimizer — a prunable annotator, two
  fusable HRScore assertions, a pushable filter conjunct — the
  observed-mode plan must pay **>= 25% fewer service invocations** per
  enactment than the reference compilation, with identical filter
  verdicts (byte-level equivalence is enforced by
  ``tests/test_compile_differential.py``);
* on a workload where no invocation-saving pass fires (the Sec. 5.1
  example view under the default all-outputs-observed contract) the
  optimized plan must show **no end-to-end latency regression**
  (within ~1.15x of the reference plan, min-of-repeats).

The workload mirrors the deterministic pushdown view used by the
compiler test suite; a per-invocation sleep stands in for the remote
round trips of Sec. 6.3, so saved invocations translate directly into
saved wall-clock.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_table
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.qv import parse_quality_view
from repro.qv.passes import CompileOptions
from repro.workflow.enactor import Enactor

N_JOBS = 12
SERVICE_LATENCY_S = 0.010  # simulated per-invocation round trip

PUSHDOWN_XML = """
<QualityView name="pushdown-workload">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:coverage"/>
      <var evidence="q:hitRatio"/>
      <var evidence="q:peptidesCount"/>
    </variables>
  </Annotator>
  <Annotator serviceName="EldpAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:masses"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="HR score" serviceType="q:HRScore"
                    tagName="HR" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="HR score b" serviceType="q:HRScore"
                    tagName="HRB" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="HR MC score"
                    serviceType="q:UniversalPIScore2"
                    tagName="HRMC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:coverage"/>
      <var variableName="hitRatio" evidence="q:hitRatio"/>
      <var variableName="peptidesCount" evidence="q:peptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep good">
    <filter><condition>HR &gt; 40 and HRMC &gt; 30</condition></filter>
  </action>
</QualityView>
"""

OBSERVED = CompileOptions(observed_outputs=frozenset({"keep_good_accepted"}))


class LatencyInjector:
    """Counts round trips; optionally charges each one a fixed delay."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.delay_s = delay_s
        self.calls = 0

    def on_invocation(self, service) -> None:
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)


def _world(bench_seed):
    scenario = ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=200, n_spots=6
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    datasets = [
        list(results.items_of_run(runs[k % len(runs)].run_id))
        for k in range(N_JOBS)
    ]
    return framework, datasets


def _run_jobs(framework, workflow, datasets):
    enactor = Enactor()
    outputs = []
    started = time.perf_counter()
    for items in datasets:
        framework.repositories.clear_transient()
        outputs.append(
            enactor.run(workflow, {"dataSet": items}).get(
                "keep_good_accepted"
            )
        )
    return time.perf_counter() - started, outputs


def _best_of(framework, workflow, datasets, repeats=3):
    return min(
        _run_jobs(framework, workflow, datasets)[0] for _ in range(repeats)
    )


def test_pushdown_workload_saves_invocations(bench_seed):
    framework, datasets = _world(bench_seed)
    injector = LatencyInjector(SERVICE_LATENCY_S)
    for service in framework.services:
        service.fault_injector = injector

    spec = parse_quality_view(PUSHDOWN_XML)
    compile_started = time.perf_counter()
    reference = framework.compiler.compile(spec, optimize=False)
    reference_compile_ms = (time.perf_counter() - compile_started) * 1e3
    compile_started = time.perf_counter()
    optimized, report = framework.compiler.compile_with_report(
        spec, options=OBSERVED
    )
    optimized_compile_ms = (time.perf_counter() - compile_started) * 1e3

    injector.calls = 0
    ref_seconds, ref_outputs = _run_jobs(framework, reference, datasets)
    ref_calls = injector.calls
    injector.calls = 0
    opt_seconds, opt_outputs = _run_jobs(framework, optimized, datasets)
    opt_calls = injector.calls

    assert opt_outputs == ref_outputs, "filter verdicts diverged"
    saving = 1 - opt_calls / ref_calls
    speedup = ref_seconds / opt_seconds

    # -- latency flatness where no invocation-saving pass fires ----------
    for service in framework.services:
        service.fault_injector = None
    flat_spec = parse_quality_view(example_quality_view_xml())
    flat_reference = framework.compiler.compile(flat_spec, optimize=False)
    flat_optimized = framework.compiler.compile(flat_spec)
    flat_datasets = datasets[:4]
    flat_ref = _best_of(framework, flat_reference, flat_datasets)
    flat_opt = _best_of(framework, flat_optimized, flat_datasets)
    flat_ratio = flat_opt / flat_ref

    lines = [
        f"jobs: {N_JOBS}, simulated round trip: "
        f"{SERVICE_LATENCY_S * 1e3:.0f} ms, passes fired: "
        f"{', '.join(report.fired())}",
        f"{'pipeline':>10} {'invocations':>12} {'per job':>8} "
        f"{'wall (s)':>9} {'compile (ms)':>13}",
        f"{'reference':>10} {ref_calls:>12} {ref_calls / N_JOBS:>8.1f} "
        f"{ref_seconds:>9.2f} {reference_compile_ms:>13.1f}",
        f"{'optimized':>10} {opt_calls:>12} {opt_calls / N_JOBS:>8.1f} "
        f"{opt_seconds:>9.2f} {optimized_compile_ms:>13.1f}",
        f"invocations saved: {saving:.0%} (acceptance: >= 25%), "
        f"end-to-end speedup: {speedup:.2f}x",
        f"no-pass workload latency ratio (optimized/reference): "
        f"{flat_ratio:.2f}x (acceptance: <= ~1.15x)",
    ]
    write_table(
        "E17_compiler_passes",
        "Staged compiler passes vs reference compilation",
        lines,
        seed=bench_seed,
    )

    summary = {
        "experiment": "E17_compiler_passes",
        "seed": bench_seed,
        "workload": {
            "n_jobs": N_JOBS,
            "service_latency_ms": SERVICE_LATENCY_S * 1e3,
            "passes_fired": report.fired(),
        },
        "invocations": {
            "reference": ref_calls,
            "optimized": opt_calls,
            "saving": round(saving, 3),
        },
        "wall_seconds": {
            "reference": round(ref_seconds, 3),
            "optimized": round(opt_seconds, 3),
            "speedup": round(speedup, 2),
        },
        "compile_ms": {
            "reference": round(reference_compile_ms, 2),
            "optimized": round(optimized_compile_ms, 2),
        },
        "no_pass_latency_ratio": round(flat_ratio, 3),
        "acceptance": {
            "invocation_saving_min": 0.25,
            "invocation_saving_ok": saving >= 0.25,
            "no_pass_latency_ratio_max": 1.15,
            "no_pass_latency_ratio_ok": flat_ratio <= 1.15,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_E17.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    assert saving >= 0.25, (
        f"optimized plan still pays {opt_calls}/{ref_calls} invocations "
        f"({saving:.0%} saved; need >= 25%)"
    )
    assert flat_ratio <= 1.15, (
        f"optimized plan is {flat_ratio:.2f}x the reference on a workload "
        f"where no invocation-saving pass fires (need <= 1.15x)"
    )
