"""E12 — comparing evidence sources: Stead metrics vs target-decoy FDR.

The framework's purpose is letting users *compare* quality criteria
(Sec. 2: "different QAs, using the same or different types of evidence,
capture different and possibly contrasting user perceptions of
quality").  This experiment runs three alternative gates over the same
identifications:

* the paper's HR/MC classifier (``ScoreClass in q:high``);
* a target-decoy FDR gate (``DecoyFDR <= 5%``);
* their conjunction.

Shape expected: the gates genuinely differ (contrasting perceptions);
the conjunction is at least as precise as either conjunct.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_table
from repro.core.framework import QuratorFramework
from repro.proteomics.decoy import (
    DecoyFDRAnnotator,
    DecoySearcher,
    declare_decoy_evidence,
)
from repro.proteomics.results import ImprintResultSet
from repro.qa.annotators import ImprintOutputAnnotator
from repro.rdf import Q

VIEW_TEMPLATE = """
<QualityView name="gate-comparison">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:hitRatio"/>
      <var evidence="q:coverage"/>
    </variables>
  </Annotator>
  <Annotator serviceName="DecoyFDRAnnotator"
             serviceType="q:DecoyFDRAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:DecoyFDR"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="PIScoreClassifier"
                    serviceType="q:PIScoreClassifier"
                    tagSemType="q:PIScoreClassification"
                    tagName="ScoreClass" tagSynType="q:class">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
      <var variableName="coverage" evidence="q:coverage"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="FDRScore" serviceType="q:HRScore"
                    tagName="FDR pct" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:DecoyFDR"/>
    </variables>
  </QualityAssertion>
  <action name="gate">
    <filter><condition>{condition}</condition></filter>
  </action>
</QualityView>
"""

GATES = [
    ("HR/MC classifier", "ScoreClass in q:high"),
    ("decoy FDR", "FDR pct <= 5"),
    ("conjunction", "ScoreClass in q:high and FDR pct <= 5"),
]


def test_gate_comparison(benchmark, paper_scenario, paper_runs):
    scenario = paper_scenario
    searcher = DecoySearcher(scenario.reference, scenario.imprint.settings)
    results = ImprintResultSet(paper_runs)
    fdr_by_run = {
        run.run_id: searcher.fdr_for_run(
            run, scenario.pedro.get(run.run_id).peaks
        )
        for run in paper_runs
    }

    framework = QuratorFramework()
    framework.register_standard_services()
    declare_decoy_evidence(framework.iq_model)
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", ImprintOutputAnnotator(results)
    )
    framework.deploy_annotation_service(
        "DecoyFDRAnnotator", DecoyFDRAnnotator(results, fdr_by_run)
    )

    truth = {
        (s, a)
        for s, accs in scenario.ground_truth.items()
        for a in accs
    }

    def run_gate(condition: str):
        escaped = (
            condition.replace("&", "&amp;")
            .replace("<", "&lt;")
            .replace(">", "&gt;")
        )
        view = framework.quality_view(VIEW_TEMPLATE.format(condition=escaped))
        outcome = view.run(results.items())
        kept = outcome.surviving("gate")
        pairs = {(results.run_id(i), results.accession(i)) for i in kept}
        precision = len(pairs & truth) / max(1, len(pairs))
        recall = len(pairs & truth) / len(truth)
        return frozenset(kept), precision, recall

    def experiment():
        return {name: run_gate(cond) for name, cond in GATES}

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [f"{'gate':<18} {'kept':>5} {'precision':>9} {'recall':>7}"]
    for name, _ in GATES:
        kept, precision, recall = outcomes[name]
        lines.append(
            f"{name:<18} {len(kept):>5} {precision:>9.2f} {recall:>7.2f}"
        )
    write_table(
        "E12_fdr_evidence",
        "Alternative quality gates over the same identifications",
        lines,
    )

    hrmc_kept, hrmc_p, _ = outcomes["HR/MC classifier"]
    fdr_kept, fdr_p, _ = outcomes["decoy FDR"]
    both_kept, both_p, _ = outcomes["conjunction"]
    # the two single-evidence gates express different perceptions
    assert hrmc_kept != fdr_kept
    # conjunction keeps the intersection exactly
    assert both_kept == (hrmc_kept & fdr_kept)
    # and is at least as precise as either conjunct
    assert both_p >= max(hrmc_p, fdr_p) - 1e-9
