"""E2/E8 — Figures 1 & 6: workflow structures, compilation and scavenging.

Figure 1 and Figure 6 are structural artefacts: the original ISPIDER
workflow and the compiled quality workflow embedded within it.  This
benchmark regenerates both structures (asserting the paper's topology
rules from Sec. 6.1), times QV compilation, shows how compile time
scales with the number of QAs (E8), and times the WSDL scavenger over
growing service registries.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_table
from repro.core.framework import QuratorFramework
from repro.core.ispider import (
    LiveImprintAnnotator,
    ResultSetHolder,
    build_deployment,
    example_quality_view_xml,
)
from repro.qv import parse_quality_view
from repro.qv.compiler import CONSOLIDATE, DATA_ENRICHMENT
from repro.rdf import Q
from repro.services import ServiceRegistry
from repro.services.interface import QualityAssertionService
from repro.qa.pi_score import HRScoreQA
from repro.workflow.model import ControlLink
from repro.workflow.scavenger import Scavenger


def make_framework():
    framework = QuratorFramework()
    framework.register_standard_services()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(ResultSetHolder())
    )
    return framework


def test_fig6_topology_and_compile_time(benchmark, paper_scenario):
    framework = make_framework()
    spec = parse_quality_view(example_quality_view_xml())
    workflow = benchmark(lambda: framework.compiler.compile(spec))

    # Fig. 6 structure (Sec. 6.1 rules).
    assert ControlLink("ImprintOutputAnnotator", DATA_ENRICHMENT) in (
        workflow.control_links
    )
    qa_names = {"HR MC score", "HR score", "PIScoreClassifier"}
    for qa in qa_names:
        assert {
            link.source.processor
            for link in workflow.incoming_links(qa)
            if link.sink.port == "annotationMap"
        } == {DATA_ENRICHMENT}
    assert {
        link.source.processor for link in workflow.incoming_links(CONSOLIDATE)
    } == qa_names

    # Fig. 1 + Fig. 6: embedded workflow contains host + quality + adapters.
    deployment = build_deployment(paper_scenario)
    embedded = deployment.embedded
    host_processors = {"GetPeakLists", "ProteinIdentification",
                       "CollectAccessions", "GORetrieval"}
    quality_processors = {DATA_ENRICHMENT, CONSOLIDATE, "filter top k score"}
    adapters = {"ImprintToDataSet", "AcceptedToAccessions"}
    names = set(embedded.processors)
    assert host_processors <= names
    assert quality_processors <= names
    assert adapters <= names

    lines = [
        f"quality workflow processors: {len(workflow.processors)}",
        f"quality workflow data links: {len(workflow.data_links)}",
        f"quality workflow control links: {len(workflow.control_links)}",
        f"embedded workflow processors: {len(embedded.processors)}",
        f"embedded workflow data links: {len(embedded.data_links)}",
        "topology: annotators -> (control) DE -> QAs -> consolidate -> actions: OK",
    ]
    write_table("E2_fig6", "Figures 1/6 — compiled + embedded structures", lines)


def view_with_n_qas(n: int) -> str:
    assertions = "\n".join(
        f"""
  <QualityAssertion serviceName="HR score {i}" serviceType="q:HRScore"
                    tagName="HR{i}" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>"""
        for i in range(n)
    )
    return f"""
<QualityView name="scale-{n}">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:hitRatio"/>
    </variables>
  </Annotator>
  {assertions}
  <action name="keep">
    <filter><condition>HR0 &gt; 10</condition></filter>
  </action>
</QualityView>
"""


@pytest.mark.parametrize("n_qas", [1, 4, 16])
def test_compile_scaling_in_qas(benchmark, n_qas):
    """E8: compile time vs view size (expected roughly linear)."""
    framework = make_framework()
    spec = parse_quality_view(view_with_n_qas(n_qas))
    workflow = benchmark(lambda: framework.compiler.compile(spec))
    # one DE regardless of QA count (the single-DE compiler rule)
    assert (
        sum(1 for n in workflow.processors if n == DATA_ENRICHMENT) == 1
    )
    assert len(workflow.processors) == n_qas + 4  # ann + DE + cons + action


@pytest.mark.parametrize("n_services", [10, 100, 400])
def test_scavenger_scaling(benchmark, n_services):
    """E8: WSDL scavenging over a growing registry."""
    registry = ServiceRegistry()
    for i in range(n_services):
        registry.deploy(
            QualityAssertionService(f"svc{i}", Q[f"Concept{i}"], "", HRScoreQA)
        )

    def scan():
        scavenger = Scavenger()
        return scavenger.scan(registry)

    found = benchmark(scan)
    assert len(found) == n_services
