"""E1 — Figure 7: effects of a data quality view on the workflow output.

Paper Sec. 6.3: 10 protein spots are processed by the ISPIDER workflow
(~500 GO-term occurrences), then re-processed with the embedded quality
workflow filtering for top-quality protein IDs.  The significance of a
GO term is the ratio of its occurrences with and without filtering;
ranking by this ratio "significantly alters the original ranking".

This benchmark regenerates the ratio-ranked series, checks the paper's
qualitative claims (re-ranking happens; terms frequent in the raw
output can drop to the bottom), and times the two enactments.  Every
test drives a full workflow enactment through ``benchmark``; the table
lands in ``benchmarks/results/E1_fig7.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_table
from repro.core.ispider import build_deployment
from repro.proteomics.workflows import go_term_frequencies


@pytest.fixture(scope="module")
def deployment(paper_scenario):
    return build_deployment(paper_scenario)


def test_fig7_series(benchmark, deployment, paper_scenario):
    baseline = deployment.run_unfiltered()
    filtered = benchmark.pedantic(
        deployment.run, rounds=3, iterations=1, warmup_rounds=1
    )
    base = go_term_frequencies(baseline["goTerms"])
    kept = go_term_frequencies(filtered["goTerms"])
    rows = sorted(
        ((kept.get(term, 0) / base[term], term, base[term], kept.get(term, 0))
         for term in base),
        key=lambda r: (-r[0], r[1]),
    )
    total_base = sum(base.values())
    total_kept = sum(kept.values())

    # Shape checks against the paper's claims.
    assert total_base > 200, "the raw workflow should produce hundreds of terms"
    assert 0 < total_kept < total_base
    by_ratio = [term for _, term, __, ___ in rows]
    by_frequency = sorted(base, key=lambda t: -base[t])
    assert by_ratio[:10] != by_frequency[:10], "ratio ranking must re-rank"
    # A frequent raw term drops out entirely (the paper's example of a
    # term occurring 14 times that ranks towards the end).
    dropped_frequent = [
        term for ratio, term, raw, _ in rows if ratio == 0 and raw >= 5
    ]
    assert dropped_frequent, "some frequent raw terms must drop to ratio 0"
    # Top-ratio terms should be dominated by ground-truth functions.
    true_terms = set()
    for accessions in paper_scenario.ground_truth.values():
        for accession in accessions:
            true_terms.update(paper_scenario.goa.terms_of(accession))
    top = [term for _, term, __, ___ in rows[:20]]
    truth_fraction = sum(1 for t in top if t in true_terms) / len(top)
    assert truth_fraction >= 0.8

    lines = [
        f"GO-term occurrences without filtering: {total_base}",
        f"GO-term occurrences with filtering:    {total_kept}",
        f"frequent raw terms dropped to ratio 0: {len(dropped_frequent)}",
        f"ground-truth fraction of top-20 ratio terms: {truth_fraction:.2f}",
        "",
        f"{'rank':>4}  {'GO term':<12} {'raw':>4} {'kept':>4} {'ratio':>6}",
    ]
    for rank, (ratio, term, raw, kept_count) in enumerate(rows[:15], start=1):
        lines.append(
            f"{rank:>4}  {term:<12} {raw:>4} {kept_count:>4} {ratio:>6.2f}"
        )
    lines.append("   ...")
    for rank, (ratio, term, raw, kept_count) in enumerate(
        rows[-5:], start=len(rows) - 4
    ):
        lines.append(
            f"{rank:>4}  {term:<12} {raw:>4} {kept_count:>4} {ratio:>6.2f}"
        )

    # Statistical grounding of the ratio ranking: the hypergeometric
    # over-representation p-values of ground-truth terms must be lower
    # on average than those of noise terms.  (Per-term counts are too
    # small here for a hard alpha cut-off; the comparison of the two
    # populations is the robust shape claim.)
    from repro.proteomics.analysis import hypergeometric_pvalue

    population = sum(base.values())
    draws = sum(kept.values())

    def p_of(term: str) -> float:
        return hypergeometric_pvalue(
            population, base[term], draws, kept.get(term, 0)
        )

    truth_ps = [p_of(t) for t in base if t in true_terms and kept.get(t, 0)]
    noise_ps = [p_of(t) for t in base if t not in true_terms]
    mean_truth = sum(truth_ps) / len(truth_ps)
    mean_noise = sum(noise_ps) / len(noise_ps)
    lines.append("")
    lines.append(
        f"mean over-representation p-value: ground-truth terms "
        f"{mean_truth:.3f} vs noise terms {mean_noise:.3f}"
    )
    assert mean_truth < mean_noise
    write_table("E1_fig7", "Figure 7 — GO-term significance ratio", lines)


def test_bench_unfiltered_enactment(benchmark, deployment):
    """Original-workflow time: the quality view's overhead baseline."""
    benchmark.pedantic(
        deployment.run_unfiltered, rounds=3, iterations=1, warmup_rounds=1
    )
