"""E3 — quality filtering vs native ranking under degrading data quality.

The paper's motivation (Secs. 1, 6.3): false positives corrupt the GO
frequency analysis, and evidence-based quality filtering should recover
the true protein functions better than trusting Imprint's native
ranking.  Ground truth is known in the simulation, so this experiment
measures what the paper could only argue for:

* precision/recall of the identifications retained by the quality view
  (ScoreClass = high) vs the native top-k baseline at comparable volume;
* how the comparison evolves as spectra degrade (noise sweep).

Shape expected: the QA filter dominates the native top-k baseline at
comparable retained volume, and the advantage persists as noise grows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import write_table
from repro.core.ispider import (
    FILTER_ACTION,
    example_quality_view_xml,
    setup_framework,
)
from repro.proteomics import ProteomicsScenario, SpectrometerSettings
from repro.proteomics.results import ImprintResultSet


def precision_recall(
    scenario: ProteomicsScenario,
    pairs: List[Tuple[str, str]],
) -> Tuple[float, float]:
    truth_pairs = {
        (sample_id, accession)
        for sample_id, accessions in scenario.ground_truth.items()
        for accession in accessions
    }
    retained = set(pairs)
    true_retained = len(retained & truth_pairs)
    precision = true_retained / max(1, len(retained))
    recall = true_retained / max(1, len(truth_pairs))
    return precision, recall


def run_quality_filter(scenario) -> Tuple[List[Tuple[str, str]], int]:
    framework, holder = setup_framework(scenario)
    results = ImprintResultSet(scenario.identify_all())
    holder.set(results)
    view = framework.quality_view(example_quality_view_xml())
    outcome = view.run(results.items())
    surviving = outcome.surviving(FILTER_ACTION)
    pairs = [(results.run_id(i), results.accession(i)) for i in surviving]
    return pairs, len(results)


def native_top_k(scenario, k: int) -> List[Tuple[str, str]]:
    pairs = []
    for run in scenario.identify_all():
        for hit in run.hits[:k]:
            pairs.append((run.run_id, hit.accession))
    return pairs


#: (noise peaks, detection rate): progressively worse lab quality.
NOISE_LEVELS = [(8, 0.75), (32, 0.55), (64, 0.4)]


def scenario_with_noise(noise: int, detection: float) -> ProteomicsScenario:
    settings = SpectrometerSettings(
        detection_rate=detection, mass_error_ppm=35.0, noise_peaks=noise
    )
    return ProteomicsScenario.generate(
        seed=777, n_proteins=300, n_spots=8, spectrometer_settings=settings
    )


def test_quality_filter_vs_native_ranking(benchmark):
    lines = [
        f"{'noise':>5} {'method':<16} {'kept':>5} {'precision':>9} {'recall':>7}"
    ]
    checks = []

    def experiment():
        rows = []
        for noise, detection in NOISE_LEVELS:
            scenario = scenario_with_noise(noise, detection)
            qa_pairs, total = run_quality_filter(scenario)
            qa_precision, qa_recall = precision_recall(scenario, qa_pairs)
            # native baseline at comparable volume: k such that the
            # native method keeps at least as many identifications
            k = max(1, round(len(qa_pairs) / max(1, len(scenario.ground_truth))))
            native_pairs = native_top_k(scenario, k)
            nat_precision, nat_recall = precision_recall(scenario, native_pairs)
            rows.append(
                (noise, "quality-view", len(qa_pairs), qa_precision, qa_recall)
            )
            rows.append(
                (noise, f"native-top-{k}", len(native_pairs), nat_precision,
                 nat_recall)
            )
            checks.append(
                (qa_precision, nat_precision, qa_recall, nat_recall)
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for noise, method, kept, precision, recall in rows:
        lines.append(
            f"{noise:>5} {method:<16} {kept:>5} {precision:>9.2f} {recall:>7.2f}"
        )
    write_table(
        "E3_filtering", "Quality filtering vs native ranking (noise sweep)",
        lines,
    )
    # Shape: the quality view must match or beat native precision at
    # every noise level while keeping useful recall.
    for qa_precision, nat_precision, qa_recall, _ in checks:
        assert qa_precision >= nat_precision
        assert qa_recall >= 0.5
    # At the worst quality level the advantage must be strict on at
    # least one axis (higher precision, or equal precision with
    # higher recall).
    qa_p, nat_p, qa_r, nat_r = checks[-1]
    assert qa_p > nat_p or (qa_p == nat_p and qa_r > nat_r)
