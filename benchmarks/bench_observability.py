"""E15 — observability overhead: fully instrumented vs disabled.

The instrumentation threaded through the workflow, runtime,
resilience, RDF, and annotation layers runs on every hot path
(processor firings, service invocations, SPARQL evaluations, cache
lookups).  This experiment pins its cost on the E13 workload — the
Figure-7 quality view pushed through the execution service at 4
workers with simulated 10 ms WSDL round trips — comparing telemetry
fully ON (default registry + tracing + event log) against fully OFF
(``observability.disable()``: ``NullRegistry``, ``NullEventLog``, span
creation suppressed).

Acceptance bar: instrumented throughput >= 95% of the disabled
baseline (<= 5% overhead).  Table lands in
``benchmarks/results/E15_observability.txt``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_table
from repro import observability
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.observability import MetricRegistry, set_default_registry
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.resilience import ResilienceConfig
from repro.runtime import RuntimeConfig

#: Simulated WSDL round trip per service invocation (as in E13).
SERVICE_LATENCY_S = 0.010

#: Jobs per measured pass (the 8 per-spot datasets, cycled).
N_JOBS = 16

WORKERS = 4

#: Measured passes per mode; the best pass is scored, so a stray
#: scheduler hiccup in either mode cannot decide the comparison.
REPEATS = 3


@pytest.fixture(scope="module")
def workload(bench_seed):
    """Framework + compiled example view + one dataset per spot."""
    scenario = ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=200, n_spots=8
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    for service in framework.services:
        service.with_latency(SERVICE_LATENCY_S)
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    spots = [results.items_of_run(run.run_id) for run in runs]
    datasets = [spots[i % len(spots)] for i in range(N_JOBS)]
    return framework, view, datasets


def _jobs_per_second(framework, view, datasets) -> float:
    config = RuntimeConfig(
        workers=WORKERS,
        queue_size=len(datasets),
        parallel_enactment=True,
        enactment_workers=3,
        resilience=ResilienceConfig(max_attempts=2),
    )
    framework.repositories.clear_transient()
    with framework.runtime(config) as service:
        start = time.perf_counter()
        batch = service.submit_many(view, datasets, clear_cache=False)
        batch.results(timeout=300)
        elapsed = time.perf_counter() - start
        snapshot = service.snapshot()
    assert snapshot.completed == len(datasets)
    assert snapshot.failed == 0
    return len(datasets) / elapsed


def _best_rate(framework, view, datasets) -> float:
    return max(
        _jobs_per_second(framework, view, datasets) for _ in range(REPEATS)
    )


@pytest.mark.slow
def test_observability_overhead_is_bounded(workload, bench_seed):
    framework, view, datasets = workload

    # Warm-up both code paths once.
    _jobs_per_second(framework, view, datasets)

    state = observability.disable()
    try:
        disabled = _best_rate(framework, view, datasets)
    finally:
        observability.restore(state)

    # Full telemetry into a fresh registry (default tracing + events).
    previous = set_default_registry(MetricRegistry())
    try:
        instrumented = _best_rate(framework, view, datasets)
        families = len(observability.get_registry().names())
        samples = sum(
            len(family.samples)
            for family in observability.get_registry().collect()
        )
    finally:
        set_default_registry(previous)

    ratio = instrumented / disabled
    lines = [
        f"workload: {N_JOBS} jobs, {WORKERS} workers, "
        f"{SERVICE_LATENCY_S * 1e3:.1f} ms simulated service round trip, "
        f"best of {REPEATS} passes",
        f"telemetry volume when enabled: {families} metric families, "
        f"{samples} label series",
        f"{'mode':<28} {'jobs/sec':>9} {'relative':>9}",
        f"{'telemetry disabled':<28} {disabled:>9.2f} {'1.000':>9}",
        f"{'fully instrumented':<28} {instrumented:>9.2f} {ratio:>9.3f}",
        f"overhead: {max(0.0, (1 - ratio)) * 100:.1f}% "
        f"(acceptance bar: <= 5%)",
    ]
    write_table(
        "E15_observability",
        "Observability overhead (E13 workload, 4 workers)",
        lines,
        seed=bench_seed,
    )
    assert instrumented >= 0.95 * disabled, (
        f"instrumentation costs more than 5%: {instrumented:.2f} vs "
        f"{disabled:.2f} jobs/sec ({(1 - ratio) * 100:.1f}%)"
    )
