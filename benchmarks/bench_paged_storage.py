"""E22 — paged storage: O(segments) cold open and paged probe cost.

The paged engine (:mod:`repro.storage.paged`) keeps triples in
immutable mmap'd sorted runs, so a cold open maps files and reads
footers instead of replaying every triple into dict indexes.  This
experiment quantifies the tentpole claims of ISSUE 10:

* **Cold open** — bulk-load one million triples into *both* engines,
  then time a cold open of each.  The paged open must finish within
  0.3 s and be at least 100x faster than the disk engine's replay
  (27.5 s in E19's published run).
* **Probe throughput** — random point lookups and prefix scans
  through the :class:`~repro.storage.paged.PagedProbe` with a block
  cache far smaller than the store, so the numbers include real page
  misses, not a warmed dict.
* **Query parity** — the planned/naive differential re-run on the
  paged store; answers must match the disk engine byte for byte.

Artefacts land in ``benchmarks/results/E22_paged_storage.txt`` and
``BENCH_E22.json``.
"""

from __future__ import annotations

import json
import random
import time

from benchmarks.conftest import RESULTS_DIR, write_table
from benchmarks.bench_storage import BULK_TRIPLES, QUERIES, generate_triples, solutions
from repro.rdf import Graph
from repro.storage import DiskBackend, PagedBackend, bulk_load_triples

#: Cache budget for the probe-throughput phase: 256 blocks = 1 MiB,
#: versus ~45 MiB of run sections for the million-triple store.
PROBE_CACHE_BLOCKS = 256
#: Random point lookups / prefix scans measured per phase.
POINT_LOOKUPS = 20_000
PREFIX_SCANS = 2_000

#: Acceptance: cold open of one million triples, mmap + footers only.
MAX_COLD_OPEN_SECONDS = 0.3
MIN_SPEEDUP = 100.0


def test_paged_storage_costs(tmp_path_factory, bench_seed):
    base = tmp_path_factory.mktemp("e22")
    lines = []
    report = {"bulk": {}, "cold_open": {}, "probe": {}, "parity": {}}

    # -- bulk load into both engines --------------------------------------
    paged_dir = str(base / "paged")
    disk_dir = str(base / "disk")
    paged_bulk = bulk_load_triples(
        generate_triples(BULK_TRIPLES), paged_dir, engine="paged"
    )
    disk_bulk = bulk_load_triples(
        generate_triples(BULK_TRIPLES), disk_dir, engine="disk"
    )
    report["bulk"] = {
        "triples": paged_bulk["triples_loaded"],
        "paged_seconds": round(paged_bulk["seconds"], 2),
        "paged_triples_per_second": int(paged_bulk["triples_per_second"]),
        "disk_seconds": round(disk_bulk["seconds"], 2),
        "disk_triples_per_second": int(disk_bulk["triples_per_second"]),
        "paged_segment_mib": round(paged_bulk["segment_bytes"] / 2**20, 1),
    }
    lines.append(
        f"bulk load (paged): {paged_bulk['triples_loaded']:,} triples in "
        f"{paged_bulk['seconds']:.2f}s = "
        f"{paged_bulk['triples_per_second']:,.0f} triples/s "
        f"({report['bulk']['paged_segment_mib']} MiB of runs)"
    )
    lines.append(
        f"bulk load (disk):  {disk_bulk['triples_loaded']:,} triples in "
        f"{disk_bulk['seconds']:.2f}s = "
        f"{disk_bulk['triples_per_second']:,.0f} triples/s"
    )

    # -- cold open: O(segments) vs O(triples) ------------------------------
    started = time.perf_counter()
    paged = PagedBackend(paged_dir, sync="none")
    paged_open_seconds = time.perf_counter() - started
    assert paged.size == BULK_TRIPLES

    started = time.perf_counter()
    disk = DiskBackend(disk_dir, sync="none")
    disk_open_seconds = time.perf_counter() - started
    assert disk.size == BULK_TRIPLES
    disk.close()

    speedup = disk_open_seconds / paged_open_seconds
    report["cold_open"] = {
        "paged_seconds": round(paged_open_seconds, 4),
        "disk_seconds": round(disk_open_seconds, 2),
        "speedup": round(speedup, 1),
        "max_seconds": MAX_COLD_OPEN_SECONDS,
    }
    lines.append(
        f"cold open (paged): {BULK_TRIPLES:,} triples in "
        f"{paged_open_seconds * 1000:.1f}ms (mmap + footers)"
    )
    lines.append(
        f"cold open (disk):  {BULK_TRIPLES:,} triples in "
        f"{disk_open_seconds:.2f}s (full segment replay)"
    )
    lines.append(f"cold-open speedup: {speedup:,.0f}x (floor {MIN_SPEEDUP:.0f}x)")

    # -- probe throughput with a starved block cache -----------------------
    paged.close()
    paged = PagedBackend(
        paged_dir, sync="none", cache_blocks=PROBE_CACHE_BLOCKS
    )
    probe = paged.probe()
    n_terms = len(paged.term_list)
    rng = random.Random(bench_seed)
    # Sample real triples out of the store for the point-lookup set so
    # every probe does full binary-search work (fences + in-block).
    sample_every = max(1, BULK_TRIPLES // POINT_LOOKUPS)
    points = [
        triple
        for index, triple in enumerate(paged.encoded_triples())
        if index % sample_every == 0
    ]
    rng.shuffle(points)
    points = points[:POINT_LOOKUPS]

    started = time.perf_counter()
    hits = sum(1 for sid, pid, oid in points if probe.contains(sid, pid, oid))
    point_seconds = time.perf_counter() - started
    assert hits == len(points)

    subjects = [points[rng.randrange(len(points))][0] for _ in range(PREFIX_SCANS)]
    started = time.perf_counter()
    scanned = 0
    for sid in subjects:
        for _ in probe.scan(sid, None, None):
            scanned += 1
    scan_seconds = time.perf_counter() - started

    cache = paged.cache.stats()
    store_blocks = sum(
        run.path.stat().st_size // 4096 for run in paged.runs
    )
    report["probe"] = {
        "cache_blocks": PROBE_CACHE_BLOCKS,
        "store_blocks": store_blocks,
        "point_lookups": len(points),
        "point_lookups_per_second": int(len(points) / point_seconds),
        "prefix_scans": PREFIX_SCANS,
        "rows_scanned": scanned,
        "scan_rows_per_second": int(scanned / scan_seconds),
        "cache_hit_rate": round(
            cache["hits"] / max(1, cache["hits"] + cache["misses"]), 3
        ),
        "evictions": cache["evictions"],
    }
    lines.append(
        f"point lookups ({PROBE_CACHE_BLOCKS}-block cache vs "
        f"{store_blocks:,}-block store): "
        f"{report['probe']['point_lookups_per_second']:,} lookups/s"
    )
    lines.append(
        f"prefix scans: {scanned:,} rows over {PREFIX_SCANS:,} subjects = "
        f"{report['probe']['scan_rows_per_second']:,} rows/s "
        f"(hit rate {report['probe']['cache_hit_rate']:.1%}, "
        f"{cache['evictions']:,} evictions)"
    )
    assert cache["evictions"] > 0, "the cache must be smaller than the store"
    assert n_terms > 0

    # -- query parity against the disk engine ------------------------------
    paged_graph = Graph(backend=paged)
    disk_graph = Graph(backend=DiskBackend(disk_dir, sync="none"))
    parity_ok = True
    for query in QUERIES:
        planned = solutions(paged_graph.query(query))
        naive = solutions(paged_graph.query(query, use_planner=False))
        reference = solutions(disk_graph.query(query))
        parity_ok = parity_ok and planned == naive == reference
    report["parity"] = {"queries": len(QUERIES), "ok": parity_ok}
    lines.append(
        f"query parity (planned vs naive vs disk engine): "
        f"{'ok' if parity_ok else 'FAILED'} over {len(QUERIES)} queries"
    )
    disk_graph.close()
    paged_graph.close()

    write_table(
        "E22_paged_storage",
        "E22 — paged storage: cold open, starved-cache probes, parity",
        lines,
        seed=bench_seed,
    )
    (RESULTS_DIR / "BENCH_E22.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )

    assert parity_ok
    assert paged_open_seconds <= MAX_COLD_OPEN_SECONDS
    assert speedup >= MIN_SPEEDUP
