"""E21 — process pool: sharded multi-process vs thread-pool enactment.

E13 shows the thread backend winning when enactment time is dominated
by remote-service latency; this experiment measures the opposite
regime, where the quality assertions themselves burn CPU (iterated
digesting per evidence vector, standing in for spectral re-scoring or
sequence alignment).  Under the GIL a thread pool cannot scale that
workload, while the process backend shards it across forked workers —
annotate/enrich/item-local QA run fully parallel, with only the
collection-scoped classifier and filter left in the parent.

Measured: jobs/sec of the thread backend vs the process backend, both
at 4 workers, on the Sec. 5.1 example view with CPU-heavy item-local
scoring QAs.  Acceptance: process >= 2x thread at 4 workers, and the
process results stay byte-equal to the serial enactor.  Table lands in
``benchmarks/results/E21_process_pool.txt`` plus machine-readable
``BENCH_E21.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, write_table
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.qa.pi_score import HRScoreQA, UniversalPIScore2QA
from repro.rdf import Q
from repro.runtime import RuntimeConfig
from repro.serving import wire
from repro.workflow.enactor import Enactor

#: SHA-256 iterations per evidence vector in each scoring QA — enough
#: CPU per item (~tens of ms per job) that stage time dominates
#: queue/codec overheads and the GIL is the thread backend's binding
#: constraint.
HASH_ROUNDS = 40_000

#: Jobs per measured configuration (the per-spot datasets, cycled).
N_JOBS = 8

#: Pool width of both contenders.
WORKERS = 4

#: Acceptance bar: process backend throughput over thread backend.
SPEEDUP_FLOOR = 2.0


def _burn(vector) -> None:
    digest = b"E21"
    seed = repr(sorted(vector.items())).encode()
    for _ in range(HASH_ROUNDS):
        digest = hashlib.sha256(digest + seed).digest()


class HeavyUniversalPIScore2QA(UniversalPIScore2QA):
    """The paper's HR MC score with a CPU-heavy per-item inner loop."""

    def compute(self, items, vectors):
        for vector in vectors:
            _burn(vector)
        return super().compute(items, vectors)


class HeavyHRScoreQA(HRScoreQA):
    """The HR-only score with a CPU-heavy per-item inner loop."""

    def compute(self, items, vectors):
        for vector in vectors:
            _burn(vector)
        return super().compute(items, vectors)


@pytest.fixture(scope="module")
def workload(bench_seed):
    """Framework with CPU-heavy scoring QAs + one dataset per spot."""
    scenario = ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=200, n_spots=8
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    # Swap the example view's two item-local scoring QAs for the
    # CPU-heavy variants; same names and concepts, so the unchanged
    # Sec. 5.1 XML binds them.
    framework.services.undeploy("UniversalPIScore2")
    framework.services.undeploy("HRScore")
    framework.deploy_qa_service(
        "UniversalPIScore2", Q.UniversalPIScore2,
        HeavyUniversalPIScore2QA, item_local=True,
    )
    framework.deploy_qa_service(
        "HRScore", Q.HRScore, HeavyHRScoreQA, item_local=True
    )
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    spots = [results.items_of_run(run.run_id) for run in runs]
    datasets = [spots[i % len(spots)] for i in range(N_JOBS)]
    return framework, view, datasets


def _jobs_per_second(framework, view, datasets, config) -> float:
    with framework.runtime(config) as service:
        start = time.perf_counter()
        batch = service.submit_many(view, datasets)
        batch.results(timeout=600)
        elapsed = time.perf_counter() - start
        snapshot = service.snapshot()
    assert snapshot.completed == len(datasets)
    assert snapshot.failed == 0
    return len(datasets) / elapsed


@pytest.mark.slow
def test_process_pool_beats_threads_on_cpu_bound_qa(workload, bench_seed):
    framework, view, datasets = workload

    # Differential guard first: the speedup is worthless unless the
    # sharded answer is byte-equal to the serial enactor's.
    framework.repositories.clear_transient()
    oracle = view.run(datasets[0], enactor=Enactor(), clear_cache=False)
    with framework.runtime(backend="process", shards=WORKERS) as service:
        outcome = service.submit(view, datasets[0], clear_cache=True).result(120)
    byte_equal = (
        list(outcome.items) == list(oracle.items)
        and wire.encode_typed_map(outcome.annotation_map)
        == wire.encode_typed_map(oracle.annotation_map)
        and outcome.groups == oracle.groups
    )
    assert byte_equal, "process backend diverged from the serial enactor"

    thread_rate = _jobs_per_second(
        framework, view, datasets,
        RuntimeConfig(backend="thread", workers=WORKERS,
                      queue_size=len(datasets)),
    )
    process_rate = _jobs_per_second(
        framework, view, datasets,
        RuntimeConfig(backend="process", shards=WORKERS,
                      queue_size=len(datasets)),
    )
    speedup = process_rate / thread_rate
    # The floor is a statement about parallel hardware: on a one-core
    # box forked workers time-slice the same core and the comparison
    # only measures overhead, so record the numbers but don't enforce.
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    enforceable = cores >= 2

    summary = {
        "experiment": "E21_process_pool",
        "seed": bench_seed,
        "jobs": N_JOBS,
        "workers": WORKERS,
        "hash_rounds": HASH_ROUNDS,
        "items_total": sum(len(d) for d in datasets),
        "thread_jobs_per_sec": round(thread_rate, 3),
        "process_jobs_per_sec": round(process_rate, 3),
        "speedup": round(speedup, 3),
        "cores": cores,
        "acceptance": {
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_ok": speedup >= SPEEDUP_FLOOR,
            "speedup_enforced": enforceable,
            "byte_equal_to_serial": byte_equal,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_E21.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"workload: {N_JOBS} jobs (8 spots cycled), "
        f"{sum(len(d) for d in datasets)} items total, "
        f"{HASH_ROUNDS} sha256 rounds per item per scoring QA",
        f"{'configuration':<28} {'jobs/sec':>9} {'speedup':>8}",
        f"{f'thread backend, {WORKERS} workers':<28} "
        f"{thread_rate:>9.2f} {'1.00x':>8}",
        f"{f'process backend, {WORKERS} shards':<28} "
        f"{process_rate:>9.2f} {speedup:>7.2f}x",
        f"byte-equal to serial enactor: {'yes' if byte_equal else 'NO'}",
        f"cores available: {cores}"
        + ("" if enforceable else
           f" (speedup floor of {SPEEDUP_FLOOR}x not enforceable)"),
    ]
    write_table(
        "E21_process_pool",
        "Process-pool enactment (CPU-bound quality assertions)",
        lines, seed=bench_seed,
    )
    if enforceable:
        assert speedup >= SPEEDUP_FLOOR, (
            f"process backend managed only {speedup:.2f}x over threads at "
            f"{WORKERS} workers; floor is {SPEEDUP_FLOOR}x"
        )
