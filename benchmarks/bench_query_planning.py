"""E16 — query planning, prepared-query cache, and lookup flatness.

E6 measured the annotation store's keyed (data, evidence-type) lookups
through the SPARQL engine and found them drifting upward with
repository size (~1.6x from 100 to 4000 items): every lookup re-built
the query text, re-ran the lexer/parser, and the naive evaluator
re-sorted patterns and copied solution dictionaries per candidate row.

This experiment re-runs the E6 workload with the planned execution
path (dictionary-encoded indexes + one-shot join ordering + prepared
``$param`` queries) against the old behaviour — per-item formatted
query text through the naive evaluator — at 100/1000/4000 items.

Acceptance (ISSUE 4): >= 3x speedup at 4000 items, and the 4000-item
per-lookup latency within ~1.2x of the 100-item latency (flat, i.e.
index-backed rather than scan-backed).
"""

from __future__ import annotations

import json
import statistics
import time

from benchmarks.conftest import RESULTS_DIR, write_table
from benchmarks.bench_rdf_store import EVIDENCE_TYPES, populate
from repro.annotation.store import AnnotationStore
from repro.rdf import Q
from repro.rdf.sparql import reset_plan_cache

SIZES = (100, 1000, 4000)

#: The pre-planner lookup: query text rebuilt per item (so no plan
#: cache can help) and evaluated by the naive reference evaluator.
_NAIVE_LOOKUP = """
PREFIX q: <http://qurator.org/iq#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?value WHERE {{
  <{data}> q:contains-evidence ?e .
  ?e rdf:type <{evidence_type}> ;
     q:value ?value .
}}
"""


def _naive_lookup(store: AnnotationStore, item, evidence_type):
    result = store.graph.query(
        _NAIVE_LOOKUP.format(data=item, evidence_type=evidence_type),
        use_planner=False,
        use_cache=False,
    )
    for (value,) in result:
        return value
    return None


def _measure(callable_, probes, repeats: int = 5, rounds: int = 300) -> float:
    """Best-of-repeats mean per-lookup latency, in microseconds.

    The minimum over several timed batches is the standard latency
    floor: scheduler noise only ever adds time.
    """
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        for index in range(rounds):
            callable_(probes[index % len(probes)])
        timings.append((time.perf_counter() - started) / rounds * 1e6)
    return min(timings)


def test_planned_lookup_speedup_and_flatness(bench_seed):
    planned_us = {}
    naive_us = {}
    for n_items in SIZES:
        reset_plan_cache()
        store = AnnotationStore(f"e16-{n_items}")
        items = populate(store, n_items)
        # probe a spread of items, not one hot row
        probes = [items[(n_items // 7) * k % n_items] for k in range(7)]
        evidence_type = Q.Coverage
        # warm both paths (interning, plan compilation, prepared plans)
        store.lookup(probes[0], evidence_type)
        _naive_lookup(store, probes[0], evidence_type)
        planned_us[n_items] = _measure(
            lambda probe: store.lookup(probe, evidence_type), probes
        )
        naive_us[n_items] = _measure(
            lambda probe: _naive_lookup(store, probe, evidence_type), probes
        )
        assert store.lookup(probes[3], evidence_type) is not None

    speedups = {n: naive_us[n] / planned_us[n] for n in SIZES}
    flatness = planned_us[4000] / planned_us[100]

    lines = [
        f"{'items':>6} {'planned (us)':>13} {'naive (us)':>11} {'speedup':>8}"
    ]
    for n_items in SIZES:
        lines.append(
            f"{n_items:>6} {planned_us[n_items]:>13.1f} "
            f"{naive_us[n_items]:>11.1f} {speedups[n_items]:>7.2f}x"
        )
    lines.append(
        f"4000-item latency vs 100-item: {flatness:.2f}x "
        f"(acceptance: <= ~1.2x; E6 baseline was ~1.6x)"
    )
    lines.append(
        f"speedup at 4000 items: {speedups[4000]:.2f}x (acceptance: >= 3x)"
    )
    write_table(
        "E16_query_planning",
        "Planned + prepared lookups vs naive evaluation (E6 workload)",
        lines,
        seed=bench_seed,
    )

    summary = {
        "experiment": "E16_query_planning",
        "seed": bench_seed,
        "workload": {
            "sizes": list(SIZES),
            "evidence_types": [str(t) for t in EVIDENCE_TYPES],
            "probe_evidence_type": str(Q.Coverage),
        },
        "per_lookup_us": {
            str(n): {
                "planned": round(planned_us[n], 2),
                "naive": round(naive_us[n], 2),
                "speedup": round(speedups[n], 2),
            }
            for n in SIZES
        },
        "speedup_at_4000": round(speedups[4000], 2),
        "flatness_4000_vs_100": round(flatness, 3),
        "acceptance": {
            "speedup_at_4000_min": 3.0,
            "speedup_at_4000_ok": speedups[4000] >= 3.0,
            "flatness_max": 1.2,
            "flatness_ok": flatness <= 1.2,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_E16.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    assert speedups[4000] >= 3.0, (
        f"planned path is only {speedups[4000]:.2f}x the naive evaluator "
        f"at 4000 items (need >= 3x)"
    )
    assert flatness <= 1.2, (
        f"per-lookup latency grew {flatness:.2f}x from 100 to 4000 items "
        f"(need <= 1.2x)"
    )


def test_plan_cache_effectiveness(benchmark):
    """Repeat lookups must be cache hits, not recompilations."""
    from repro.rdf.sparql import get_plan_cache

    reset_plan_cache()
    store = AnnotationStore("e16-cache")
    items = populate(store, 500)
    store.lookup(items[0], Q.HitRatio)
    before = get_plan_cache().stats()
    benchmark(lambda: store.lookup(items[250], Q.HitRatio))
    after = get_plan_cache().stats()
    assert after.misses == before.misses, "lookups recompiled their plans"
