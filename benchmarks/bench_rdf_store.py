"""E6 — annotation-store scaling (Sec. 5).

The paper defers RDF-store performance ("performance issues have not
been addressed at this stage") but the architecture depends on
SPARQL-backed (data, evidence-type) lookups staying cheap and the store
staying swappable.  This experiment measures our store's load rate,
keyed-lookup latency vs repository size, and full SPARQL query
evaluation, so the swap-in bar is quantified.

Shape expected: keyed lookups are index-backed and stay flat (sub-
millisecond) as the store grows; bulk loading is linear.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_table
from repro.annotation.store import AnnotationStore
from repro.rdf import Graph, Literal, Q, RDF, URIRef
from repro.rdf.lsid import uniprot_lsid

EVIDENCE_TYPES = [Q.HitRatio, Q.Coverage, Q.PeptidesCount]


def populate(store: AnnotationStore, n_items: int) -> list:
    items = [uniprot_lsid(f"B{i:06d}") for i in range(n_items)]
    for index, item in enumerate(items):
        for evidence_index, evidence_type in enumerate(EVIDENCE_TYPES):
            store.annotate(
                item, evidence_type, (index * 7 + evidence_index) % 100 / 100.0
            )
    return items


@pytest.mark.parametrize("n_items", [100, 1000, 4000])
def test_bulk_load(benchmark, n_items):
    def load():
        store = AnnotationStore(f"load{n_items}")
        populate(store, n_items)
        return store

    store = benchmark.pedantic(load, rounds=3, iterations=1)
    assert len(store.graph) == n_items * len(EVIDENCE_TYPES) * 3


@pytest.mark.parametrize("n_items", [100, 1000, 4000])
def test_keyed_lookup_latency(benchmark, n_items):
    """(data, evidence-type) lookups through SPARQL at growing sizes."""
    store = AnnotationStore(f"lookup{n_items}")
    items = populate(store, n_items)
    probe = items[n_items // 2]

    value = benchmark(lambda: store.lookup(probe, Q.Coverage))
    assert value is not None


def test_sparql_join_over_annotations(benchmark):
    store = AnnotationStore("join")
    populate(store, 500)
    query = """
    PREFIX q: <http://qurator.org/iq#>
    PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
    SELECT ?d ?v WHERE {
      ?d q:contains-evidence ?e .
      ?e rdf:type q:HitRatio ; q:value ?v .
      FILTER (?v > 0.9)
    } ORDER BY DESC(?v) LIMIT 20
    """
    result = benchmark(lambda: store.graph.query(query))
    assert 0 < len(result) <= 20


def test_store_swap_report(benchmark):
    """Summarise scaling into the E6 table."""
    import time

    lines = [f"{'items':>6} {'triples':>8} {'load (ms)':>10} {'lookup (us)':>12}"]
    for n_items in (100, 1000, 4000):
        store = AnnotationStore(f"report{n_items}")
        start = time.perf_counter()
        items = populate(store, n_items)
        load_ms = (time.perf_counter() - start) * 1e3
        probe = items[n_items // 2]
        start = time.perf_counter()
        for _ in range(50):
            store.lookup(probe, Q.Coverage)
        lookup_us = (time.perf_counter() - start) / 50 * 1e6
        lines.append(
            f"{n_items:>6} {len(store.graph):>8} {load_ms:>10.1f} "
            f"{lookup_us:>12.1f}"
        )
    write_table("E6_rdf_store", "Annotation-store scaling", lines)
    # keep a benchmark measurement attached to this test as well
    store = AnnotationStore("probe")
    items = populate(store, 1000)
    benchmark(lambda: store.lookup(items[500], Q.HitRatio))
