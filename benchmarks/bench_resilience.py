"""E14 — resilience: fault-free overhead and recovery throughput.

The resilient invoker sits on every service call of every job, so its
fault-free cost must be negligible before anyone turns it on in
production: this experiment runs the E13 workload (one quality-view
job per spot, 10 ms simulated WSDL round trip, 4 workers) three ways —

* **bare** — no resilience configured (the seed code path);
* **resilient, no faults** — full policy stack attached (retries,
  breakers) but nothing ever fails: measures pure overhead, accepted
  at <= 5% throughput loss vs bare;
* **resilient, 25% faults** — a seeded ``FaultInjector`` fails a
  quarter of all service invocations: measures what recovery costs and
  checks that every job still completes with zero dead letters.

Table lands in ``benchmarks/results/E14_resilience.txt``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import write_table
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.resilience import FaultInjector, ResilienceConfig
from repro.runtime import RuntimeConfig

#: Simulated WSDL round trip per service invocation (as in E13).
SERVICE_LATENCY_S = 0.010

#: Jobs per measured configuration (the 8 per-spot datasets, cycled).
N_JOBS = 16

WORKERS = 4

#: Fraction of service invocations the chaos leg fails.
FAULT_RATE = 0.25

#: Timed repetitions per configuration; the median filters scheduler
#: noise out of the <= 5% overhead comparison.
REPEATS = 3


@pytest.fixture(scope="module")
def workload(bench_seed):
    """Framework factory + datasets; each leg gets a fresh framework."""
    scenario = ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=200, n_spots=8
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    spots = [results.items_of_run(run.run_id) for run in runs]
    datasets = [spots[i % len(spots)] for i in range(N_JOBS)]

    def fresh_framework():
        framework, holder = setup_framework(scenario)
        holder.set(results)
        for service in framework.services:
            service.with_latency(SERVICE_LATENCY_S)
        return framework

    return fresh_framework, datasets


def _run_leg(framework, datasets, resilience=None):
    """One timed batch; returns (jobs/sec, stats snapshot)."""
    view = framework.quality_view(example_quality_view_xml())
    config = RuntimeConfig(
        workers=WORKERS,
        queue_size=len(datasets),
        parallel_enactment=True,
        enactment_workers=3,
        resilience=resilience,
    )
    with framework.runtime(config) as service:
        start = time.perf_counter()
        batch = service.submit_many(view, datasets)
        batch.results(timeout=300)
        elapsed = time.perf_counter() - start
        snapshot = service.snapshot()
    assert snapshot.completed == len(datasets)
    assert snapshot.failed == 0
    assert snapshot.dead_lettered == 0
    return len(datasets) / elapsed, snapshot


def _median_rate(framework, datasets, resilience=None):
    rates, last_snapshot = [], None
    for _ in range(REPEATS):
        rate, last_snapshot = _run_leg(framework, datasets, resilience)
        rates.append(rate)
    return statistics.median(rates), last_snapshot


@pytest.mark.slow
def test_resilience_overhead_and_recovery(workload, bench_seed):
    fresh_framework, datasets = workload
    resilient_config = ResilienceConfig(
        max_attempts=8, backoff_base=0.005, backoff_cap=0.1,
        jitter_seed=bench_seed, breaker_threshold=0,
    )

    bare_framework = fresh_framework()
    bare, _ = _median_rate(bare_framework, datasets)

    quiet_framework = fresh_framework()
    quiet, quiet_snap = _median_rate(
        quiet_framework, datasets, resilient_config
    )
    assert quiet_snap.invocation_retries == 0  # nothing failed

    chaos_framework = fresh_framework()
    injector = FaultInjector(seed=bench_seed)
    injector.plan_all(fault_rate=FAULT_RATE)
    injector.attach_registry(chaos_framework.services)
    chaos, chaos_snap = _median_rate(
        chaos_framework, datasets, resilient_config
    )
    assert chaos_snap.invocation_retries > 0
    assert injector.total_injected() > 0

    overhead = (bare - quiet) / bare
    lines = [
        f"workload: {N_JOBS} jobs (8 spots cycled), {WORKERS} workers, "
        f"{SERVICE_LATENCY_S * 1e3:.1f} ms/call simulated round trip; "
        f"median of {REPEATS} runs",
        f"{'configuration':<28} {'jobs/sec':>9} {'vs bare':>8}",
        f"{'bare (no resilience)':<28} {bare:>9.2f} {'1.00x':>8}",
        f"{'resilient, no faults':<28} {quiet:>9.2f} {quiet / bare:>7.2f}x",
        f"{f'resilient, {FAULT_RATE:.0%} faults':<28} "
        f"{chaos:>9.2f} {chaos / bare:>7.2f}x",
        f"fault-free invoker overhead: {max(0.0, overhead):.1%} "
        f"(acceptance: <= 5%)",
        f"recovery: {chaos_snap.invocation_retries} invocation retries, "
        f"{chaos_snap.dead_lettered} dead-lettered "
        f"(last chaos repetition)",
    ]
    write_table(
        "E14_resilience",
        "Resilient invocation: overhead and recovery",
        lines,
        seed=bench_seed,
    )

    assert quiet >= 0.95 * bare, (
        f"fault-free resilience overhead must stay <= 5% "
        f"(bare {bare:.2f} vs resilient {quiet:.2f} jobs/sec)"
    )
    # recovery pays retries, not correctness: every job completed above;
    # throughput should stay within the same order of magnitude.
    assert chaos >= 0.4 * bare
