"""E7 — levels of sharing and reuse (Sec. 7).

The paper's validation claim is cost-effectiveness through reuse:
(i) of quality concepts through the IQ model, (ii) of generic core
framework components, (iii) of configured components for a whole data
domain — while evidence-extraction annotators tend to be data-specific.

This experiment runs the *identical* quality-view XML over three
distinct data sets — two independent proteomics worlds and one
synthetic "sensor-readings" domain whose annotator maps its own
indicators onto the same evidence classes — and counts what had to
change: only the data-specific annotation function, exactly the limit
of reuse the paper reports.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Set

import pytest

from benchmarks.conftest import write_table
from repro.annotation.functions import AnnotationFunction
from repro.annotation.map import AnnotationMap
from repro.core.framework import QuratorFramework
from repro.core.ispider import (
    FILTER_ACTION,
    LiveImprintAnnotator,
    ResultSetHolder,
    example_quality_view_xml,
)
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.rdf import Q, URIRef


class SensorQualityAnnotator(AnnotationFunction):
    """A different domain entirely: sensor readings with their own
    signal-quality indicators mapped onto the shared evidence classes."""

    function_class = Q["Imprint-output-annotation"]  # reuses the binding slot
    provides = frozenset(
        {Q.HitRatio, Q.Coverage, Q.Masses, Q.PeptidesCount}
    )

    def __init__(self, readings: dict) -> None:
        self.readings = readings

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        amap = AnnotationMap()
        for item in items:
            amap.add_item(item)
            reading = self.readings.get(item)
            if reading is None:
                continue
            values = {
                Q.HitRatio: reading["snr"],
                Q.Coverage: reading["uptime"],
                Q.Masses: reading["samples"],
                Q.PeptidesCount: reading["samples"],
            }
            for evidence_type in evidence_types:
                if evidence_type in values:
                    amap.set_evidence(item, evidence_type, values[evidence_type])
        return amap


def sensor_readings() -> dict:
    readings = {}
    for i in range(40):
        item = URIRef(f"urn:lsid:sensors.example.org:reading:{i}")
        good = i % 4 == 0
        readings[item] = {
            "snr": 0.9 if good else 0.1 + (i % 3) * 0.05,
            "uptime": 0.95 if good else 0.3,
            "samples": 30 if good else 5,
        }
    return readings


def run_view_on_proteomics(seed: int) -> int:
    scenario = ProteomicsScenario.generate(seed=seed, n_proteins=120, n_spots=4)
    framework = QuratorFramework()
    framework.register_standard_services()
    holder = ResultSetHolder()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
    )
    results = ImprintResultSet(scenario.identify_all())
    holder.set(results)
    view = framework.quality_view(example_quality_view_xml())
    outcome = view.run(results.items())
    return len(outcome.surviving(FILTER_ACTION))


def run_view_on_sensors() -> int:
    readings = sensor_readings()
    framework = QuratorFramework()
    framework.register_standard_services()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", SensorQualityAnnotator(readings)
    )
    view = framework.quality_view(example_quality_view_xml())
    outcome = view.run(list(readings))
    return len(outcome.surviving(FILTER_ACTION))


def test_same_view_across_datasets_and_domains(benchmark):
    def experiment():
        return (
            run_view_on_proteomics(seed=101),
            run_view_on_proteomics(seed=202),
            run_view_on_sensors(),
        )

    kept_a, kept_b, kept_sensors = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    # The view worked unchanged everywhere and filtered non-trivially.
    assert kept_a > 0 and kept_b > 0
    assert 0 < kept_sensors < 40
    # sensors: exactly the i % 4 == 0 "good" readings should class high
    assert kept_sensors == 10

    reused = [
        "IQ model (evidence + assertion classes)",
        "quality-view XML (unchanged, byte-identical)",
        "QA services: UniversalPIScore2, HRScore, PIScoreClassifier",
        "core: compiler, Data Enrichment, ConsolidateAssertions, actions",
        "condition language + filter condition",
    ]
    replaced = [
        "annotation function (data-specific evidence extraction)",
    ]
    lines = [
        f"proteomics world A: kept {kept_a} identifications",
        f"proteomics world B: kept {kept_b} identifications",
        f"sensor domain:      kept {kept_sensors} readings",
        "",
        "components reused unchanged:",
        *[f"  - {item}" for item in reused],
        "components replaced per data set:",
        *[f"  - {item}" for item in replaced],
        "",
        f"reuse ratio: {len(reused)}/{len(reused) + len(replaced)} "
        f"component groups",
    ]
    write_table("E7_reuse", "Reuse of one quality view across data sets", lines)
