"""E13 — runtime throughput: serial loop vs the execution service.

The paper's framework enacts one quality view per call; Sec. 6.3
processes 10 protein spots through the embedded quality workflow one
after another.  ``repro.runtime`` turns that into a job-queue service,
and this experiment measures what that buys on the Figure-7 workload:
every spot's identifications pushed through the Sec. 5.1 example view,
with each quality service modelling a WSDL round trip
(``Service.with_latency``) — the regime the paper actually runs in,
where enactment time is dominated by remote-service calls rather than
local computation.

Measured: jobs/sec of a serial ``view.run`` loop vs the
``ExecutionService`` at 1, 2, 4 and 8 workers (wavefront-parallel
enactment inside each job).  Shape expected: throughput scales with
the worker pool while remote latency dominates; the acceptance bar is
>= 2x at 4 workers.  Table lands in
``benchmarks/results/E13_runtime.txt``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_table
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.runtime import RuntimeConfig
from repro.workflow.enactor import Enactor

#: Simulated WSDL round trip per service invocation (Sec. 6.1 runs the
#: quality services as web services; 10 ms is a LAN SOAP call).
SERVICE_LATENCY_S = 0.010

#: Jobs per measured configuration (the 8 per-spot datasets, cycled).
N_JOBS = 16

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def workload(bench_seed):
    """Framework + compiled example view + one dataset per spot."""
    scenario = ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=200, n_spots=8
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    for service in framework.services:
        service.with_latency(SERVICE_LATENCY_S)
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    spots = [results.items_of_run(run.run_id) for run in runs]
    datasets = [spots[i % len(spots)] for i in range(N_JOBS)]
    return framework, view, datasets


def _serial_jobs_per_second(framework, view, datasets) -> float:
    framework.repositories.clear_transient()
    start = time.perf_counter()
    for dataset in datasets:
        view.run(dataset, enactor=Enactor(), clear_cache=False)
    return len(datasets) / (time.perf_counter() - start)


def _service_jobs_per_second(framework, view, datasets, workers) -> float:
    config = RuntimeConfig(
        workers=workers,
        queue_size=len(datasets),
        parallel_enactment=True,
        enactment_workers=3,
    )
    with framework.runtime(config) as service:
        start = time.perf_counter()
        batch = service.submit_many(view, datasets)
        batch.results(timeout=300)
        elapsed = time.perf_counter() - start
        snapshot = service.snapshot()
    assert snapshot.completed == len(datasets)
    assert snapshot.failed == 0
    return len(datasets) / elapsed


@pytest.mark.slow
def test_runtime_throughput_scales(workload, bench_seed):
    framework, view, datasets = workload

    # Warm-up: populate persistent repositories / code paths once so the
    # serial baseline is not penalised for first-run effects.
    framework.repositories.clear_transient()
    view.run(datasets[0], enactor=Enactor(), clear_cache=False)

    serial = _serial_jobs_per_second(framework, view, datasets)
    by_workers = {
        workers: _service_jobs_per_second(framework, view, datasets, workers)
        for workers in WORKER_COUNTS
    }

    lines = [
        f"workload: {N_JOBS} jobs (8 spots cycled), "
        f"{sum(len(d) for d in datasets)} items total",
        f"simulated service round trip: {SERVICE_LATENCY_S * 1e3:.1f} ms/call",
        f"{'configuration':<24} {'jobs/sec':>9} {'speedup':>8}",
        f"{'serial view.run loop':<24} {serial:>9.2f} {'1.00x':>8}",
        *(
            f"{f'runtime, {workers} workers':<24} "
            f"{rate:>9.2f} {rate / serial:>7.2f}x"
            for workers, rate in by_workers.items()
        ),
    ]
    write_table(
        "E13_runtime", "Runtime throughput (Figure-7 workload)", lines,
        seed=bench_seed,
    )

    assert by_workers[4] >= 2.0 * serial, (
        f"4 workers must give >= 2x serial throughput "
        f"(got {by_workers[4] / serial:.2f}x)"
    )
    # More workers never collapse below the single-worker service.
    assert by_workers[8] >= 0.8 * by_workers[4]
