"""E18 — serving under mixed multi-tenant load: req/s, p99, plan sharing.

The serving tier (``python -m repro serve``) puts the paper's
"quality views as services" deployment model under one HTTP surface;
this experiment loads it the way a small group of collaborating
scientists would: several tenants register the *same* Sec. 5.1 view
(the plan cache must compile it exactly once), then issue mixed
traffic — asynchronous enactments over per-spot datasets, job-status
polls, and health probes — from concurrent client threads against a
live ``ThreadingHTTPServer`` on an ephemeral port.  One "free-tier"
tenant runs with a deliberately tight token bucket, so the run also
demonstrates per-tenant quota isolation: its 429s must not dent the
paid tenants' acceptance rate.

Measured: sustained HTTP req/s over the whole mixed phase, p50/p95/p99
request latency split by request class, enactment admission outcomes
per tenant, and the plan-cache counters.  Acceptance: one compilation
total, zero paid-tenant rejections, at least one quota 429 for the
free tenant, and a p99 under the generous CI bound.  Artefacts land in
``benchmarks/results/E18_serving.txt`` and ``BENCH_E18.json``.
"""

from __future__ import annotations

import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from benchmarks.conftest import RESULTS_DIR, write_table
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.runtime import RuntimeConfig
from repro.serving import QualityViewServer, ServingConfig

#: Simulated WSDL round trip per quality-service invocation (as E13).
SERVICE_LATENCY_S = 0.005

#: Paid tenants issuing full mixed traffic.
PAID_TENANTS = ("lab-a", "lab-b", "lab-c")
#: The rate-limited tenant (tokens/s, burst) — tight enough to trip.
FREE_TENANT, FREE_RATE, FREE_BURST = "free-tier", 1.0, 4.0

#: Per-tenant request mix.
ENACTS_PER_TENANT = 10
POLLS_PER_TENANT = 25

#: Generous CI bound on p99 request latency (seconds).
P99_BOUND_S = 2.0
#: Sustained mixed-traffic floor (requests/second, all classes).
THROUGHPUT_FLOOR = 25.0


def _percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _http(base, method, path, body=None, headers=None):
    """(status, parsed JSON, elapsed seconds) for one exchange."""
    request = Request(base + path, data=body, method=method)
    for header, value in (headers or {}).items():
        request.add_header(header, value)
    started = time.perf_counter()
    try:
        with urlopen(request, timeout=60) as response:
            raw, status = response.read(), response.status
    except HTTPError as error:
        raw, status = error.read(), error.code
    elapsed = time.perf_counter() - started
    return status, json.loads(raw.decode("utf-8")), elapsed


@pytest.fixture(scope="module")
def serving_deployment(bench_seed):
    """A served framework over the E13-scale proteomics world."""
    scenario = ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=200, n_spots=8
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    for service in framework.services:
        service.with_latency(SERVICE_LATENCY_S)
    datasets = {
        run.run_id: results.items_of_run(run.run_id) for run in runs
    }
    runtime = framework.runtime(
        RuntimeConfig(
            workers=4,
            queue_size=128,
            queue_policy="reject",
            parallel_enactment=True,
            enactment_workers=3,
            name="serving-bench",
        )
    )
    config = ServingConfig(port=0, quota_rate=10_000.0, quota_burst=10_000.0)
    server = QualityViewServer(
        framework, runtime, config=config, datasets=datasets
    )
    server.start()
    server.serve_in_background()
    server.quotas.configure(FREE_TENANT, rate=FREE_RATE, burst=FREE_BURST)
    yield server, sorted(datasets)
    server.close()
    runtime.shutdown(drain=True)


def _tenant_worker(base, tenant, dataset_names, record):
    """One tenant's mixed traffic; appends (class, status, secs) rows."""
    headers = {"X-Tenant": tenant}
    job_links = []
    for index in range(ENACTS_PER_TENANT):
        dataset = dataset_names[index % len(dataset_names)]
        body = json.dumps({"dataset": dataset}).encode("utf-8")
        status, document, elapsed = _http(
            base, "POST", f"/views/qv-{tenant}/enact", body, headers
        )
        record.append(("enact", tenant, status, elapsed))
        if status == 202:
            job_links.append(document["links"]["status"])
    for index in range(POLLS_PER_TENANT):
        if job_links and index % 5 != 0:
            path = job_links[index % len(job_links)]
            kind = "job_status"
        else:
            path, kind = "/healthz", "healthz"
        status, _, elapsed = _http(base, "GET", path, None, headers)
        record.append((kind, tenant, status, elapsed))


def test_e18_multi_tenant_serving_load(serving_deployment, bench_seed):
    server, dataset_names = serving_deployment
    base = server.url
    xml = example_quality_view_xml().encode("utf-8")
    tenants = [*PAID_TENANTS, FREE_TENANT]

    # -- registration phase: same spec, one compilation ------------------
    for tenant in tenants:
        status, document, _ = _http(
            base, "PUT", f"/views/qv-{tenant}", xml,
            {"X-Tenant": tenant, "Content-Type": "application/xml"},
        )
        assert status == 201, document
    cache_stats = server.plan_cache.stats()

    # -- mixed-traffic phase ----------------------------------------------
    record = []
    threads = [
        threading.Thread(
            target=_tenant_worker, args=(base, tenant, dataset_names, record)
        )
        for tenant in tenants
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start
    assert server.runtime.drain(timeout=120)
    drain_seconds = time.perf_counter() - wall_start

    # -- aggregate ---------------------------------------------------------
    requests_total = len(record) + len(tenants)  # + registrations
    throughput = len(record) / wall_seconds
    latencies = [row[3] for row in record]
    by_class = {}
    for kind, _, _, elapsed in record:
        by_class.setdefault(kind, []).append(elapsed)
    outcomes = {}
    for kind, tenant, status, _ in record:
        if kind == "enact":
            key = "accepted" if status == 202 else f"http_{status}"
            outcomes.setdefault(tenant, {}).setdefault(key, 0)
            outcomes[tenant][key] += 1
    paid_rejected = sum(
        count
        for tenant in PAID_TENANTS
        for key, count in outcomes.get(tenant, {}).items()
        if key != "accepted"
    )
    free_429 = outcomes.get(FREE_TENANT, {}).get("http_429", 0)
    completed = server.runtime.snapshot().completed
    p99 = _percentile(latencies, 0.99)

    acceptance = {
        "single_compilation_ok": cache_stats["compilations"] == 1,
        "paid_all_accepted_ok": paid_rejected == 0,
        "free_tier_throttled_ok": free_429 >= 1,
        "p99_bound_s": P99_BOUND_S,
        "p99_ok": p99 <= P99_BOUND_S,
        "throughput_floor": THROUGHPUT_FLOOR,
        "throughput_ok": throughput >= THROUGHPUT_FLOOR,
    }
    summary = {
        "experiment": "E18_serving",
        "seed": bench_seed,
        "acceptance": acceptance,
        "workload": {
            "tenants": list(tenants),
            "enacts_per_tenant": ENACTS_PER_TENANT,
            "polls_per_tenant": POLLS_PER_TENANT,
            "service_latency_ms": SERVICE_LATENCY_S * 1000,
            "free_tier": {"rate": FREE_RATE, "burst": FREE_BURST},
            "requests_total": requests_total,
        },
        "throughput_rps": round(throughput, 1),
        "latency_ms": {
            kind: {
                "p50": round(1000 * _percentile(samples, 0.50), 2),
                "p95": round(1000 * _percentile(samples, 0.95), 2),
                "p99": round(1000 * _percentile(samples, 0.99), 2),
            }
            for kind, samples in sorted(by_class.items())
        },
        "enact_outcomes": outcomes,
        "plan_cache": cache_stats,
        "jobs_completed": completed,
        "wall_seconds": {
            "mixed_traffic": round(wall_seconds, 3),
            "to_drain": round(drain_seconds, 3),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_E18.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"tenants: {', '.join(tenants)} "
        f"(free tier: {FREE_RATE}/s, burst {FREE_BURST})",
        f"requests: {requests_total} total, "
        f"{len(record)} in the mixed phase",
        f"sustained throughput: {throughput:.1f} req/s "
        f"(floor {THROUGHPUT_FLOOR})",
        "",
        f"{'class':<12} {'n':>5} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}",
    ]
    for kind, samples in sorted(by_class.items()):
        lines.append(
            f"{kind:<12} {len(samples):>5} "
            f"{1000 * _percentile(samples, 0.50):>8.2f} "
            f"{1000 * _percentile(samples, 0.95):>8.2f} "
            f"{1000 * _percentile(samples, 0.99):>8.2f}"
        )
    lines += [
        "",
        f"plan cache: {cache_stats['compilations']} compilation(s), "
        f"{cache_stats['hits']} hit(s) across {len(tenants)} tenants",
        f"admission: paid rejections {paid_rejected}, "
        f"free-tier 429s {free_429}",
        f"jobs completed: {completed} "
        f"(drained in {drain_seconds:.2f}s)",
        "",
        "acceptance: " + ", ".join(
            f"{name}={value}" for name, value in acceptance.items()
        ),
    ]
    write_table(
        "E18_serving",
        "E18 — multi-tenant serving: mixed load, plan sharing, quotas",
        lines,
        seed=bench_seed,
    )
    assert all(
        value for name, value in acceptance.items() if name.endswith("_ok")
    ), acceptance
