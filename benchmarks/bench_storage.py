"""E19 — durable storage: bulk-load rate, reopen latency, WAL overhead.

The storage subsystem (:mod:`repro.storage`) gives the Sec. 4
annotation repositories and the serving tier a disk-backed life beyond
one process.  This experiment measures what that durability costs and
what the bulk path buys:

* **Bulk load** — stream one million generated triples through
  :func:`bulk_load_triples` (segment written directly, no per-triple
  WAL) and report sustained triples/second.
* **Reopen latency** — open the resulting store cold (segment replay
  into fresh indexes) and time it; this is the restart cost of a
  ``repro serve --store-dir`` deployment.
* **WAL overhead** — write the same incremental workload at
  ``fsync=always`` / ``batch`` / ``none`` and compare commit rates, so
  the durability/throughput trade of each mode is a number, not a vibe.
* **Query parity** — the planned/naive differential re-run on the
  reopened store; the disk backend must answer byte-identically.

Artefacts land in ``benchmarks/results/E19_storage.txt`` and
``BENCH_E19.json``.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_table
from repro.rdf import Graph, Literal, URIRef
from repro.storage import DiskBackend, bulk_load_triples

EX = "http://example.org/"

#: The bulk-load corpus (acceptance floor: one million triples).
BULK_TRIPLES = 1_000_000
#: Incremental workload per WAL sync mode.
WAL_TRIPLES = 5_000
#: fsync cadence of the "batch" mode under test.
FSYNC_BATCH = 64

QUERIES = [
    f"""SELECT ?s ?x ?y WHERE {{
        ?s <{EX}p0> ?x .
        ?s <{EX}p1> ?y .
    }}""",
    f"""SELECT ?s ?v WHERE {{
        ?s <{EX}p2> ?v .
        FILTER (?v > 500)
    }}""",
]


def generate_triples(n: int):
    """A skewed synthetic corpus: 16 predicates, Zipf-ish subjects."""
    subjects = [URIRef(f"{EX}s{i}") for i in range(n // 10 or 1)]
    predicates = [URIRef(f"{EX}p{i}") for i in range(16)]
    for i in range(n):
        # The object is unique per i: every generated triple is
        # distinct (the store is a set; duplicates would not count).
        yield (
            subjects[(i * i) % len(subjects)],
            predicates[i % 16],
            Literal(i),
        )


def solutions(result):
    return sorted(
        tuple(sorted((str(v), value.n3()) for v, value in row.items()))
        for row in result.rows
    )


def test_storage_costs(tmp_path_factory, bench_seed):
    base = tmp_path_factory.mktemp("e19")
    lines = []
    report = {"bulk": {}, "reopen": {}, "wal": {}, "parity": {}}

    # -- bulk load -------------------------------------------------------
    bulk_dir = str(base / "bulk")
    bulk = bulk_load_triples(generate_triples(BULK_TRIPLES), bulk_dir)
    report["bulk"] = {
        "triples": bulk["triples_loaded"],
        "seconds": round(bulk["seconds"], 2),
        "triples_per_second": int(bulk["triples_per_second"]),
        "segment_mib": round(bulk["segment_bytes"] / 2**20, 1),
    }
    lines.append(
        f"bulk load: {bulk['triples_loaded']:,} triples in "
        f"{bulk['seconds']:.2f}s = {bulk['triples_per_second']:,.0f} "
        f"triples/s ({report['bulk']['segment_mib']} MiB segment)"
    )

    # -- reopen latency --------------------------------------------------
    started = time.perf_counter()
    backend = DiskBackend(bulk_dir, sync="none")
    reopen_seconds = time.perf_counter() - started
    assert backend.size == BULK_TRIPLES
    report["reopen"] = {
        "seconds": round(reopen_seconds, 2),
        "triples_per_second": int(BULK_TRIPLES / reopen_seconds),
    }
    lines.append(
        f"cold reopen: {BULK_TRIPLES:,} triples in {reopen_seconds:.2f}s "
        f"= {BULK_TRIPLES / reopen_seconds:,.0f} triples/s"
    )

    # -- query parity on the reopened store ------------------------------
    graph = Graph(backend=backend)
    parity_ok = True
    for query in QUERIES:
        planned = solutions(graph.query(query))
        naive = solutions(graph.query(query, use_planner=False))
        parity_ok = parity_ok and planned == naive
    report["parity"] = {"queries": len(QUERIES), "ok": parity_ok}
    lines.append(
        f"query parity (planned vs naive, reopened store): "
        f"{'ok' if parity_ok else 'FAILED'} over {len(QUERIES)} queries"
    )
    graph.close()

    # -- WAL overhead per sync mode --------------------------------------
    workload = list(generate_triples(WAL_TRIPLES))
    for mode in ("none", "batch", "always"):
        directory = str(base / f"wal-{mode}")
        incremental = Graph(
            backend=DiskBackend(
                directory, sync=mode, fsync_batch=FSYNC_BATCH
            )
        )
        started = time.perf_counter()
        for triple in workload:
            incremental.add(*triple)
        elapsed = time.perf_counter() - started
        fsyncs = incremental.backend._wal.fsyncs
        incremental.close()
        rate = WAL_TRIPLES / elapsed
        report["wal"][mode] = {
            "seconds": round(elapsed, 3),
            "triples_per_second": int(rate),
            "fsyncs": fsyncs,
        }
        label = f"fsync={mode}" + (
            f" (every {FSYNC_BATCH})" if mode == "batch" else ""
        )
        lines.append(
            f"incremental {label}: {WAL_TRIPLES:,} commits in "
            f"{elapsed:.3f}s = {rate:,.0f} triples/s, {fsyncs} fsyncs"
        )
    none_rate = report["wal"]["none"]["triples_per_second"]
    always_rate = report["wal"]["always"]["triples_per_second"]
    lines.append(
        f"durability cost: fsync=always runs at "
        f"{always_rate / none_rate:.1%} of fsync=none throughput"
    )

    write_table(
        "E19_storage",
        "E19 — storage: bulk load, reopen latency, WAL sync modes",
        lines,
        seed=bench_seed,
    )
    (RESULTS_DIR / "BENCH_E19.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )

    assert bulk["triples_loaded"] == BULK_TRIPLES
    assert parity_ok
    assert report["wal"]["always"]["fsyncs"] >= WAL_TRIPLES
    assert report["wal"]["none"]["fsyncs"] == 0
