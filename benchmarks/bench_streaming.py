"""E20 — incremental vs full re-enactment across delta ratios.

The streaming subsystem's core bet is that absorbing a delta through
the :class:`repro.stream.IncrementalEnactor` costs work proportional
to the delta, not to the data set.  This experiment measures that bet
directly: over a feed-backed Sec. 5.1 deployment at paper-plus scale
(hundreds of tracked items), sweep the fraction of the data set each
delta touches from 1% to 50% and time (a) the incremental apply and
(b) the full batch recompute of the same state — the differential
oracle the incremental path must stay byte-equal to.

Measured: mean apply/recompute wall time per ratio, the speedup, the
memo hit rate, and the per-step differential verdict.  Acceptance:
every timed step byte-equal, and ≥3x speedup at delta ratios ≤10%.
Artefacts land in ``benchmarks/results/E20_streaming.txt`` and
``BENCH_E20.json``.
"""

from __future__ import annotations

import json
import random
import time

from benchmarks.conftest import RESULTS_DIR, write_table
from repro.serving import wire
from repro.stream import Delta, IncrementalEnactor
from repro.stream.scenario import build_stream_scenario, random_row, stream_item

#: Tracked items (the paper's 10-spot world yields a few hundred hits).
N_ITEMS = 320
#: Timed update deltas per ratio (after an untimed bootstrap).
STEPS = 5
#: Fractions of the data set each delta touches.
DELTA_RATIOS = (0.01, 0.05, 0.10, 0.25, 0.50)
#: Required incremental speedup at delta ratios of at most 10%.
SPEEDUP_FLOOR, SMALL_DELTA = 3.0, 0.10


def _result_bytes(result) -> bytes:
    return wire.dumps(wire.encode_result(result))


def _sweep_ratio(ratio: float, seed: int):
    """One ratio's timed steps; returns the aggregate row."""
    rng = random.Random(seed)
    scenario = build_stream_scenario()
    enactor = IncrementalEnactor(scenario.view, feed=scenario.table)
    universe = [stream_item(i) for i in range(N_ITEMS)]
    enactor.apply(Delta(upserts={item: random_row(rng) for item in universe}))

    batch = max(1, int(N_ITEMS * ratio))
    cursor = 0
    apply_seconds, oracle_seconds = [], []
    hit_rates = []
    mismatches = 0
    for _ in range(STEPS):
        touched = [universe[(cursor + k) % N_ITEMS] for k in range(batch)]
        cursor = (cursor + batch) % N_ITEMS
        delta = Delta(upserts={item: random_row(rng) for item in touched})

        started = time.perf_counter()
        outcome = enactor.apply(delta)
        apply_seconds.append(time.perf_counter() - started)

        started = time.perf_counter()
        oracle = enactor.full_recompute()
        oracle_seconds.append(time.perf_counter() - started)

        if _result_bytes(outcome.result) != _result_bytes(oracle):
            mismatches += 1
        lookups = outcome.report.memo_hits + outcome.report.memo_misses
        hit_rates.append(outcome.report.memo_hits / lookups if lookups else 0.0)

    mean_apply = sum(apply_seconds) / STEPS
    mean_oracle = sum(oracle_seconds) / STEPS
    return {
        "delta_ratio": ratio,
        "items_touched": batch,
        "apply_ms": round(1000 * mean_apply, 3),
        "full_recompute_ms": round(1000 * mean_oracle, 3),
        "speedup": round(mean_oracle / mean_apply, 2),
        "memo_hit_rate": round(sum(hit_rates) / STEPS, 4),
        "byte_equal_steps": STEPS - mismatches,
        "steps": STEPS,
    }


def test_e20_incremental_vs_full_recompute(bench_seed):
    rows = [
        _sweep_ratio(ratio, bench_seed + index)
        for index, ratio in enumerate(DELTA_RATIOS)
    ]

    all_byte_equal = all(row["byte_equal_steps"] == row["steps"] for row in rows)
    small = [row for row in rows if row["delta_ratio"] <= SMALL_DELTA]
    small_speedup = min(row["speedup"] for row in small)
    acceptance = {
        "byte_equal_ok": all_byte_equal,
        "speedup_floor": SPEEDUP_FLOOR,
        "small_delta_ratio": SMALL_DELTA,
        "small_delta_min_speedup": small_speedup,
        "small_delta_speedup_ok": small_speedup >= SPEEDUP_FLOOR,
    }
    summary = {
        "experiment": "E20_streaming",
        "seed": bench_seed,
        "items": N_ITEMS,
        "steps_per_ratio": STEPS,
        "acceptance": acceptance,
        "sweep": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_E20.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"data set: {N_ITEMS} items, {STEPS} timed deltas per ratio "
        f"(untimed bootstrap first)",
        "",
        f"{'ratio':>6} {'touched':>8} {'apply ms':>10} {'full ms':>10} "
        f"{'speedup':>8} {'memo hit':>9} {'byte-eq':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['delta_ratio']:>6.0%} {row['items_touched']:>8} "
            f"{row['apply_ms']:>10.2f} {row['full_recompute_ms']:>10.2f} "
            f"{row['speedup']:>7.1f}x {row['memo_hit_rate']:>8.0%} "
            f"{row['byte_equal_steps']:>5}/{row['steps']}"
        )
    lines += [
        "",
        "acceptance: " + ", ".join(
            f"{name}={value}" for name, value in acceptance.items()
        ),
    ]
    write_table(
        "E20_streaming",
        "E20 — incremental apply vs full recompute across delta ratios",
        lines,
        seed=bench_seed,
    )
    assert all_byte_equal, rows
    assert small_speedup >= SPEEDUP_FLOOR, rows
