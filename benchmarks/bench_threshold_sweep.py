"""E4 — editing action conditions between executions (Secs. 4, 5.1).

"Action conditions can be modified on-the-fly, from one process
execution to the next, allowing users to quickly observe the effect of
various filtering options": the view offers three QAs (HR+MC score,
HR-only score, the three-way classifier) precisely so users can compare
their relative effects by editing the selection criteria.  This sweep
regenerates that exploration: one compiled view, many filter conditions,
each re-executed; for each condition we report retained volume and
(thanks to the simulation's ground truth) the resulting precision.

Shape expected: stricter conditions monotonically shrink the retained
set and raise precision; the classifier's `high` class is the
paper's default experiment.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from benchmarks.conftest import write_table
from repro.core.ispider import (
    build_deployment,
    example_quality_view_xml,
    setup_framework,
    FILTER_ACTION,
)
from repro.proteomics.results import ImprintResultSet

CONDITIONS = [
    # progressively stricter class-based conditions
    "ScoreClass in q:low, q:mid, q:high",
    "ScoreClass in q:mid, q:high",
    "ScoreClass in q:high",
    # score-threshold alternatives on the two scoring QAs
    "HR MC > 20",
    "HR MC > 40",
    "HR > 30",
    # the paper's combined filter (Sec. 5.1)
    "ScoreClass in q:high, q:mid and HR MC > 20",
]


def test_condition_sweep(benchmark, paper_scenario, paper_runs):
    framework, holder = setup_framework(paper_scenario)
    results = ImprintResultSet(paper_runs)
    holder.set(results)

    truth_pairs = {
        (sample_id, accession)
        for sample_id, accessions in paper_scenario.ground_truth.items()
        for accession in accessions
    }

    def run_condition(condition: str) -> Tuple[int, float]:
        view = framework.quality_view(example_quality_view_xml(condition))
        outcome = view.run(results.items())
        kept = outcome.surviving(FILTER_ACTION)
        pairs = {(results.run_id(i), results.accession(i)) for i in kept}
        precision = len(pairs & truth_pairs) / max(1, len(pairs))
        return len(kept), precision

    def sweep() -> List[Tuple[str, int, float]]:
        return [(c, *run_condition(c)) for c in CONDITIONS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'kept':>5} {'precision':>9}  condition"]
    for condition, kept, precision in rows:
        lines.append(f"{kept:>5} {precision:>9.2f}  {condition}")
    write_table("E4_threshold_sweep", "Filter-condition sweep", lines)

    by_condition = {c: (kept, p) for c, kept, p in rows}
    all_classes = by_condition["ScoreClass in q:low, q:mid, q:high"]
    mid_up = by_condition["ScoreClass in q:mid, q:high"]
    high_only = by_condition["ScoreClass in q:high"]
    # monotone volume, monotone precision
    assert all_classes[0] >= mid_up[0] >= high_only[0]
    assert all_classes[1] <= mid_up[1] <= high_only[1]
    # the paper's default ("high") is high-precision
    assert high_only[1] >= 0.9
    # keeping every class retains every classified identification
    assert all_classes[0] == len(results)
    # the stricter HR MC threshold keeps fewer than the looser one
    assert by_condition["HR MC > 40"][0] <= by_condition["HR MC > 20"][0]
    # conjunction is at most as permissive as each conjunct
    combined = by_condition["ScoreClass in q:high, q:mid and HR MC > 20"]
    assert combined[0] <= mid_up[0]
    assert combined[0] <= by_condition["HR MC > 20"][0]


def test_recompile_vs_reexecute_cost(benchmark, paper_scenario, paper_runs):
    """Editing a condition requires recompiling the view; this measures
    the explore-loop cost the paper's rapid-prototyping claim rests on."""
    framework, holder = setup_framework(paper_scenario)
    results = ImprintResultSet(paper_runs)
    holder.set(results)

    def edit_and_rerun():
        view = framework.quality_view(example_quality_view_xml("HR MC > 30"))
        return view.run(results.items())

    result = benchmark.pedantic(
        edit_and_rerun, rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.surviving(FILTER_ACTION)
