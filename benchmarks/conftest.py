"""Shared benchmark fixtures and result-table reporting.

Benchmarks regenerate the paper's evaluation artefacts.  Each
experiment writes its table/series to ``benchmarks/results/<id>.txt``
(and echoes it to stdout, visible with ``pytest -s``), so the numbers
survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.proteomics import ProteomicsScenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_table(experiment_id: str, title: str, lines) -> None:
    """Persist one experiment's output table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join([f"# {title}", *lines, ""])
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(body)
    print(f"\n{body}")


@pytest.fixture(scope="session")
def paper_scenario():
    """The paper-scale world: 10 protein spots (Sec. 6.3)."""
    return ProteomicsScenario.generate(seed=42, n_proteins=400, n_spots=10)


@pytest.fixture(scope="session")
def paper_runs(paper_scenario):
    return paper_scenario.identify_all()
