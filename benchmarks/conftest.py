"""Shared benchmark fixtures and result-table reporting.

Benchmarks regenerate the paper's evaluation artefacts.  Each
experiment writes its table/series to ``benchmarks/results/<id>.txt``
(and echoes it to stdout, visible with ``pytest -s``), so the numbers
survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.proteomics import ProteomicsScenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--seed", type=int, default=42,
        help="scenario seed; recorded in the benchmarks/results/* tables",
    )


@pytest.fixture(scope="session")
def bench_seed(request) -> int:
    """The --seed the benchmark run was invoked with."""
    return request.config.getoption("--seed")


def write_table(experiment_id: str, title: str, lines, seed=None) -> None:
    """Persist one experiment's output table and echo it.

    ``seed`` (the run's ``--seed``) is recorded as a header line so a
    committed result file states how to regenerate itself.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [f"# {title}"]
    if seed is not None:
        header.append(f"# seed: {seed}")
    body = "\n".join([*header, *lines, ""])
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(body)
    print(f"\n{body}")


@pytest.fixture(scope="session")
def paper_scenario(bench_seed):
    """The paper-scale world: 10 protein spots (Sec. 6.3)."""
    return ProteomicsScenario.generate(
        seed=bench_seed, n_proteins=400, n_spots=10
    )


@pytest.fixture(scope="session")
def paper_runs(paper_scenario):
    return paper_scenario.identify_all()
