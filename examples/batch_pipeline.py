"""Batched execution: many datasets through one quality view, concurrently.

The paper enacts one quality view per call; the ``repro.runtime``
subsystem turns that into a throughput-oriented service.  This example
identifies proteins in several samples, then pushes each sample's
identifications through the Sec. 5.1 example view as one *batch* of
jobs: the view compiles once, the annotation-repository session is
shared, and a worker pool enacts the jobs concurrently — with per-job
metrics (queue wait, enactment time, annotation-cache hit rate) and an
aggregate throughput snapshot.

Run:  python examples/batch_pipeline.py
"""

from repro.core.ispider import (
    FILTER_ACTION,
    example_quality_view_xml,
    setup_framework,
)
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.runtime import RuntimeConfig


def main() -> None:
    # 1. A synthetic world with several samples ("spots") to identify.
    scenario = ProteomicsScenario.generate(seed=11, n_proteins=150, n_spots=6)
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    print(f"identified {len(results)} candidate proteins "
          f"across {len(runs)} samples")

    # 2. The usual framework + the paper's example quality view.
    framework, holder = setup_framework(scenario)
    holder.set(results)
    view = framework.quality_view(example_quality_view_xml())

    # 3. One dataset per sample: each becomes one job in the batch.
    datasets = [results.items_of_run(run.run_id) for run in runs]

    # 4. A configured runtime: 4 workers, bounded queue, and wavefront
    #    parallelism inside each job (the three QAs fire concurrently).
    config = RuntimeConfig(
        workers=4, queue_size=16, parallel_enactment=True, enactment_workers=3
    )
    with framework.runtime(config) as service:
        batch = service.submit_many(view, datasets)
        outcomes = batch.results(timeout=120)
        snapshot = service.snapshot()

    # 5. Per-job report: what survived, what it cost.
    print(f"\n{'sample':<10} {'items':>5} {'kept':>5} "
          f"{'queued ms':>9} {'run ms':>7} {'cache hits':>10}")
    for run, outcome in zip(runs, outcomes):
        metrics = outcome.metrics
        kept = outcome.surviving(FILTER_ACTION)
        print(f"{run.run_id:<10} {len(outcome.items):>5} {len(kept):>5} "
              f"{1000 * (metrics.queue_wait or 0):>9.2f} "
              f"{1000 * (metrics.run_seconds or 0):>7.2f} "
              f"{metrics.cache_hits:>4}/{metrics.cache_lookups:<5}")

    # 6. Aggregate runtime statistics.
    print(f"\n{snapshot.completed}/{snapshot.submitted} jobs completed "
          f"({snapshot.failed} failed), "
          f"mean queue wait {1000 * snapshot.mean_queue_wait:.2f} ms")
    hottest = sorted(
        snapshot.processor_seconds.items(), key=lambda kv: -kv[1]
    )[:3]
    print("hottest processors: "
          + ", ".join(f"{name} ({1000 * seconds:.1f} ms total)"
                      for name, seconds in hottest))


if __name__ == "__main__":
    main()
