"""Extending the framework: new evidence, a decision-tree QA, a splitter.

Shows the user-extension story of the paper:

* declare a new quality-evidence class (``q:ELDP`` usage plus a custom
  ``ex:LabReputation``) in the IQ model;
* implement a custom annotation function providing it;
* define a *decision-tree* quality assertion ("arbitrary decision
  models", Sec. 4) combining three evidence types;
* route data with a splitter action into accept / review / reject
  groups (the paper's "some data can be directed to a special workflow
  for dedicated processing").

Run:  python examples/custom_quality_assertion.py
"""

from typing import Any, List, Mapping, Optional, Set

from repro.annotation.functions import AnnotationFunction
from repro.annotation.map import AnnotationMap
from repro.core.framework import QuratorFramework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.qa.annotators import ImprintOutputAnnotator
from repro.qa.decision_tree import DecisionTreeQA
from repro.rdf import Namespace, Q, URIRef

EX = Namespace("http://example.org/lab#")

#: Reputation scores per lab (the paper's "reputation and track record
#: of the originating lab" heuristic, Sec. 1).
LAB_REPUTATION = {
    "aberdeen-mcb": 0.9,
    "manchester-proteomics": 0.7,
    "novice-lab": 0.3,
}


class CombinedAnnotator(AnnotationFunction):
    """Imprint indicators plus the custom lab-reputation evidence."""

    function_class = Q["Imprint-output-annotation"]
    provides = ImprintOutputAnnotator.provides | {EX.LabReputation}

    def __init__(self, scenario, results) -> None:
        self.scenario = scenario
        self.results = results
        self._imprint = ImprintOutputAnnotator(results)

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        amap = self._imprint.annotate(
            items, evidence_types & self._imprint.provides, context
        )
        if EX.LabReputation in evidence_types:
            for item in items:
                if item not in self.results:
                    continue
                sample = self.scenario.pedro.get(self.results.run_id(item))
                amap.set_evidence(
                    item, EX.LabReputation, LAB_REPUTATION.get(sample.lab, 0.5)
                )
        return amap


VIEW_XML = """
<QualityView name="lab-aware-triage">
  <namespace prefix="ex" uri="http://example.org/lab#"/>
  <Annotator serviceName="CombinedAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:hitRatio"/>
      <var evidence="q:coverage"/>
      <var evidence="ex:LabReputation"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="LabAwareTriage" serviceType="ex:LabAwareTriage"
                    tagName="Verdict" tagSynType="q:class"
                    tagSemType="ex:TriageClassification">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
      <var variableName="coverage" evidence="q:coverage"/>
      <var variableName="reputation" evidence="ex:LabReputation"/>
    </variables>
  </QualityAssertion>
  <action name="triage">
    <splitter>
      <group name="accept"><condition>Verdict = 'accept'</condition></group>
      <group name="review"><condition>Verdict = 'review'</condition></group>
    </splitter>
  </action>
</QualityView>
"""

#: The decision model: strong evidence accepts outright; moderate
#: evidence is accepted only from reputable labs, otherwise reviewed.
TRIAGE_TREE = {
    "variable": "hitRatio", "op": ">", "threshold": 0.35,
    "then": {
        "variable": "coverage", "op": ">", "threshold": 0.4,
        "then": {"value": "accept"},
        "else": {
            "variable": "reputation", "op": ">=", "threshold": 0.7,
            "then": {"value": "accept"},
            "else": {"value": "review"},
        },
    },
    "else": {
        "variable": "reputation", "op": ">=", "threshold": 0.9,
        "then": {"value": "review"},
        "else": {"value": "reject"},
    },
}


def make_triage_qa(name="LabAwareTriage", tag_name="Verdict", variables=None):
    return DecisionTreeQA(
        name,
        tag_name,
        variables or {},
        TRIAGE_TREE,
        tag_syn_type=Q["class"],
        tag_sem_type=EX.TriageClassification,
        assertion_class=EX.LabAwareTriage,
    )


def main() -> None:
    scenario = ProteomicsScenario.generate(seed=23, n_proteins=200, n_spots=6)
    results = ImprintResultSet(scenario.identify_all())

    framework = QuratorFramework()
    iq = framework.iq_model

    # 1. extend the IQ model: new evidence class + new QA class +
    #    a new classification scheme with enumerated members.
    iq.declare_evidence_type(EX.LabReputation, label="Lab reputation")
    iq.declare_assertion_type(
        EX.LabAwareTriage,
        evidence={Q.HitRatio, Q.Coverage, EX.LabReputation},
        dimension=iq.Reliability,
        label="Lab-aware triage",
    )
    iq.ontology.add_class(
        EX.TriageClassification, (iq.ClassificationModel,)
    )
    for member in ("accept", "review", "reject"):
        iq.ontology.add_individual(EX[member], EX.TriageClassification)

    # 2. deploy the custom components.
    framework.deploy_annotation_service(
        "CombinedAnnotator", CombinedAnnotator(scenario, results)
    )
    framework.deploy_qa_service("LabAwareTriage", EX.LabAwareTriage, make_triage_qa)

    # 3. compile and run the view.
    view = framework.quality_view(VIEW_XML)
    report = view.validate()
    assert report.ok(), report.errors
    outcome = view.run(results.items())

    print("lab-aware triage of identifications:")
    for group in ("accept", "review", "default"):
        items = outcome.group("triage", group)
        label = group if group != "default" else "reject (default group)"
        true = sum(
            1 for i in items
            if scenario.is_true_positive(results.run_id(i), results.accession(i))
        )
        print(f"  {label:<24} {len(items):>4} items ({true} true positives)")

    accepted = outcome.group("triage", "accept")
    precision = sum(
        1 for i in accepted
        if scenario.is_true_positive(results.run_id(i), results.accession(i))
    ) / max(1, len(accepted))
    print(f"\nprecision of the accept group: {precision:.2f}")


if __name__ == "__main__":
    main()
