"""Extending the evidence model with target-decoy FDR.

The framework's promise is that *any* measurable quantity can become
quality evidence (Sec. 2).  This example adds a technique the paper's
successors adopted widely — target-decoy false-discovery-rate
estimation — as a new evidence type:

1. the reference database is reversed into a decoy database;
2. every peak list is searched against both; per-hit q-values follow
   from the decoy hit rate;
3. ``q:DecoyFDR`` is declared in the IQ model, a new annotation
   function provides it, and a quality view filters on
   ``DecoyFDR <= 0.05`` — no framework changes required.

Run:  python examples/fdr_quality_view.py
"""

from repro.core.framework import QuratorFramework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.decoy import (
    DecoyFDRAnnotator,
    DecoySearcher,
    declare_decoy_evidence,
)
from repro.proteomics.results import ImprintResultSet
from repro.rdf import Q

FDR_VIEW_XML = """
<QualityView name="fdr-gate">
  <Annotator serviceName="DecoyFDRAnnotator"
             serviceType="q:DecoyFDRAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:DecoyFDR"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="FDRScore" serviceType="q:HRScore"
                    tagName="FDR pct" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:DecoyFDR"/>
    </variables>
  </QualityAssertion>
  <action name="confident">
    <filter><condition>FDR pct &lt;= 5</condition></filter>
  </action>
</QualityView>
"""


def main() -> None:
    scenario = ProteomicsScenario.generate(seed=13, n_proteins=250, n_spots=8)

    # target + decoy searches for every spot
    searcher = DecoySearcher(scenario.reference, scenario.imprint.settings)
    runs = []
    fdr_by_run = {}
    for sample in scenario.pedro:
        run = scenario.imprint.identify(sample.peaks, run_id=sample.sample_id)
        runs.append(run)
        fdr_by_run[run.run_id] = searcher.fdr_for_run(run, sample.peaks)
    results = ImprintResultSet(runs)
    print(f"searched {len(runs)} spots against target + decoy databases")

    # extend the IQ model and deploy the new annotation function
    framework = QuratorFramework()
    framework.register_standard_services()
    declare_decoy_evidence(framework.iq_model)
    framework.deploy_annotation_service(
        "DecoyFDRAnnotator", DecoyFDRAnnotator(results, fdr_by_run)
    )

    # note: the HRScore QA multiplies by 100, so the FDR (0..1) becomes
    # a percentage and the filter reads naturally as 'FDR pct <= 5'
    view = framework.quality_view(FDR_VIEW_XML)
    report = view.validate()
    assert report.ok(), report.errors
    outcome = view.run(results.items())
    kept = outcome.surviving("confident")

    truth = {
        (s, a)
        for s, accs in scenario.ground_truth.items()
        for a in accs
    }
    pairs = {(results.run_id(i), results.accession(i)) for i in kept}
    precision = len(pairs & truth) / max(1, len(pairs))
    recall = len(pairs & truth) / len(truth)
    print(f"FDR <= 5% gate kept {len(kept)} of {len(results)} identifications")
    print(f"precision {precision:.2f}, recall {recall:.2f}")
    print("\na brand-new evidence type drove a quality view without any")
    print("change to the framework - the Sec. 2 extensibility claim")


if __name__ == "__main__":
    main()
