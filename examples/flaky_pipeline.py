"""Resilient execution: a quality-view batch survives flaky services.

The paper runs its quality services as remote WSDL endpoints and
assumes every call succeeds; ``repro.resilience`` drops that
assumption.  This example injects deterministic faults into the
framework's services, then runs the Sec. 5.1 example view twice:

1. **Recovery** — ~30% of all service invocations fail, and a retry
   policy (exponential backoff, full jitter) absorbs every fault: all
   jobs complete, results identical to a fault-free run, zero dead
   letters.
2. **Degradation** — the ``HRScore`` annotator is taken down entirely;
   ``on_failure="default_annotation"`` lets jobs finish with neutral,
   ``Q.degraded``-tagged annotations instead of failing outright, and
   the runtime counts every degraded firing.

Run:  python examples/flaky_pipeline.py
"""

from repro.core.ispider import (
    FILTER_ACTION,
    example_quality_view_xml,
    setup_framework,
)
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.resilience import FaultInjector, ResilienceConfig
from repro.runtime import RuntimeConfig


def fresh_world(scenario, results):
    framework, holder = setup_framework(scenario)
    holder.set(results)
    view = framework.quality_view(example_quality_view_xml())
    return framework, view


def main() -> None:
    # 1. The usual synthetic world: several samples to identify.
    scenario = ProteomicsScenario.generate(seed=11, n_proteins=150, n_spots=6)
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    datasets_of = lambda res: [res.items_of_run(run.run_id) for run in runs]

    # 2. Recovery: fail ~30% of every service's invocations (seeded, so
    #    the drill is reproducible) and let the retry policy absorb it.
    framework, view = fresh_world(scenario, results)
    injector = FaultInjector(seed=7).plan_all(fault_rate=0.3)
    injector.attach_registry(framework.services)

    resilience = ResilienceConfig(
        max_attempts=6,          # up to 5 retries per service call
        backoff_base=0.002,      # first retry within ~2 ms (full jitter)
        backoff_cap=0.05,
        jitter_seed=7,           # replayable backoff schedule
        breaker_threshold=0,     # no breakers in this short drill
    )
    config = RuntimeConfig(
        workers=4, queue_size=16, parallel_enactment=True,
        enactment_workers=3, resilience=resilience, job_retries=1,
    )
    with framework.runtime(config) as service:
        batch = service.submit_many(view, datasets_of(results))
        outcomes = batch.results(timeout=120)
        snapshot = service.snapshot()
        dead = len(service.dead_letters)

    kept = sum(len(outcome.surviving(FILTER_ACTION)) for outcome in outcomes)
    print(f"recovery drill: {snapshot.completed}/{snapshot.submitted} jobs "
          f"completed, {kept} items kept, {dead} dead-lettered")
    print(f"  {injector.total_injected()} faults injected, "
          f"{snapshot.invocation_retries} invocation retries, "
          f"{snapshot.job_retries} whole-job retries")
    for name, counters in sorted(injector.counters().items()):
        if counters.faults:
            print(f"  {name:<14} {counters.faults:>3} faults "
                  f"in {counters.invocations} invocations")

    # 3. Degradation: kill one annotator outright.  With
    #    on_failure="default_annotation" the enactment still completes —
    #    affected items get a neutral annotation tagged Q.degraded, and
    #    every degraded firing is visible in the stats.
    framework, view = fresh_world(scenario, results)
    outage = FaultInjector(seed=7)
    outage.attach(framework.services.by_name("HRScore"))
    outage.plan("HRScore", fault_rate=1.0)

    degraded_config = RuntimeConfig(
        workers=4, queue_size=16,
        resilience=resilience.with_overrides(
            max_attempts=2, on_failure="default_annotation"
        ),
    )
    with framework.runtime(degraded_config) as service:
        batch = service.submit_many(view, datasets_of(results))
        outcomes = batch.results(timeout=120)
        snapshot = service.snapshot()

    kept = sum(len(outcome.surviving(FILTER_ACTION)) for outcome in outcomes)
    print(f"\nHRScore outage: {snapshot.completed}/{snapshot.submitted} jobs "
          f"still completed ({snapshot.failed} failed), {kept} items kept")
    print(f"  {snapshot.degraded_firings} degraded firings recorded "
          f"— evidence is missing, and the trace says so")


if __name__ == "__main__":
    main()
