"""Deriving a quality assertion from example data, then sharing it.

Demonstrates the paper's Sec. 7 roadmap items implemented here:

* (ii) *machine-learned decision models*: a scientist labels one
  experiment's identifications (here: from simulated ground truth),
  trains a decision tree over the evidence vectors, and deploys it as a
  first-class QA service;
* (iv) *sharing views within a community*: the resulting quality view
  is published to a :class:`QualityViewLibrary`, exported to disk, and
  re-imported by a "peer" who runs it on their own data unchanged.

Run:  python examples/learned_quality_view.py
"""

import tempfile

from repro.core.framework import QuratorFramework
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.qa import ImprintOutputAnnotator, LabeledExample, learn_quality_assertion
from repro.qa.learning import learn_decision_tree, tree_accuracy, tree_depth
from repro.qv import QualityViewLibrary
from repro.rdf import Q

LEARNED_VIEW_XML = """
<QualityView name="learned-triage">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:hitRatio"/>
      <var evidence="q:coverage"/>
      <var evidence="q:peptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="LearnedClassifier"
                    serviceType="q:PIScoreClassifier"
                    tagSemType="q:PIScoreClassification"
                    tagName="Verdict" tagSynType="q:class">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
      <var variableName="coverage" evidence="q:coverage"/>
      <var variableName="peptidesCount" evidence="q:peptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="accept">
    <filter><condition>Verdict = 'high'</condition></filter>
  </action>
</QualityView>
"""

VARIABLES = {
    "hitRatio": Q.HitRatio,
    "coverage": Q.Coverage,
    "peptidesCount": Q.PeptidesCount,
}


def labeled_examples(scenario, results):
    examples = []
    for item in results.items():
        hit = results.hit(item)
        is_true = scenario.is_true_positive(results.run_id(item), hit.accession)
        examples.append(
            LabeledExample(
                {
                    "hitRatio": hit.hit_ratio,
                    "coverage": hit.mass_coverage,
                    "peptidesCount": float(hit.peptides_count),
                },
                Q.high if is_true else Q.low,
            )
        )
    return examples


def make_framework(results):
    framework = QuratorFramework()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", ImprintOutputAnnotator(results)
    )
    return framework


def main() -> None:
    # --- the scientist's lab: train a QA on their labelled data -------
    train_world = ProteomicsScenario.generate(seed=31, n_proteins=200, n_spots=8)
    train_results = ImprintResultSet(train_world.identify_all())
    examples = labeled_examples(train_world, train_results)

    tree = learn_decision_tree(
        examples, list(VARIABLES), max_depth=4, min_samples_leaf=2
    )
    print(f"trained on {len(examples)} labelled identifications")
    print(f"tree depth {tree_depth(tree)}, "
          f"training accuracy {tree_accuracy(tree, examples):.2f}")

    def learned_qa_factory(name="LearnedClassifier", tag_name="Verdict",
                           variables=None):
        return learn_quality_assertion(
            name, tag_name, variables or VARIABLES, examples,
            tag_syn_type=Q["class"], tag_sem_type=Q.PIScoreClassification,
            max_depth=4, min_samples_leaf=2,
        )

    framework = make_framework(train_results)
    framework.deploy_qa_service(
        "LearnedClassifier", Q.PIScoreClassifier, learned_qa_factory
    )

    # --- publish the view to the community library --------------------
    library = QualityViewLibrary(framework.iq_model)
    entry = library.publish_xml(
        LEARNED_VIEW_XML,
        author="scientist-a",
        description="triage learned from spot-labelled PMF data",
    )
    print(f"\npublished {entry.name!r} v{entry.version} to the library")

    with tempfile.TemporaryDirectory() as exchange_dir:
        library.export_to(exchange_dir)

        # --- the peer: different data, same view, same learned QA -----
        peer_world = ProteomicsScenario.generate(
            seed=99, n_proteins=200, n_spots=8
        )
        peer_results = ImprintResultSet(peer_world.identify_all())
        peer_framework = make_framework(peer_results)
        peer_framework.deploy_qa_service(
            "LearnedClassifier", Q.PIScoreClassifier, learned_qa_factory
        )
        peer_library = QualityViewLibrary(peer_framework.iq_model)
        (imported,) = peer_library.import_from(exchange_dir, author="peer-b")
        print(f"peer imported {imported.name!r} "
              f"(originally by {entry.author!r})")

        view = peer_framework.quality_view(imported.spec)
        outcome = view.run(peer_results.items())
        kept = outcome.surviving("accept")

    truth = {
        (s, a)
        for s, accs in peer_world.ground_truth.items()
        for a in accs
    }
    pairs = {(peer_results.run_id(i), peer_results.accession(i)) for i in kept}
    precision = len(pairs & truth) / max(1, len(pairs))
    recall = len(pairs & truth) / len(truth)
    print(f"\npeer's data: kept {len(kept)} of {len(peer_results)} "
          f"identifications (precision {precision:.2f}, recall {recall:.2f})")
    print("the learned decision model transferred across data sets unchanged")


if __name__ == "__main__":
    main()
