"""The paper's running example end-to-end (Figures 1, 6 and 7).

Builds the ISPIDER protein-function analysis workflow (peak lists from
PEDRo -> Imprint identification -> GOA functional annotation), compiles
the Sec. 5.1 quality view, embeds it between identification and GO
retrieval exactly as in Figure 6, and reproduces the Figure 7 analysis:
GO terms ranked by their significance ratio (occurrences with vs
without quality filtering).

Run:  python examples/proteomics_pipeline.py
"""

from repro.core.ispider import build_deployment
from repro.proteomics import ProteomicsScenario
from repro.proteomics.workflows import go_term_frequencies
from repro.workflow.scufl import workflow_to_xml


def main() -> None:
    # The paper's scale: 10 protein spots.
    scenario = ProteomicsScenario.generate(seed=42, n_proteins=400, n_spots=10)
    deployment = build_deployment(scenario)

    print("host workflow (Figure 1):")
    for name in deployment.host.topological_order():
        print(f"  - {name}")
    print("\nembedded quality workflow (Figure 6):")
    for name in deployment.embedded.topological_order():
        marker = "*" if name not in deployment.host.processors else " "
        print(f"  {marker} {name}")
    print("  (* = added by the quality-view compiler / deployment)\n")

    baseline = deployment.run_unfiltered()
    filtered = deployment.run()
    base = go_term_frequencies(baseline["goTerms"])
    kept = go_term_frequencies(filtered["goTerms"])

    print(f"GO-term occurrences without quality view: {sum(base.values())}")
    print(f"GO-term occurrences with quality view:    {sum(kept.values())}\n")

    rows = sorted(
        ((kept.get(t, 0) / base[t], t, base[t], kept.get(t, 0)) for t in base),
        key=lambda r: (-r[0], r[1]),
    )
    print("Figure 7 — GO terms ranked by significance ratio:")
    print(f"{'rank':>4}  {'GO term':<12} {'name':<34} {'raw':>4} {'kept':>4} {'ratio':>6}")
    for rank, (ratio, term, raw, kept_count) in enumerate(rows[:12], start=1):
        name = scenario.ontology.get(term).name[:33]
        print(f"{rank:>4}  {term:<12} {name:<34} {raw:>4} {kept_count:>4} {ratio:>6.2f}")
    print("   ... (terms with ratio 0 were dominated by false positives)")

    # For the curious: the compiled quality workflow as SCUFL-like XML.
    scufl = workflow_to_xml(deployment.view.compile())
    print(f"\ncompiled quality workflow: {scufl.count('<processor')} processors "
          f"({len(scufl)} bytes of SCUFL XML)")


if __name__ == "__main__":
    main()
