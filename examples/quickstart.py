"""Quickstart: define a quality view, run it over identified proteins.

Generates a small synthetic proteomics world, identifies proteins from
simulated mass spectra with the Imprint engine, then applies the
paper's example quality view (Sec. 5.1) — three quality assertions over
Hit Ratio / Mass Coverage evidence plus an editable filter — and prints
what survived.

Run:  python examples/quickstart.py
"""

from repro.core.ispider import (
    FILTER_ACTION,
    example_quality_view_xml,
    setup_framework,
)
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet


def main() -> None:
    # 1. A synthetic world: reference proteome, GO/GOA/Uniprot, PEDRo
    #    samples acquired by a simulated mass spectrometer.
    scenario = ProteomicsScenario.generate(seed=7, n_proteins=150, n_spots=4)

    # 2. Identify the proteins in every sample (ranked hits + quality
    #    indicators, as the Imprint tool produces).
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    print(f"identified {len(results)} candidate proteins "
          f"across {len(runs)} samples")

    # 3. A Qurator framework with the standard QA services and the
    #    Imprint-output annotation function deployed.
    framework, holder = setup_framework(scenario)
    holder.set(results)

    # 4. The paper's example quality view: keep only identifications the
    #    three-way classifier puts in the 'high' class.
    view = framework.quality_view(example_quality_view_xml())
    report = view.validate()
    assert report.ok(), report.errors

    # 5. Run it (compiles to a quality workflow, enacts it).
    result = view.run(results.items())
    surviving = result.surviving(FILTER_ACTION)

    print(f"quality filter kept {len(surviving)} of {len(results)} hits:\n")
    header = f"{'sample':<10} {'accession':<10} {'HR MC':>8} {'class':>6} {'truth':>6}"
    print(header)
    print("-" * len(header))
    for item in surviving:
        run_id = results.run_id(item)
        accession = results.accession(item)
        score = result.tag_of(item, "HR MC")
        label = result.tag_of(item, "ScoreClass")
        is_true = scenario.is_true_positive(run_id, accession)
        print(
            f"{run_id:<10} {accession:<10} {score:>8.2f} "
            f"{label.fragment():>6} {'yes' if is_true else 'NO':>6}"
        )

    # 6. A summary report of the whole execution.
    from repro.core.report import render_report

    print()
    print(render_report(result))


if __name__ == "__main__":
    main()
