"""Streaming quality views: deltas in, drift events out, resumable.

``repro.stream`` adds a second execution mode next to batch enactment.
This example walks the whole streaming loop over the Sec. 5.1 example
view backed by an evidence feed:

* a seeded synthetic delta feed (bootstrap + update batches, with the
  evidence quality degrading halfway through — a drifting instrument),
* the :class:`IncrementalEnactor` absorbing each delta by re-running
  only the affected compiled processors/items, differentially checked
  byte-equal against a full recompute at every step,
* tumbling windows and EWMA/CUSUM detectors over the surviving
  fraction, raising drift events when the degradation starts,
* a persisted stream cursor: the run is interrupted halfway and
  restarted, and the second engine resumes from the watermark without
  reprocessing records or re-announcing old drift events.

Run:  python examples/streaming_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.serving import wire
from repro.storage import CursorFile
from repro.stream import (
    CusumDetector,
    EwmaDetector,
    IncrementalEnactor,
    RollingWindows,
    StreamEngine,
)
from repro.stream.scenario import build_stream_scenario, synthetic_records


class ListSource:
    """A record source over an in-memory list."""

    def __init__(self, records):
        self._records = list(records)

    def records(self):
        return iter(self._records)


def result_bytes(result) -> bytes:
    return wire.dumps(wire.encode_result(result))


def detectors():
    # fresh detector state per engine: deterministic warmup, so a
    # restarted stream never re-announces drift the first run raised
    return [
        EwmaDetector(warmup=3),
        CusumDetector(warmup=3, slack=0.01, limit=0.05),
    ]


def describe(step):
    report = step.outcome.report
    marks = "".join(
        f"  DRIFT[{event.detector} {event.direction}]"
        for event in step.drift_events
    )
    marks += "".join(
        f"  window[mean={window.mean:.3f}]"
        for window in step.closed_windows
    )
    print(
        f"  seq {step.record.seq:>2}  items {report.items_total:>3}  "
        f"reannotated {report.reannotated_items:>3}  "
        f"surviving {step.signal:.3f}{marks}"
    )


def main() -> None:
    # 1. The feed-backed deployment: the Sec. 5.1 view, its annotator
    #    reading from an EvidenceTable that the deltas mutate.  An
    #    absolute HR threshold (rather than the adaptive score classes,
    #    whose avg±stddev bands track uniform degradation) makes the
    #    injected drift visible in the surviving fraction.
    cursor_dir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    records = synthetic_records(
        items=30, steps=14, delta_ratio=0.2, seed=11,
        drift_after=7, drift_quality=0.25,
    )
    print(f"feed: {len(records)} records (30 items, evidence degrades "
          f"after step 7)")

    # 2. First run: process the first 8 records, checkpointing the
    #    watermark after each one, then stop — the "crash".
    scenario = build_stream_scenario("HR > 40")
    enactor = IncrementalEnactor(scenario.view, feed=scenario.table)
    engine = StreamEngine(
        enactor,
        windows=RollingWindows(5.0),
        detectors=detectors(),
        cursor=CursorFile(cursor_dir, "example"),
    )
    print("\nfirst run (interrupted after 8 records):")
    stats = engine.run(ListSource(records[:8]), on_step=describe)
    print(f"  -> {stats.processed} processed, watermark {stats.watermark}")

    # 3. Second run: a brand-new process (fresh framework, fresh
    #    memos, fresh detectors) against the same cursor.  The skipped
    #    prefix is replayed into the feed, one silent bootstrap delta
    #    re-introduces the data set, then live records continue —
    #    differentially verified against full recompute at each step.
    scenario = build_stream_scenario("HR > 40")
    enactor = IncrementalEnactor(scenario.view, feed=scenario.table)
    engine = StreamEngine(
        enactor,
        windows=RollingWindows(5.0),
        detectors=detectors(),
        cursor=CursorFile(cursor_dir, "example"),
    )
    print(f"\nrestarted run (resumes past seq {engine.watermark}):")

    def verify_and_describe(step):
        describe(step)
        incremental = result_bytes(step.outcome.result)
        oracle = result_bytes(enactor.full_recompute())
        assert incremental == oracle, "incremental diverged from batch!"

    stats = engine.run(ListSource(records), on_step=verify_and_describe)
    print(
        f"  -> {stats.skipped} skipped, {stats.bootstrapped_items} items "
        f"re-bootstrapped, {stats.processed} processed, "
        f"{stats.drift_events} drift event(s); every processed step "
        f"byte-equal to full recompute"
    )

    # 4. The cursor records where the stream stopped.
    document = CursorFile(cursor_dir, "example").load()
    print(f"\ncursor {cursor_dir}/stream-example.cursor -> seq "
          f"{document['seq']} (view {document['view']!r})")


if __name__ == "__main__":
    main()
