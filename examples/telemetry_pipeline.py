"""End-to-end telemetry: metrics, spans, and events around one batch.

``repro.observability`` watches a quality-view batch from the outside:
every processor firing, service invocation, retry, and annotation-cache
lookup lands in the process-wide :class:`MetricRegistry`, every job runs
under a hierarchical span, and structured events stream to pluggable
sinks.  This example runs the Sec. 5.1 view over several samples with a
JSON-lines event sink attached, then shows the three export surfaces:

* the per-job span-attributed cache counts (exact even under
  concurrency — no cross-job window deltas),
* a Prometheus text-format scrape excerpt
  (what ``python -m repro metrics`` serves),
* the JSON snapshot joining metrics with circuit-breaker health
  (what ``python -m repro batch --telemetry out.json`` writes).

Run:  python examples/telemetry_pipeline.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.observability import (
    JsonLinesFileSink,
    get_event_log,
    json_snapshot,
    render_prometheus,
)
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.resilience import ResilienceConfig
from repro.runtime import RuntimeConfig


def main() -> None:
    # 1. The usual world: synthetic samples, framework, example view.
    scenario = ProteomicsScenario.generate(seed=7, n_proteins=120, n_spots=4)
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    view = framework.quality_view(example_quality_view_xml())
    datasets = [results.items_of_run(run.run_id) for run in runs]

    # 2. Stream structured events to a JSON-lines file while the batch
    #    runs.  Sinks are pluggable; the default ring buffer stays
    #    attached, so `get_event_log().recent()` keeps working too.
    events_path = Path(tempfile.gettempdir()) / "repro_telemetry_events.jsonl"
    sink = JsonLinesFileSink(str(events_path))
    get_event_log().add_sink(sink)

    # 3. Enact the batch: resilient invocations so the resilience
    #    metrics populate, wavefront enactment inside each job.
    config = RuntimeConfig(
        workers=2,
        parallel_enactment=True,
        resilience=ResilienceConfig(max_attempts=2),
    )
    try:
        with framework.runtime(config) as service:
            batch = service.submit_many(view, datasets)
            outcomes = batch.results(timeout=120)
            snapshot = service.snapshot()
    finally:
        get_event_log().remove_sink(sink)

    # 4. Exact per-job cache attribution: each job's lookup/hit counts
    #    accumulated on that job's own span, across every thread hop.
    print(f"{'sample':<10} {'items':>5} {'cache hits/lookups':>18}")
    for run, outcome in zip(runs, outcomes):
        metrics = outcome.metrics
        print(f"{run.run_id:<10} {len(outcome.items):>5} "
              f"{metrics.cache_hits:>8}/{metrics.cache_lookups:<9}")

    # 5. A Prometheus scrape of the default registry — the exact text
    #    `python -m repro metrics` serves on /metrics.  Print the
    #    runtime families as a taste of the full exposition.
    scrape = render_prometheus()
    runtime_lines = [
        line for line in scrape.splitlines() if "repro_runtime_" in line
    ]
    print("\n--- /metrics excerpt (runtime families) ---")
    for line in runtime_lines[:12]:
        print(line)
    print(f"... {len(scrape.splitlines())} exposition lines total")

    # 6. The JSON snapshot: metrics joined with per-endpoint breaker
    #    health and the runtime aggregates in one document.
    document = json_snapshot(services=framework.services, runtime=snapshot)
    print("\n--- JSON snapshot ---")
    print(f"metric families: {len(document['metrics'])}")
    print(f"runtime: {document['runtime']['completed']} completed, "
          f"{document['runtime']['failed']} failed")
    for endpoint, health in sorted(document["health"].items()):
        print(f"breaker {endpoint}: {health['state']}")

    # 7. The event stream captured during the run.
    events = [
        json.loads(line)
        for line in events_path.read_text().splitlines()
    ]
    kinds = sorted({event["event"] for event in events})
    print(f"\n{len(events)} events streamed to {events_path}")
    print("event kinds: " + ", ".join(kinds))


if __name__ == "__main__":
    main()
