"""Exploring acceptability trade-offs by editing action conditions.

The paper's central usability claim (Secs. 2, 4): QAs are heavyweight
and reusable, while action conditions "can be modified on-the-fly, from
one process execution to the next, allowing users to quickly observe
the effect of various filtering options".  This script plays the
scientist: one data set, one set of QAs, many candidate filters — and,
because the simulation knows the ground truth, it also shows which
filter the scientist should have picked.

Run:  python examples/threshold_exploration.py
"""

from repro.core.ispider import (
    FILTER_ACTION,
    example_quality_view_xml,
    setup_framework,
)
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet

CANDIDATE_FILTERS = [
    "ScoreClass in q:high",
    "ScoreClass in q:high, q:mid",
    "ScoreClass in q:high, q:mid and HR MC > 20",
    "HR MC > 15",
    "HR MC > 30",
    "HR MC > 45",
    "HR > 25",
    "HR > 25 and ScoreClass not in q:low",
]


def main() -> None:
    scenario = ProteomicsScenario.generate(seed=11, n_proteins=250, n_spots=8)
    framework, holder = setup_framework(scenario)
    results = ImprintResultSet(scenario.identify_all())
    holder.set(results)

    truth = {
        (sample, accession)
        for sample, accessions in scenario.ground_truth.items()
        for accession in accessions
    }

    print(f"data set: {len(results)} identifications, "
          f"{len(truth)} of them correct\n")
    header = (
        f"{'kept':>5} {'TP':>4} {'precision':>9} {'recall':>7}  condition"
    )
    print(header)
    print("-" * (len(header) + 20))

    for condition in CANDIDATE_FILTERS:
        view = framework.quality_view(example_quality_view_xml(condition))
        outcome = view.run(results.items())
        kept = outcome.surviving(FILTER_ACTION)
        pairs = {(results.run_id(i), results.accession(i)) for i in kept}
        true_kept = len(pairs & truth)
        precision = true_kept / max(1, len(pairs))
        recall = true_kept / len(truth)
        print(
            f"{len(kept):>5} {true_kept:>4} {precision:>9.2f} "
            f"{recall:>7.2f}  {condition}"
        )

    print(
        "\nEach row is one re-execution of the same compiled QAs with an"
        "\nedited action condition - the explore loop of paper Sec. 4."
    )


if __name__ == "__main__":
    main()
