"""Qurator quality views — a full reproduction of Missier et al.,
"Quality Views: Capturing and Exploiting the User Perspective on Data
Quality" (VLDB 2006).

Quick start::

    from repro import QuratorFramework
    from repro.core.ispider import build_deployment
    from repro.proteomics import ProteomicsScenario

    scenario = ProteomicsScenario.generate(seed=42)
    deployment = build_deployment(scenario)
    outputs = deployment.run()          # quality-filtered GO terms
    baseline = deployment.run_unfiltered()

The public surface:

* :class:`repro.core.QuratorFramework` — configure repositories,
  deploy QA/annotation services, create quality views;
* :class:`repro.core.QualityView` — validate / compile / embed / run;
* ``repro.proteomics`` — the synthetic life-science substrate;
* ``repro.qa`` — the example quality assertions and annotators;
* ``repro.rdf`` / ``repro.ontology`` — the RDF + IQ-model substrate;
* ``repro.workflow`` — the Taverna-like workflow environment.
"""

from repro.core import QualityView, QualityViewResult, QuratorError, QuratorFramework

__version__ = "1.0.0"

__all__ = [
    "QualityView",
    "QualityViewResult",
    "QuratorError",
    "QuratorFramework",
    "__version__",
]
