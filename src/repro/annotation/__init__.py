"""Quality-annotation management (paper Sec. 2-4).

Annotations are quality-evidence values attached to data items.  The
in-memory exchange structure is the :class:`AnnotationMap` of Sec. 4.1
(``d -> {(e, v)}`` plus classification/score tags); persistent storage
is the RDF-backed :class:`AnnotationStore`, accessed by (data item,
evidence type) keys through SPARQL exactly as the paper prescribes.
"""

from repro.annotation.map import AnnotationMap, TagValue
from repro.annotation.store import AnnotationStore
from repro.annotation.manager import RepositoryManager
from repro.annotation.functions import (
    AnnotationFunction,
    AnnotationFunctionRegistry,
    CallableAnnotationFunction,
)

__all__ = [
    "AnnotationFunction",
    "AnnotationFunctionRegistry",
    "AnnotationMap",
    "AnnotationStore",
    "CallableAnnotationFunction",
    "RepositoryManager",
    "TagValue",
]
