"""Annotation functions: the computers of quality evidence.

Paper Sec. 4.1: the Annotation operator "computes a new association map
of evidence values for an input set E of evidence types, and for each
item in the input data set D", storing the map in a repository.  These
functions are user-defined, domain-specific and usually data-specific.
This module provides the abstract base, a callable adapter, and a
registry keyed by the IQ-model class of the function.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set

from repro.annotation.map import AnnotationMap
from repro.annotation.store import AnnotationStore
from repro.rdf import URIRef


class AnnotationFunction(abc.ABC):
    """Computes evidence values for data items.

    Subclasses declare which evidence types they can provide and which
    IQ-model ``q:AnnotationFunction`` subclass they implement; the
    ``context`` argument carries operator-specific side inputs (the
    paper's example: the species of a protein).
    """

    #: IQ-model class this function implements (a q:AnnotationFunction subclass)
    function_class: URIRef

    #: Evidence-type URIs this function can compute values for.
    provides: Set[URIRef] = frozenset()

    @abc.abstractmethod
    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Compute evidence for ``items``, restricted to ``evidence_types``."""

    def annotate_into(
        self,
        store: AnnotationStore,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
        data_class: Optional[URIRef] = None,
    ) -> AnnotationMap:
        """Compute evidence and persist it to a repository."""
        unsupported = set(evidence_types) - set(self.provides)
        if unsupported:
            raise ValueError(
                f"{type(self).__name__} does not provide evidence types "
                f"{sorted(str(u) for u in unsupported)}"
            )
        amap = self.annotate(items, set(evidence_types), context)
        store.annotate_map(amap, data_class=data_class)
        return amap


class CallableAnnotationFunction(AnnotationFunction):
    """Adapter turning a plain callable into an annotation function.

    The callable receives one data item and returns a mapping
    ``{evidence_type: value}`` (missing evidence simply omitted).
    """

    def __init__(
        self,
        function_class: URIRef,
        provides: Iterable[URIRef],
        fn: Callable[[URIRef, Optional[Mapping[str, Any]]], Mapping[URIRef, Any]],
    ) -> None:
        self.function_class = function_class
        self.provides = set(provides)
        self._fn = fn

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Compute evidence for items, restricted to the requested types."""

        amap = AnnotationMap()
        for item in items:
            amap.add_item(item)
            values = self._fn(item, context)
            for evidence_type, value in values.items():
                if evidence_type in evidence_types and value is not None:
                    amap.set_evidence(item, evidence_type, value)
        return amap


class AnnotationFunctionRegistry:
    """Maps IQ-model annotation-function classes to implementations."""

    def __init__(self) -> None:
        self._functions: Dict[URIRef, AnnotationFunction] = {}

    def register(self, function: AnnotationFunction) -> None:
        """Register an implementation under its IQ function class."""
        self._functions[function.function_class] = function

    def resolve(self, function_class: URIRef) -> AnnotationFunction:
        """The implementation for an IQ function class."""
        try:
            return self._functions[function_class]
        except KeyError:
            raise KeyError(
                f"no annotation function registered for {function_class}"
            ) from None

    def providers_of(self, evidence_type: URIRef) -> List[AnnotationFunction]:
        """Every registered function providing an evidence type."""
        return [
            fn for fn in self._functions.values() if evidence_type in fn.provides
        ]

    def __contains__(self, function_class: URIRef) -> bool:
        return function_class in self._functions

    def __len__(self) -> int:
        return len(self._functions)
