"""Named repository management with persistent/transient scopes.

Paper Sec. 4: annotations over stable databases are long-lived and can
be made persistent; annotations produced within the same process that
computes the data (the Imprint case) are scoped to a single process
execution.  The manager owns both kinds — quality views reference them
by name (``repositoryRef="cache"``) — and clears transient stores
between executions.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.annotation.store import AnnotationStore
from repro.ontology.iq_model import IQModel


class RepositoryManager:
    """Registry of named annotation repositories."""

    #: The conventional name of the per-execution scratch repository.
    CACHE = "cache"

    def __init__(
        self,
        iq_model: Optional[IQModel] = None,
        storage_root: Optional[str] = None,
    ) -> None:
        self.iq_model = iq_model
        self.storage_root = storage_root
        self._stores: Dict[str, AnnotationStore] = {}
        #: Hash-partition guard inherited by every store, present and
        #: future; see :meth:`configure_shard`.
        self._shard: Optional[Any] = None
        # Guards the name -> store map so concurrent jobs of the
        # execution runtime can get_or_create repositories safely.
        self._lock = threading.RLock()
        # Every manager offers the per-execution cache by default.
        self.create(self.CACHE, persistent=False)
        if storage_root is not None:
            self.attach_storage(storage_root)

    def create(self, name: str, persistent: bool = True) -> AnnotationStore:
        """Create a new named repository; error if the name exists.

        With a storage root attached, persistent repositories open a
        durable store under ``<root>/<name>``; transient ones (the
        cache) always stay in memory.
        """
        with self._lock:
            if name in self._stores:
                raise ValueError(f"repository {name!r} already exists")
            directory = None
            if self.storage_root is not None and persistent:
                directory = str(pathlib.Path(self.storage_root) / name)
            store = AnnotationStore(
                name,
                iq_model=self.iq_model,
                persistent=persistent,
                directory=directory,
            )
            if self._shard is not None:
                store.configure_shard(self._shard)
            self._stores[name] = store
            return store

    def attach_storage(self, root: str) -> List[str]:
        """Make persistent repositories durable under a directory.

        Future :meth:`create` calls open their store under
        ``<root>/<name>``, and every store directory already present is
        reopened immediately — a restarted process re-serves warm
        annotations without re-annotation.  Returns the names reopened.
        """
        base = pathlib.Path(root)
        base.mkdir(parents=True, exist_ok=True)
        reopened: List[str] = []
        with self._lock:
            self.storage_root = str(base)
            for manifest in sorted(base.glob("*/MANIFEST.json")):
                name = manifest.parent.name
                if name not in self._stores:
                    self.create(name, persistent=True)
                    reopened.append(name)
        return reopened

    def flush_all(self) -> None:
        """Force every repository's pending writes to stable storage."""
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            store.flush()

    def close_all(self) -> None:
        """Flush and close every repository (process shutdown hook)."""
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            store.close()

    def repository(self, name: str) -> AnnotationStore:
        """The repository by name; KeyError lists known names."""
        try:
            return self._stores[name]
        except KeyError:
            raise KeyError(
                f"unknown annotation repository {name!r}; "
                f"known: {sorted(self._stores)}"
            ) from None

    def get_or_create(self, name: str, persistent: bool = True) -> AnnotationStore:
        """The named repository, creating it if missing."""
        with self._lock:
            if name in self._stores:
                return self._stores[name]
            return self.create(name, persistent=persistent)

    def __contains__(self, name: str) -> bool:
        return name in self._stores

    def __iter__(self) -> Iterator[AnnotationStore]:
        return iter(self._stores.values())

    def names(self) -> list:
        """Sorted repository names."""
        return sorted(self._stores)

    def clear_transient(self) -> None:
        """Reset per-execution repositories (end-of-execution hook)."""
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            if not store.persistent:
                store.clear()

    def configure_shard(self, shard: Optional[Any]) -> None:
        """Restrict every repository's writes to one hash partition.

        Installed inside each forked worker of the process execution
        backend (:mod:`repro.runtime.process`): a worker owns exactly
        one partition of every annotation repository, so a write routed
        to the wrong worker fails loudly instead of silently diverging
        from the serial oracle.  Repositories created later inherit the
        guard; ``None`` lifts it everywhere.
        """
        with self._lock:
            self._shard = shard
            for store in self._stores.values():
                store.configure_shard(shard)

    def lookup_stats(self) -> Tuple[int, int]:
        """Aggregate (lookups, hits) across every repository.

        The runtime reads deltas of this around each job to surface
        annotation-cache effectiveness on the job's metrics.
        """
        with self._lock:
            stores = list(self._stores.values())
        lookups = sum(store.stats.lookups for store in stores)
        hits = sum(store.stats.hits for store in stores)
        return lookups, hits

    def drop(self, name: str) -> None:
        """Remove a repository (the cache cannot be dropped)."""
        if name == self.CACHE:
            raise ValueError("the cache repository cannot be dropped")
        self._stores.pop(name, None)

    # -- persistence ---------------------------------------------------------

    def save_all(self, directory: str) -> List[str]:
        """Persist every *persistent* repository to a directory.

        Writes one N-Triples file per repository plus a manifest;
        transient repositories (the cache) are skipped by design — their
        annotations are scoped to one execution.  Returns written paths.
        """
        target = pathlib.Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        manifest = []
        written: List[str] = []
        for name, store in sorted(self._stores.items()):
            if not store.persistent:
                continue
            path = target / f"{name}.nt"
            path.write_text(store.save())
            manifest.append({"name": name, "file": path.name})
            written.append(str(path))
        manifest_path = target / "repositories.json"
        manifest_path.write_text(json.dumps(manifest, indent=2))
        written.append(str(manifest_path))
        return written

    def load_all(self, directory: str) -> List[str]:
        """Restore repositories saved by :meth:`save_all`.

        Missing repositories are created (persistent); existing ones are
        loaded into.  Returns the repository names restored.
        """
        source = pathlib.Path(directory)
        manifest_path = source / "repositories.json"
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no repository manifest at {manifest_path}"
            )
        restored: List[str] = []
        for entry in json.loads(manifest_path.read_text()):
            name = entry["name"]
            store = self.get_or_create(name, persistent=True)
            store.load((source / entry["file"]).read_text())
            restored.append(name)
        return restored
