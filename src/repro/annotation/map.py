"""The annotation map: the framework's unit of data-quality state.

Paper Sec. 4.1: *"Given a data set D and a set E of evidence types, an
annotation map Amap: d -> {(e, v)} associates an evidence value v
(possibly null) for evidence type e to each data item d. [...] We also
use mappings of the form {d -> (t, cl)} to represent the assignment of
class cl to d within a classification scheme t."*

Evidence entries are keyed by evidence-type URI; quality-assertion
outputs are *tags* keyed by the tag name declared in the quality view
(``tagName="HR MC"``), carrying the syntactic type (``q:score`` or
``q:class``) and, for classifications, the scheme they belong to.  Both
kinds are visible to the condition language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf import Literal, URIRef
from repro.rdf.term import Node


@dataclass(frozen=True)
class TagValue:
    """A quality-assertion output attached to one data item."""

    value: Any
    syn_type: Optional[URIRef] = None  # q:score or q:class
    sem_type: Optional[URIRef] = None  # e.g. q:PIScoreClassification

    def plain(self) -> Any:
        """The tag value as a plain Python value (unwrap literals)."""
        if isinstance(self.value, Literal):
            return self.value.value
        return self.value


def _plain(value: Any) -> Any:
    if isinstance(value, Literal):
        return value.value
    return value


class AnnotationMap:
    """Evidence values and QA tags for an ordered set of data items."""

    def __init__(self, items: Iterable[URIRef] = ()) -> None:
        self._order: List[URIRef] = []
        self._evidence: Dict[URIRef, Dict[URIRef, Any]] = {}
        self._tags: Dict[URIRef, Dict[str, TagValue]] = {}
        for item in items:
            self.add_item(item)

    # -- items ---------------------------------------------------------------

    def add_item(self, item: URIRef) -> None:
        """Append a data item (idempotent; preserves insertion order)."""
        if item not in self._evidence:
            self._order.append(item)
            self._evidence[item] = {}
            self._tags[item] = {}

    def items(self) -> List[URIRef]:
        """The data items, in insertion order."""
        return list(self._order)

    def __contains__(self, item: object) -> bool:
        return item in self._evidence

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[URIRef]:
        return iter(self._order)

    # -- evidence ------------------------------------------------------------

    def set_evidence(self, item: URIRef, evidence_type: URIRef, value: Any) -> None:
        """Record an evidence value for (item, evidence type)."""
        self.add_item(item)
        self._evidence[item][evidence_type] = value

    def get_evidence(
        self, item: URIRef, evidence_type: URIRef, default: Any = None
    ) -> Any:
        """The value for (item, evidence type), or ``default``."""
        return self._evidence.get(item, {}).get(evidence_type, default)

    def evidence_for(self, item: URIRef) -> Dict[URIRef, Any]:
        """All evidence values of one item, keyed by type."""
        return dict(self._evidence.get(item, {}))

    def evidence_types(self) -> Set[URIRef]:
        """Every evidence type any item carries."""
        found: Set[URIRef] = set()
        for per_item in self._evidence.values():
            found.update(per_item)
        return found

    def has_evidence(self, item: URIRef, evidence_type: URIRef) -> bool:
        """True if the item has a non-null value for the type."""
        value = self._evidence.get(item, {}).get(evidence_type)
        return value is not None

    # -- tags -------------------------------------------------------------------

    def set_tag(
        self,
        item: URIRef,
        tag_name: str,
        value: Any,
        syn_type: Optional[URIRef] = None,
        sem_type: Optional[URIRef] = None,
    ) -> None:
        """Record a QA output tag for an item."""
        self.add_item(item)
        self._tags[item][tag_name] = TagValue(value, syn_type, sem_type)

    def get_tag(self, item: URIRef, tag_name: str) -> Optional[TagValue]:
        """The item's tag by name, or None."""
        return self._tags.get(item, {}).get(tag_name)

    def tags_for(self, item: URIRef) -> Dict[str, TagValue]:
        """All tags of one item, keyed by tag name."""
        return dict(self._tags.get(item, {}))

    def tag_names(self) -> Set[str]:
        """Every tag name any item carries."""
        found: Set[str] = set()
        for per_item in self._tags.values():
            found.update(per_item)
        return found

    def classification_of(
        self, item: URIRef, scheme: URIRef
    ) -> Optional[URIRef]:
        """The {d -> (t, cl)} lookup: the class of ``item`` under ``scheme``."""
        for tag in self._tags.get(item, {}).values():
            if tag.sem_type == scheme:
                value = tag.plain()
                return value if isinstance(value, URIRef) else None
        return None

    # -- condition-language environment ----------------------------------------

    def environment(
        self, item: URIRef, variable_bindings: Optional[Dict[str, URIRef]] = None
    ) -> Dict[str, Any]:
        """Name -> value bindings visible to a condition for one item.

        Includes every tag by its tag name, and every evidence value
        under any variable names bound to its evidence type (from the
        quality view's ``<var variableName=... evidence=...>``
        declarations) as well as the evidence-type fragment name.
        """
        env: Dict[str, Any] = {}
        for evidence_type, value in self._evidence.get(item, {}).items():
            env[evidence_type.fragment()] = _plain(value)
        if variable_bindings:
            for name, evidence_type in variable_bindings.items():
                env[name] = _plain(self.get_evidence(item, evidence_type))
        for tag_name, tag in self._tags.get(item, {}).items():
            env[tag_name] = tag.plain()
        return env

    # -- structural operations -----------------------------------------------

    def merge(self, other: "AnnotationMap") -> "AnnotationMap":
        """In-place union; ``other`` wins on conflicting entries."""
        for item in other.items():
            self.add_item(item)
            self._evidence[item].update(other._evidence.get(item, {}))
            self._tags[item].update(other._tags.get(item, {}))
        return self

    def subset(self, items: Iterable[URIRef]) -> "AnnotationMap":
        """A new map restricted to ``items`` (order preserved)."""
        wanted = set(items)
        result = AnnotationMap()
        for item in self._order:
            if item in wanted:
                result.add_item(item)
                result._evidence[item].update(self._evidence[item])
                result._tags[item].update(self._tags[item])
        return result

    def copy(self) -> "AnnotationMap":
        """An independent deep-enough copy of the map."""
        return self.subset(self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnnotationMap):
            return NotImplemented
        return (
            self._order == other._order
            and self._evidence == other._evidence
            and self._tags == other._tags
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"<AnnotationMap {len(self._order)} items, "
            f"{len(self.evidence_types())} evidence types, "
            f"{len(self.tag_names())} tags>"
        )
