"""RDF-backed annotation repositories.

Each store encodes annotations exactly as in the paper's Fig. 2: the
data item (an LSID-wrapped URI, typed to a ``q:DataEntity`` subclass)
is linked by ``q:contains-evidence`` to an evidence node which carries
``rdf:type <evidence class>`` and a ``q:value`` literal, plus optional
``q:computedBy`` provenance.  Reads are keyed by (data item, evidence
type) and go through the SPARQL engine, so the storage backend stays
swappable (paper Sec. 5).

All read queries are *prepared* once at module load
(:func:`repro.rdf.sparql.prepare`): the query text carries ``$data`` /
``$etype`` parameters instead of being re-built per item with
``str.format``, so repeat lookups reuse one compiled plan and never
touch the SPARQL lexer or parser.  Bulk reads (:meth:`lookup_batch`,
used by :meth:`enrich`) fetch a whole evidence column in a single
query instead of one query per data item.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.annotation.map import AnnotationMap
from repro.observability import add_to_current, get_registry
from repro.ontology.iq_model import IQModel
from repro.rdf import Graph, Literal, Q, RDF, URIRef
from repro.rdf.sparql import prepare
from repro.rdf.term import Node

_EVIDENCE_QUERY = prepare("""
PREFIX q: <http://qurator.org/iq#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?value WHERE {
  $data q:contains-evidence ?e .
  ?e rdf:type $etype ;
     q:value ?value .
}
""")

#: Distinguishes evidence nodes minted by different store instances of
#: the same name (e.g. a fresh store loading a saved one), so node ids
#: never collide.  Deterministic within a process.
_instance_counter = itertools.count()

_ALL_EVIDENCE_QUERY = prepare("""
PREFIX q: <http://qurator.org/iq#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?type ?value WHERE {
  $data q:contains-evidence ?e .
  ?e rdf:type ?type ;
     q:value ?value .
}
""")

#: One sweep over an entire evidence column; :meth:`lookup_batch`
#: filters the result to the requested items.
_BATCH_EVIDENCE_QUERY = prepare("""
PREFIX q: <http://qurator.org/iq#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?d ?value WHERE {
  ?d q:contains-evidence ?e .
  ?e rdf:type $etype ;
     q:value ?value .
}
""")

_COVERAGE_QUERY = prepare("""
PREFIX q: <http://qurator.org/iq#>
ASK {
  $data q:contains-evidence ?e .
  ?e a $etype .
}
""")


@dataclass
class LookupStats:
    """Read-side counters of one repository (runtime metrics feed).

    A *hit* is a keyed :meth:`AnnotationStore.lookup` that found a
    value.  Counters are cumulative per store; the execution runtime
    reads deltas around each job.
    """

    lookups: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found a value."""
        return self.hits / self.lookups if self.lookups else 0.0


class AnnotationStore:
    """One quality-annotation repository (paper Fig. 5, data layer).

    Concurrency: writes are serialized by the underlying graph's index
    lock, and evidence-node ids come from an atomic counter, so
    concurrent annotators (the execution runtime's jobs) can fill one
    shared repository safely.  Keyed reads are safe alongside writes to
    *other* data items; see ``repro.rdf.graph`` for the full contract.
    """

    def __init__(
        self,
        name: str,
        iq_model: Optional[IQModel] = None,
        persistent: bool = True,
        directory: Optional[str] = None,
        sync: str = "batch",
    ) -> None:
        self.name = name
        self.iq_model = iq_model
        self.persistent = persistent
        self.directory = directory
        if directory is not None:
            # A durable repository: annotations survive restart and are
            # re-served without re-annotation.  The store's open
            # generation replaces the process-local instance counter in
            # evidence-node ids, so nodes minted before and after a
            # restart can never collide.  The engine (disk or paged) is
            # detected from the directory's manifest; a fresh directory
            # follows REPRO_STORAGE_BACKEND (``repro.storage.
            # default_engine``), so the paged CI tier covers this path.
            from repro.storage import open_backend

            backend = open_backend(directory, sync=sync)
            self.graph = Graph(f"annotations:{name}", backend=backend)
            self._instance_token = f"g{backend.generation}"
        else:
            self.graph = Graph(f"annotations:{name}")
            self._instance_token = f"i{next(_instance_counter)}"
        self._counter = itertools.count()
        self._stats_lock = threading.Lock()
        self.stats = LookupStats()
        #: Optional hash-partition guard (an object with ``owns(id)``,
        #: see :class:`repro.runtime.shard.ShardSpec`); installed by the
        #: process backend's workers so a write routed to the wrong
        #: shard fails loudly instead of silently diverging.
        self._shard: Optional[Any] = None

    @property
    def durable(self) -> bool:
        """True when the repository is backed by an on-disk store."""
        return self.graph.backend.durable

    def configure_shard(self, shard: Optional[Any]) -> None:
        """Restrict writes to one hash partition (``None`` lifts it).

        ``shard`` is any object with ``owns(data_id) -> bool`` plus
        ``index``/``count`` attributes — in practice a
        :class:`repro.runtime.shard.ShardSpec`.
        """
        self._shard = shard

    # -- writing -----------------------------------------------------------

    def _new_evidence_node(self) -> URIRef:
        return URIRef(
            f"http://qurator.org/annotation/{self.name}/"
            f"{self._instance_token}e{next(self._counter)}"
        )

    def annotate(
        self,
        data_item: URIRef,
        evidence_type: URIRef,
        value: Any,
        data_class: Optional[URIRef] = None,
        function: Optional[URIRef] = None,
    ) -> URIRef:
        """Attach one evidence value to one data item; returns the node.

        ``value`` may be a plain Python value or a prepared ``Literal``.
        If the store was built with an IQ model, the evidence type must
        be a declared ``q:QualityEvidence`` subclass.
        """
        if self.iq_model is not None and not self.iq_model.is_evidence_type(
            evidence_type
        ):
            raise ValueError(
                f"{evidence_type} is not a QualityEvidence class in the IQ model"
            )
        if self._shard is not None and not self._shard.owns(data_item):
            raise ValueError(
                f"repository {self.name!r} on shard {self._shard.index} "
                f"of {self._shard.count} does not own data item {data_item}"
            )
        node = self._new_evidence_node()
        literal = value if isinstance(value, Literal) else Literal(value)
        self.graph.add(data_item, Q["contains-evidence"], node)
        self.graph.add(node, RDF.type, evidence_type)
        self.graph.add(node, Q.value, literal)
        if data_class is not None:
            self.graph.add(data_item, RDF.type, data_class)
        if function is not None:
            self.graph.add(node, Q.computedBy, function)
        return node

    def annotate_map(
        self, amap: AnnotationMap, data_class: Optional[URIRef] = None
    ) -> int:
        """Persist every evidence entry of an annotation map; returns count."""
        written = 0
        for item in amap.items():
            for evidence_type, value in amap.evidence_for(item).items():
                if value is None:
                    continue
                self.annotate(item, evidence_type, value, data_class=data_class)
                written += 1
        return written

    def remove_annotations(self, data_item: URIRef) -> int:
        """Drop every annotation of one data item."""
        removed = 0
        for node in list(self.graph.objects(data_item, Q["contains-evidence"])):
            removed += self.graph.remove(node, None, None)
            removed += self.graph.remove(data_item, Q["contains-evidence"], node)
        return removed

    # -- reading -----------------------------------------------------------

    def lookup(self, data_item: URIRef, evidence_type: URIRef) -> Optional[Any]:
        """The (data, evidence type) key access of the paper, via SPARQL.

        Every lookup is attributed two ways: to the process-wide
        metric registry (``repro_annotation_store_lookups_total`` by
        store and hit/miss), and — via the active span's root — to
        exactly the runtime job that caused it, however many thread
        hops away it ran (see ``repro.observability.spans``).
        """
        result = _EVIDENCE_QUERY.execute(
            self.graph, data=data_item, etype=evidence_type
        )
        found: Optional[Any] = None
        hit = False
        for (value,) in result:
            hit = True
            found = value.value if isinstance(value, Literal) else value
            break
        with self._stats_lock:
            self.stats.lookups += 1
            if hit:
                self.stats.hits += 1
        get_registry().counter(
            "repro_annotation_store_lookups_total",
            "Keyed evidence reads by store and hit/miss.",
            labels=("store", "result"),
        ).labels(store=self.name, result="hit" if hit else "miss").inc()
        add_to_current("cache.lookups", 1)
        if hit:
            add_to_current("cache.hits", 1)
        return found

    def lookup_all(self, data_item: URIRef) -> Dict[URIRef, Any]:
        """Every (evidence type, value) pair known for a data item."""
        result = _ALL_EVIDENCE_QUERY.execute(self.graph, data=data_item)
        found: Dict[URIRef, Any] = {}
        for evidence_type, value in result:
            if isinstance(evidence_type, URIRef):
                found[evidence_type] = (
                    value.value if isinstance(value, Literal) else value
                )
        return found

    def lookup_batch(
        self, items: Iterable[URIRef], evidence_type: URIRef
    ) -> Dict[URIRef, Any]:
        """One evidence type for many data items in a single query.

        Sweeps the whole evidence column once and filters to the
        requested items, instead of issuing one keyed query per item.
        Accounting matches per-item :meth:`lookup` exactly: every
        requested item counts as one lookup, every item with a value
        as one hit.
        """
        wanted = list(items)
        wanted_set = set(wanted)
        found: Dict[URIRef, Any] = {}
        result = _BATCH_EVIDENCE_QUERY.execute(self.graph, etype=evidence_type)
        for data_item, value in result:
            if data_item in wanted_set and data_item not in found:
                found[data_item] = (
                    value.value if isinstance(value, Literal) else value
                )
        hits = len(found)
        with self._stats_lock:
            self.stats.lookups += len(wanted)
            self.stats.hits += hits
        counter = get_registry().counter(
            "repro_annotation_store_lookups_total",
            "Keyed evidence reads by store and hit/miss.",
            labels=("store", "result"),
        )
        if hits:
            counter.labels(store=self.name, result="hit").inc(hits)
        if len(wanted) - hits:
            counter.labels(store=self.name, result="miss").inc(len(wanted) - hits)
        add_to_current("cache.lookups", len(wanted))
        if hits:
            add_to_current("cache.hits", hits)
        return found

    def enrich(
        self,
        amap: AnnotationMap,
        items: Iterable[URIRef],
        evidence_types: Iterable[URIRef],
    ) -> AnnotationMap:
        """Fill an annotation map from the store (Data Enrichment reads).

        Uses :meth:`lookup_batch` — one query per evidence type rather
        than one per (item, type) pair — with identical hit/miss
        accounting.
        """
        wanted = list(evidence_types)
        batch = list(items)
        for item in batch:
            amap.add_item(item)
        for evidence_type in wanted:
            for item, value in self.lookup_batch(batch, evidence_type).items():
                amap.set_evidence(item, evidence_type, value)
        return amap

    def unannotated_items(
        self, items: Iterable[URIRef], evidence_type: URIRef
    ) -> List[URIRef]:
        """The given items lacking any value for an evidence type.

        The coverage check a Data-Enrichment caller runs to decide
        whether an annotation function must fire.
        """
        missing: List[URIRef] = []
        for item in items:
            result = _COVERAGE_QUERY.execute(
                self.graph, data=item, etype=evidence_type
            )
            if not result.boolean:
                missing.append(item)
        return missing

    def annotated_items(self) -> Set[URIRef]:
        """Every data item with at least one annotation."""
        return {
            s
            for s in self.graph.subjects(Q["contains-evidence"], None)
            if isinstance(s, URIRef)
        }

    def evidence_types_present(self) -> Set[URIRef]:
        """Every evidence class instantiated in the store."""
        found: Set[URIRef] = set()
        for node in self.graph.objects(None, Q["contains-evidence"]):
            for cls in self.graph.objects(node, RDF.type):
                if isinstance(cls, URIRef):
                    found.add(cls)
        return found

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        """Drop all triples (used for per-execution cache resets)."""
        self.graph.clear()

    def flush(self) -> None:
        """Force pending writes to stable storage (durable stores)."""
        self.graph.flush()

    def close(self) -> None:
        """Flush and release the underlying backend; idempotent."""
        self.graph.close()

    def save(self) -> str:
        """Serialise the repository to N-Triples."""
        return self.graph.serialize("ntriples")

    def load(self, text: str) -> None:
        """Merge a saved repository into this one.

        Node-id collisions cannot occur: every store instance mints
        evidence nodes under its own instance token.
        """
        self.graph.parse(text, "ntriples")

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        kind = "persistent" if self.persistent else "transient"
        return f"<AnnotationStore {self.name!r} ({kind}, {len(self.graph)} triples)>"
