"""Structured (graph-valued) evidence and assertion provenance.

Paper footnote 14: "we exploit the flexibility of the RDF model to
allow for values of quality evidence that are themselves arbitrary RDF
graphs".  ``annotate_structured`` stores an evidence value whose payload
is a set of (property, value) statements instead of one literal — e.g.
an identification context carrying instrument, lab and acquisition
date — and ``lookup_structured`` reads it back.

``record_assertions`` persists quality-assertion outcomes (the
``q:assignedClass`` / ``q:assignedScore`` tags) into a repository, so
past quality decisions are themselves queryable metadata — an audit
trail over the annotation store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.annotation.map import AnnotationMap
from repro.annotation.store import AnnotationStore
from repro.rdf import Graph, Literal, Q, RDF, URIRef
from repro.rdf.term import Node

#: Vocabulary for persisted assertion results.
ASSERTION_RESULT = Q.QualityAssertionResult
HAS_ASSERTION = Q.hasAssertionResult
TAG_NAME = Q.tagName


def annotate_structured(
    store: AnnotationStore,
    data_item: URIRef,
    evidence_type: URIRef,
    description: Mapping[str, Any],
    data_class: Optional[URIRef] = None,
) -> URIRef:
    """Attach graph-valued evidence: one statement per description entry.

    Keys become ``q:``-namespace properties on the evidence node; values
    may be plain Python values (stored as literals) or URIs.
    """
    if not description:
        raise ValueError("structured evidence needs at least one statement")
    if store.iq_model is not None and not store.iq_model.is_evidence_type(
        evidence_type
    ):
        raise ValueError(
            f"{evidence_type} is not a QualityEvidence class in the IQ model"
        )
    node = store._new_evidence_node()
    store.graph.add(data_item, Q["contains-evidence"], node)
    store.graph.add(node, RDF.type, evidence_type)
    if data_class is not None:
        store.graph.add(data_item, RDF.type, data_class)
    for key, value in description.items():
        prop = Q[key]
        obj: Node = value if isinstance(value, URIRef) else Literal(value)
        store.graph.add(node, prop, obj)
    return node


def lookup_structured(
    store: AnnotationStore, data_item: URIRef, evidence_type: URIRef
) -> Optional[Dict[str, Any]]:
    """Read graph-valued evidence back as a {key: value} description."""
    for node in store.graph.objects(data_item, Q["contains-evidence"]):
        if (node, RDF.type, evidence_type) not in store.graph:
            continue
        description: Dict[str, Any] = {}
        for _, prop, obj in store.graph.triples((node, None, None)):
            if prop == RDF.type:
                continue
            key = prop.fragment()
            description[key] = obj.value if isinstance(obj, Literal) else obj
        if description:
            return description
    return None


def record_assertions(store: AnnotationStore, amap: AnnotationMap) -> int:
    """Persist every QA tag of an annotation map; returns tags written.

    Each tag becomes an assertion-result node::

        <item> q:hasAssertionResult _:r .
        _:r rdf:type q:QualityAssertionResult ;
            q:tagName "ScoreClass" ;
            q:assignedClass q:high .      # or q:assignedScore 73.2
    """
    written = 0
    for item in amap.items():
        for tag_name, tag in amap.tags_for(item).items():
            value = tag.plain()
            if value is None:
                continue
            node = store._new_evidence_node()
            store.graph.add(item, HAS_ASSERTION, node)
            store.graph.add(node, RDF.type, ASSERTION_RESULT)
            store.graph.add(node, TAG_NAME, Literal(tag_name))
            if isinstance(value, URIRef):
                store.graph.add(node, Q.assignedClass, value)
            else:
                store.graph.add(node, Q.assignedScore, Literal(value))
            if tag.sem_type is not None:
                store.graph.add(node, Q.classificationModel, tag.sem_type)
            written += 1
    return written


def lookup_assertions(
    store: AnnotationStore, data_item: URIRef
) -> List[Tuple[str, Any]]:
    """All persisted (tag name, value) assertion results for one item."""
    results: List[Tuple[str, Any]] = []
    for node in store.graph.objects(data_item, HAS_ASSERTION):
        name = store.graph.value(node, TAG_NAME, None)
        value: Any = store.graph.value(node, Q.assignedClass, None)
        if value is None:
            value = store.graph.value(node, Q.assignedScore, None)
            if isinstance(value, Literal):
                value = value.value
        if name is not None:
            results.append((str(name), value))
    return sorted(results, key=lambda pair: pair[0])
