"""The binding model (paper Secs. 3 and 6).

A small ontology bridging the conceptual IQ model and the framework
implementation: any IQ concept can be associated with a concrete
``ServiceResource`` or ``DataResource`` through a ``Binding`` object;
each resource has a locator whose nature depends on its type — a
service endpoint, an XPath expression, an SQL query, or a URL.
"""

from repro.binding.model import (
    Binding,
    BindingError,
    DataResource,
    LocatorType,
    Resource,
    ServiceResource,
)
from repro.binding.registry import BindingRegistry

__all__ = [
    "Binding",
    "BindingError",
    "BindingRegistry",
    "DataResource",
    "LocatorType",
    "Resource",
    "ServiceResource",
]
