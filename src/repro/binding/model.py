"""Binding-model objects: Binding, ServiceResource, DataResource."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.rdf import URIRef


class BindingError(KeyError):
    """Raised when a concept cannot be resolved to a resource."""


class LocatorType(enum.Enum):
    """The nature of a resource locator (paper Sec. 3: "a resource has a
    locator associated with it, whose nature depends on the type of the
    resource, e.g. a service endpoint")."""

    SERVICE_ENDPOINT = "service-endpoint"
    XPATH = "xpath"
    SQL = "sql"
    URL = "url"
    REPOSITORY = "repository"


@dataclass(frozen=True)
class Resource:
    """A concrete resource with its typed locator."""

    locator: str
    locator_type: LocatorType

    def is_service(self) -> bool:
        """True when the locator is a service endpoint."""
        return self.locator_type is LocatorType.SERVICE_ENDPOINT


@dataclass(frozen=True)
class ServiceResource(Resource):
    """A deployed service, located by its endpoint URL."""

    def __init__(self, endpoint: str) -> None:
        object.__setattr__(self, "locator", endpoint)
        object.__setattr__(self, "locator_type", LocatorType.SERVICE_ENDPOINT)

    @property
    def endpoint(self) -> str:
        """The service endpoint URL (alias of ``locator``)."""
        return self.locator


@dataclass(frozen=True)
class DataResource(Resource):
    """A data source, located by XPath / SQL / URL / repository name."""

    def __init__(self, locator: str, locator_type: LocatorType) -> None:
        if locator_type is LocatorType.SERVICE_ENDPOINT:
            raise ValueError("a DataResource cannot have a service-endpoint locator")
        object.__setattr__(self, "locator", locator)
        object.__setattr__(self, "locator_type", locator_type)


@dataclass(frozen=True)
class Binding:
    """Associates an IQ-model concept with a concrete resource."""

    concept: URIRef
    resource: Union[ServiceResource, DataResource]

    def __repr__(self) -> str:
        return (
            f"Binding({self.concept.fragment()} -> "
            f"{self.resource.locator_type.value}:{self.resource.locator})"
        )
