"""The semantic binding registry.

Bindings are stored as RDF in the ``qb:`` namespace so that the registry
itself is a graph (queryable, serialisable alongside the IQ model):

    _:b  rdf:type        qb:Binding ;
         qb:concept      q:UniversalPIScore2 ;
         qb:resource     _:r .
    _:r  rdf:type        qb:ServiceResource ;
         qb:locator      "http://qurator.org/services/HR_MC_score" ;
         qb:locatorType  "service-endpoint" .

Resolution walks the IQ-class hierarchy upward: a concept with no
direct binding inherits its nearest bound superclass's resource, which
is what lets user-specialised operator classes run without rebinding.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.binding.model import (
    Binding,
    BindingError,
    DataResource,
    LocatorType,
    Resource,
    ServiceResource,
)
from repro.ontology.ontology import Ontology
from repro.rdf import BNode, Graph, Literal, QB, RDF, URIRef


class BindingRegistry:
    """Concept -> resource associations over an RDF store."""

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.graph = Graph("binding-registry")
        self.ontology = ontology
        # Fast-path cache mirroring the graph.
        self._direct: Dict[URIRef, List[Binding]] = {}

    # -- registration ----------------------------------------------------------

    def bind_service(self, concept: URIRef, endpoint: str) -> Binding:
        """Bind a concept to a deployed service endpoint."""
        return self._record(Binding(concept, ServiceResource(endpoint)))

    def bind_data(
        self, concept: URIRef, locator: str, locator_type: LocatorType
    ) -> Binding:
        """Bind a concept to a data resource with a typed locator."""
        return self._record(Binding(concept, DataResource(locator, locator_type)))

    def _record(self, binding: Binding) -> Binding:
        binding_node = BNode()
        resource_node = BNode()
        resource_class = (
            QB.ServiceResource if binding.resource.is_service() else QB.DataResource
        )
        self.graph.add(binding_node, RDF.type, QB.Binding)
        self.graph.add(binding_node, QB.concept, binding.concept)
        self.graph.add(binding_node, QB.resource, resource_node)
        self.graph.add(resource_node, RDF.type, resource_class)
        self.graph.add(resource_node, QB.locator, Literal(binding.resource.locator))
        self.graph.add(
            resource_node,
            QB.locatorType,
            Literal(binding.resource.locator_type.value),
        )
        self._direct.setdefault(binding.concept, []).append(binding)
        return binding

    # -- resolution --------------------------------------------------------------

    def bindings_of(self, concept: URIRef) -> List[Binding]:
        """Direct bindings of a concept (no hierarchy walk)."""
        return list(self._direct.get(concept, []))

    def resolve(self, concept: URIRef) -> Binding:
        """The binding for a concept, inheriting from superclasses.

        Raises :class:`BindingError` when nothing in the concept's
        superclass chain is bound, or a level is ambiguously bound.
        """
        chain = [concept]
        if self.ontology is not None:
            # Nearest-first walk of the superclass closure.
            remaining = set(self.ontology.superclasses(concept))
            frontier = [concept]
            while remaining:
                next_frontier = []
                for cls in frontier:
                    for parent in self.ontology.direct_superclasses(cls):
                        if parent in remaining:
                            remaining.discard(parent)
                            chain.append(parent)
                            next_frontier.append(parent)
                if not next_frontier:
                    break
                frontier = next_frontier
        for candidate in chain:
            found = self._direct.get(candidate, [])
            if len(found) == 1:
                return found[0]
            if len(found) > 1:
                raise BindingError(
                    f"concept {candidate} has {len(found)} bindings; "
                    f"resolution requires exactly one per level"
                )
        raise BindingError(f"no binding found for concept {concept}")

    def resolve_endpoint(self, concept: URIRef) -> str:
        """The bound service endpoint for a concept."""
        binding = self.resolve(concept)
        if not binding.resource.is_service():
            raise BindingError(
                f"concept {concept} is bound to a data resource, not a service"
            )
        return binding.resource.locator

    def is_bound(self, concept: URIRef) -> bool:
        """True when the concept (or a superclass) has a binding."""
        try:
            self.resolve(concept)
        except BindingError:
            return False
        return True

    def concepts(self) -> List[URIRef]:
        """Every directly-bound concept, sorted."""
        return sorted(self._direct, key=str)

    def __len__(self) -> int:
        return sum(len(bindings) for bindings in self._direct.values())

    def __repr__(self) -> str:
        return f"<BindingRegistry: {len(self)} bindings>"
