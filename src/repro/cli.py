"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``validate <view.xml>`` — parse and validate a quality view against
  the IQ model; exit status 1 on errors.
* ``compile <view.xml>`` — compile a view (with the standard services
  deployed) and print the resulting quality workflow as SCUFL-like XML.
  ``--explain`` prints the optimization-pass pipeline, per-pass IR
  deltas and the wavefront schedule instead; ``--disable-pass NAME``
  switches individual passes off; ``--observed-outputs PORTS``
  restricts the output contract (arming filter pushdown / aggressive
  evidence pruning); ``--no-optimize`` runs the single-shot reference
  translation.
* ``demo [--spots N] [--seed S]`` — run the paper's Figure-7 experiment
  and print the significance-ratio table.
* ``batch [--workers W] [--spots N]`` — drive the concurrent execution
  runtime: one quality-view job per sample through the job queue and
  worker pool, with per-job and aggregate metrics.  ``--fault-rate`` /
  ``--retry-attempts`` / ``--job-retries`` / ``--on-failure`` exercise
  the resilience layer; ``--telemetry <path>`` dumps the full JSON
  telemetry snapshot (metrics + breaker health + runtime aggregates +
  events + spans) after the batch; the exit status is non-zero when
  any job fails or is dead-lettered.
* ``metrics [--port P] [--oneshot]`` — run a small instrumented
  workload, then expose the metric registry: an HTTP endpoint serving
  Prometheus text (``/metrics``) and a JSON snapshot
  (``/metrics.json``), or — with ``--oneshot`` — a single scrape
  printed to stdout.
* ``serve [--port P] [--workers W] [--quota-rate R]`` — run the
  long-lived multi-tenant quality-view server over a synthetic
  proteomics deployment: ``PUT /views/{name}`` registers views (the
  compiled-plan cache shares one compilation per view fingerprint
  across tenants), ``POST /views/{name}/enact`` routes submissions
  through the execution runtime under per-tenant token-bucket quotas
  (429 + ``Retry-After`` on exhaustion or queue backpressure), plus
  job lifecycle (``/jobs``), dead letters, ``/metrics``, and
  ``/healthz``.  ``--register-example`` pre-registers the Sec. 5.1
  example view; ``--store-dir PATH`` makes the deployment durable —
  registered views and persistent annotation repositories live in
  disk-backed stores under PATH and are re-served after restart
  without re-registration; Ctrl-C shuts down cleanly.
* ``stream [--events FILE] [--cursor-dir PATH]`` — run the streaming
  quality-view engine over a delta feed: each record is absorbed
  incrementally (only touched items re-annotated, QA verdicts served
  from the memo table when unaffected), the surviving fraction feeds
  tumbling/sliding windows and EWMA/CUSUM drift detectors, and drift
  raises events through the observability event log.  Without
  ``--events`` a seeded synthetic feed is generated (``--items``,
  ``--steps``, ``--delta-ratio``, ``--drift-after``);
  ``--emit-events`` writes that feed to a JSON-lines file instead of
  running.  ``--cursor-dir`` persists the watermark after every
  record, so a killed-and-restarted stream resumes where it stopped
  without reprocessing or duplicate drift events; ``--verify`` checks
  every incremental result byte-equal against a full recompute.
* ``store load|info|compact|snapshot`` — manage durable triple
  stores: ``load`` streams an N-Triples file into a fresh store
  through the bulk loader (no per-triple WAL traffic, reports
  triples/sec), ``info`` prints a store's manifest/recovery summary
  (plus any stream cursor files checkpointing into the directory),
  ``compact`` folds segments + WAL into one fresh segment, and
  ``snapshot`` writes a consistent copy to a new directory.
* ``query <sparql> [--data FILE] [--explain]`` — run a SPARQL query
  over an RDF file (or a synthetic annotation store) through the
  planned execution path; ``--explain`` prints the chosen join order,
  per-pattern cardinality estimates and plan-cache statistics instead
  of rows; ``--no-planner`` / ``--no-cache`` select the naive
  evaluator or disable plan reuse for comparison.
* ``info`` — one-paragraph description and component inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qurator quality views (Missier et al., VLDB 2006)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate a quality-view XML file"
    )
    validate.add_argument("file", help="path to the quality-view XML")

    compile_cmd = commands.add_parser(
        "compile", help="compile a view and print the quality workflow"
    )
    compile_cmd.add_argument("file", help="path to the quality-view XML")
    compile_cmd.add_argument(
        "--explain", action="store_true",
        help="print the pass pipeline and per-pass IR deltas instead "
             "of the workflow XML",
    )
    compile_cmd.add_argument(
        "--no-optimize", action="store_true",
        help="use the single-shot reference translation (no IR, no "
             "passes, no schedule annotation)",
    )
    compile_cmd.add_argument(
        "--disable-pass", action="append", default=[], metavar="NAME",
        dest="disabled_passes",
        help="switch off one optimization pass by name (repeatable); "
             "see the --explain output for registered names",
    )
    compile_cmd.add_argument(
        "--observed-outputs", metavar="PORTS", default=None,
        help="comma-separated workflow outputs the caller consumes; "
             "omitting annotationMap arms filter pushdown and "
             "aggressive evidence pruning",
    )

    demo = commands.add_parser(
        "demo", help="run the Figure-7 experiment on synthetic data"
    )
    demo.add_argument("--spots", type=int, default=10)
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--proteins", type=int, default=400)
    demo.add_argument(
        "--filter",
        dest="filter_condition",
        default="ScoreClass in q:high",
        help="the action condition applied to identifications",
    )

    batch = commands.add_parser(
        "batch", help="run concurrent quality-view jobs through the runtime"
    )
    batch.add_argument("--spots", type=int, default=8)
    batch.add_argument("--proteins", type=int, default=200)
    batch.add_argument("--seed", type=int, default=42)
    batch.add_argument("--workers", type=int, default=4)
    batch.add_argument(
        "--backend", choices=("thread", "process"), default=None,
        help="execution backend (default: thread, or the "
             "REPRO_RUNTIME_BACKEND environment variable)",
    )
    batch.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="worker processes of the process backend "
             "(0 derives the count from --workers)",
    )
    batch.add_argument("--queue-size", type=int, default=32)
    batch.add_argument(
        "--policy", choices=("block", "reject"), default="block",
        help="admission control when the job queue is full",
    )
    batch.add_argument(
        "--parallel-enactment", action="store_true",
        help="also parallelise processors inside each job (wavefront)",
    )
    batch.add_argument(
        "--latency", type=float, default=0.0, metavar="MS",
        help="simulated WSDL round-trip per service call, in milliseconds",
    )
    batch.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="inject a ServiceFault into this fraction of service calls",
    )
    batch.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault-injection streams",
    )
    batch.add_argument(
        "--retry-attempts", type=int, default=None, metavar="N",
        help="per-invocation attempts under the resilience policy "
             "(default: 3 whenever faults are injected; omit both for "
             "the bare, non-resilient invocation path)",
    )
    batch.add_argument(
        "--job-retries", type=int, default=0,
        help="whole-job re-runs before a failed job is dead-lettered",
    )
    batch.add_argument(
        "--on-failure", choices=("fail", "skip", "default_annotation"),
        default="fail",
        help="degradation policy of service-backed processors",
    )
    batch.add_argument(
        "--filter",
        dest="filter_condition",
        default="ScoreClass in q:high",
        help="the action condition applied to identifications",
    )
    batch.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write the JSON telemetry snapshot here after the batch",
    )

    metrics = commands.add_parser(
        "metrics",
        help="expose execution metrics (Prometheus text + JSON snapshot)",
    )
    metrics.add_argument("--spots", type=int, default=4)
    metrics.add_argument("--proteins", type=int, default=120)
    metrics.add_argument("--seed", type=int, default=42)
    metrics.add_argument("--workers", type=int, default=2)
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument(
        "--port", type=int, default=9464,
        help="HTTP port for /metrics (0 binds an ephemeral port)",
    )
    metrics.add_argument(
        "--oneshot", action="store_true",
        help="print one scrape to stdout instead of serving HTTP",
    )
    metrics.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="--oneshot output: Prometheus text or the JSON snapshot",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant quality-view server (HTTP/JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8099,
        help="HTTP port (0 binds an ephemeral port)",
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--backend", choices=("thread", "process"), default=None,
        help="execution backend (default: thread, or the "
             "REPRO_RUNTIME_BACKEND environment variable)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="worker processes of the process backend "
             "(0 derives the count from --workers)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="bound of the job queue backing admission control",
    )
    serve.add_argument(
        "--parallel-enactment", action="store_true",
        help="wavefront-parallel enactment inside each job",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=50.0, metavar="R",
        help="per-tenant refill rate, requests/second (0 disables quotas)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=100.0, metavar="B",
        help="per-tenant burst capacity, tokens",
    )
    serve.add_argument(
        "--plan-cache-size", type=int, default=128, metavar="N",
        help="LRU capacity of the shared compiled-plan cache",
    )
    serve.add_argument(
        "--register-example", action="store_true",
        help="pre-register the Sec. 5.1 example view as "
             "'protein-id-quality'",
    )
    serve.add_argument(
        "--spots", type=int, default=8,
        help="protein spots of the synthetic backing scenario",
    )
    serve.add_argument("--proteins", type=int, default=200)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--store-dir", metavar="PATH", default=None,
        help="durable state root: registered views and persistent "
             "annotation repositories survive restart (omit for "
             "in-memory serving)",
    )
    serve.add_argument(
        "--store-sync", choices=("always", "batch", "none"),
        default="batch",
        help="WAL fsync policy of the durable stores",
    )

    stream = commands.add_parser(
        "stream",
        help="run the streaming quality-view engine over a delta feed",
    )
    stream.add_argument(
        "--events", metavar="PATH", default=None,
        help="JSON-lines delta feed to consume (default: a seeded "
             "synthetic feed)",
    )
    stream.add_argument(
        "--follow", action="store_true",
        help="tail --events for appended records instead of stopping "
             "at end of file",
    )
    stream.add_argument(
        "--emit-events", metavar="PATH", default=None,
        help="write the synthetic feed to this JSON-lines file and exit",
    )
    stream.add_argument(
        "--cursor-dir", metavar="PATH", default=None,
        help="directory for the persistent stream cursor; a restarted "
             "stream resumes from the recorded watermark",
    )
    stream.add_argument(
        "--cursor-name", default="default", metavar="NAME",
        help="cursor file name (stream-<NAME>.cursor)",
    )
    stream.add_argument("--items", type=int, default=40,
                        help="items in the synthetic feed's data set")
    stream.add_argument("--steps", type=int, default=20,
                        help="update batches in the synthetic feed")
    stream.add_argument(
        "--delta-ratio", type=float, default=0.1, metavar="R",
        help="fraction of items each synthetic delta touches",
    )
    stream.add_argument("--seed", type=int, default=42)
    stream.add_argument(
        "--drift-after", type=int, default=None, metavar="K",
        help="degrade synthetic evidence quality after K update steps",
    )
    stream.add_argument(
        "--window", type=float, default=5.0, metavar="SIZE",
        help="window length over the quality signal (event time)",
    )
    stream.add_argument(
        "--slide", type=float, default=None, metavar="S",
        help="window hop (default: tumbling, hop == size)",
    )
    stream.add_argument(
        "--max-records", type=int, default=None, metavar="N",
        help="stop after processing N records",
    )
    stream.add_argument(
        "--verify", action="store_true",
        help="differentially check every incremental result byte-equal "
             "against a full recompute (slow)",
    )
    stream.add_argument(
        "--filter",
        dest="filter_condition",
        default="ScoreClass in q:high",
        help="the view's action condition",
    )

    store = commands.add_parser(
        "store", help="manage durable triple-store directories"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_load = store_commands.add_parser(
        "load", help="bulk-load an N-Triples file into a fresh store"
    )
    store_load.add_argument("file", help="source N-Triples file")
    store_load.add_argument("directory", help="store directory to create")
    store_load.add_argument(
        "--batch-size", type=int, default=50_000, metavar="N",
        help="triples buffered per index batch",
    )
    store_load.add_argument(
        "--backend", choices=("disk", "paged"), default=None,
        help="store engine to build (default: disk, or paged when "
             "REPRO_STORAGE_BACKEND selects a paged backend)",
    )
    store_info = store_commands.add_parser(
        "info", help="print a store's manifest and recovery summary"
    )
    store_info.add_argument("directory", help="store directory")
    store_compact = store_commands.add_parser(
        "compact", help="fold segments + WAL into one fresh segment"
    )
    store_compact.add_argument("directory", help="store directory")
    store_snapshot = store_commands.add_parser(
        "snapshot", help="write a consistent copy to a new directory"
    )
    store_snapshot.add_argument("directory", help="source store directory")
    store_snapshot.add_argument("destination", help="directory to create")
    store_verify = store_commands.add_parser(
        "verify",
        help="re-checksum all segments and the WAL tail offline "
             "(exits non-zero on the first mismatch)",
    )
    store_verify.add_argument("directory", help="store directory")

    query = commands.add_parser(
        "query",
        help="run a SPARQL query through the planner (--explain shows the plan)",
    )
    query.add_argument(
        "sparql", nargs="?", default=None,
        help="the query text (omit when using --query-file)",
    )
    query.add_argument(
        "--query-file", metavar="PATH", default=None,
        help="read the query from this file instead",
    )
    query.add_argument(
        "--data", metavar="PATH", default=None,
        help="RDF file to query (default: a synthetic annotation store)",
    )
    query.add_argument(
        "--data-format", choices=("ntriples", "nt", "turtle", "ttl"),
        default=None,
        help="format of --data (default: guessed from the extension)",
    )
    query.add_argument(
        "--synthetic-items", type=int, default=200, metavar="N",
        help="data items in the synthetic store when --data is omitted",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="print join order, cardinality estimates and plan-cache "
             "stats instead of executing",
    )
    query.add_argument(
        "--no-planner", action="store_true",
        help="use the naive reference evaluator instead of the planner",
    )
    query.add_argument(
        "--no-cache", action="store_true",
        help="compile the plan fresh, bypassing the prepared-query cache",
    )
    query.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="execute N times and report per-run timing (exercises the "
             "plan cache)",
    )

    commands.add_parser("info", help="describe this reproduction")
    return parser


def _cmd_validate(path: str) -> int:
    from repro.ontology import build_iq_model
    from repro.qv import parse_quality_view, validate_quality_view

    try:
        spec = parse_quality_view(_read(path))
    except ValueError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 1
    report = validate_quality_view(spec, build_iq_model())
    for warning in report.warnings:
        print(f"warning: {warning}")
    if not report.ok():
        for error in report.errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"OK: {spec.name!r} ({len(spec.annotators)} annotators, "
        f"{len(spec.assertions)} assertions, {len(spec.actions)} actions)"
    )
    return 0


def _cmd_compile(args) -> int:
    from repro.core.framework import QuratorFramework
    from repro.core.ispider import LiveImprintAnnotator, ResultSetHolder
    from repro.qv.passes import CompileOptions
    from repro.workflow.scufl import workflow_to_xml

    if args.no_optimize and (
        args.disabled_passes or args.observed_outputs or args.explain
    ):
        print("error: --explain/--disable-pass/--observed-outputs "
              "require the optimizing pipeline (drop --no-optimize)",
              file=sys.stderr)
        return 2
    framework = QuratorFramework()
    framework.register_standard_services()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(ResultSetHolder())
    )
    options = CompileOptions(
        disabled_passes=frozenset(args.disabled_passes),
        observed_outputs=(
            frozenset(
                port.strip()
                for port in args.observed_outputs.split(",")
                if port.strip()
            )
            if args.observed_outputs is not None
            else None
        ),
    )
    try:
        view = framework.quality_view(_read(args.file))
        if args.no_optimize:
            workflow = framework.compiler.compile(view.spec, optimize=False)
        else:
            workflow, report = framework.compiler.compile_with_report(
                view.spec, options=options
            )
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.explain:
        schedule = workflow.ensure_schedule()
        print(f"view: {view.name!r}  fingerprint: "
              f"{workflow.source_fingerprint[:16]}…")
        print(report.render(), end="")
        print("schedule:")
        for index, stage in enumerate(schedule.stages):
            print(f"  wave {index}: {', '.join(stage)}")
        return 0
    print(workflow_to_xml(workflow))
    return 0


def _cmd_demo(
    spots: int, seed: int, proteins: int, filter_condition: str
) -> int:
    from repro.core.ispider import build_deployment
    from repro.proteomics import ProteomicsScenario
    from repro.proteomics.workflows import go_term_frequencies

    scenario = ProteomicsScenario.generate(
        seed=seed, n_proteins=proteins, n_spots=spots
    )
    deployment = build_deployment(scenario, filter_condition=filter_condition)
    baseline = deployment.run_unfiltered()
    filtered = deployment.run()
    base = go_term_frequencies(baseline["goTerms"])
    kept = go_term_frequencies(filtered["goTerms"])
    print(f"spots: {spots}  seed: {seed}  filter: {filter_condition}")
    print(f"GO occurrences without / with quality view: "
          f"{sum(base.values())} / {sum(kept.values())}\n")
    rows = sorted(
        ((kept.get(t, 0) / base[t], t, base[t], kept.get(t, 0)) for t in base),
        key=lambda r: (-r[0], r[1]),
    )
    print(f"{'rank':>4}  {'GO term':<12} {'raw':>4} {'kept':>4} {'ratio':>6}")
    for rank, (ratio, term, raw, kept_count) in enumerate(rows[:15], 1):
        print(f"{rank:>4}  {term:<12} {raw:>4} {kept_count:>4} {ratio:>6.2f}")
    return 0


def _cmd_batch(args) -> int:
    import time

    from repro.core.ispider import example_quality_view_xml, setup_framework
    from repro.proteomics import ProteomicsScenario
    from repro.proteomics.results import ImprintResultSet
    from repro.resilience import FaultInjector, ResilienceConfig
    from repro.runtime import QueueFullError, RuntimeConfig

    if args.latency < 0:
        print(f"error: --latency must be >= 0, got {args.latency}",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.fault_rate <= 1.0:
        print(f"error: --fault-rate must be in [0, 1], got "
              f"{args.fault_rate}", file=sys.stderr)
        return 2
    resilience = None
    if (args.retry_attempts is not None or args.fault_rate > 0
            or args.on_failure != "fail"):
        attempts = 3 if args.retry_attempts is None else args.retry_attempts
        resilience = ResilienceConfig(
            max_attempts=attempts,
            jitter_seed=args.fault_seed,
            on_failure=args.on_failure,
        )
    try:
        config = RuntimeConfig(
            workers=args.workers,
            queue_size=args.queue_size,
            queue_policy=args.policy,
            parallel_enactment=args.parallel_enactment,
            job_retries=args.job_retries,
            resilience=resilience,
            shards=args.shards,
            **({"backend": args.backend} if args.backend else {}),
        ).validated()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenario = ProteomicsScenario.generate(
        seed=args.seed, n_proteins=args.proteins, n_spots=args.spots
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    if args.latency > 0:
        for service in framework.services:
            service.with_latency(args.latency / 1000.0)
    injector = None
    if args.fault_rate > 0:
        injector = FaultInjector(seed=args.fault_seed)
        injector.plan_all(fault_rate=args.fault_rate)
        injector.attach_registry(framework.services)
    view = framework.quality_view(
        example_quality_view_xml(args.filter_condition)
    )
    datasets = [results.items_of_run(run.run_id) for run in runs]
    pool = (
        f"{config.effective_shards()} shard processes"
        if config.backend == "process" else f"{config.workers} workers"
    )
    print(
        f"runtime: {pool}, queue {config.queue_size} "
        f"({config.queue_policy}), "
        f"{'parallel' if config.parallel_enactment else 'serial'} enactment"
        + (f", fault rate {args.fault_rate:.0%} (seed {args.fault_seed})"
           if injector else "")
        + (f", {resilience.max_attempts} attempts/call" if resilience else "")
    )
    started = time.perf_counter()
    with framework.runtime(config) as service:
        try:
            batch = service.submit_many(view, datasets)
        except QueueFullError as exc:
            print(f"error: {exc} (queue {config.queue_size} cannot admit "
                  f"{len(datasets)} jobs under --policy reject; raise "
                  f"--queue-size or use --policy block)", file=sys.stderr)
            return 1
        batch.wait()
        elapsed = time.perf_counter() - started
        snap = service.snapshot()
        dead_letters = list(service.dead_letters)
    print(f"\n{'job':<28} {'items':>5} {'kept':>5} "
          f"{'queued ms':>9} {'run ms':>7} {'cache':>7}")
    for handle in batch:
        metrics = handle.metrics
        error = handle.exception()
        if error is not None:
            print(f"{handle.name:<28} {'-':>5} {'-':>5} "
                  f"{1000 * (metrics.queue_wait or 0):>9.2f} "
                  f"{1000 * (metrics.run_seconds or 0):>7.2f} "
                  f"{handle.status.value}")
            continue
        outcome = handle.result()
        hit_rate = (
            metrics.cache_hits / metrics.cache_lookups
            if metrics.cache_lookups else 0.0
        )
        print(f"{handle.name:<28} {len(outcome.items):>5} "
              f"{len(outcome.surviving()):>5} "
              f"{1000 * (metrics.queue_wait or 0):>9.2f} "
              f"{1000 * (metrics.run_seconds or 0):>7.2f} "
              f"{hit_rate:>6.0%}")
    print(f"\n{snap.completed}/{snap.submitted} jobs completed, "
          f"{snap.failed} failed, in {elapsed:.2f}s "
          f"({snap.completed / elapsed:.1f} jobs/sec); "
          f"mean queue wait {1000 * snap.mean_queue_wait:.2f} ms")
    if resilience is not None or injector is not None or args.job_retries:
        print(f"resilience: {snap.invocation_retries} invocation retries, "
              f"{snap.invocations_exhausted} exhausted, "
              f"{snap.breaker_rejections} breaker rejections "
              f"({snap.open_endpoints} endpoints open), "
              f"{snap.degraded_firings} degraded firings, "
              f"{snap.job_retries} job retries, "
              f"{snap.dead_lettered} dead-lettered"
              + (f"; {injector.total_injected()} faults injected"
                 if injector else ""))
    slowest = sorted(
        snap.processor_seconds.items(), key=lambda kv: -kv[1]
    )[:5]
    print("hottest processors: "
          + ", ".join(f"{name} {seconds * 1000:.1f} ms"
                      for name, seconds in slowest))
    if args.telemetry:
        from repro.observability import write_telemetry

        write_telemetry(
            args.telemetry, services=framework.services, runtime=snap
        )
        print(f"telemetry snapshot written to {args.telemetry}")
    failures = batch.failures()
    if failures or dead_letters:
        print(f"\n{len(failures)} job(s) failed "
              f"({len(dead_letters)} dead-lettered):", file=sys.stderr)
        for handle in failures:
            error = handle.exception()
            cause = ""
            if hasattr(error, "details"):
                cause = f" {error.details()}"
            print(f"  {handle.name}: {type(error).__name__}: {error}{cause}"
                  + (f" (after {handle.metrics.retries} job retries)"
                     if handle.metrics.retries else ""),
                  file=sys.stderr)
        return 1
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.core.ispider import example_quality_view_xml, setup_framework
    from repro.observability import (
        json_snapshot,
        render_prometheus,
        serve_metrics,
    )
    from repro.proteomics import ProteomicsScenario
    from repro.proteomics.results import ImprintResultSet
    from repro.resilience import ResilienceConfig
    from repro.runtime import RuntimeConfig

    # A small end-to-end workload so every layer has published samples:
    # workflow firings, runtime jobs, resilient invocations (the
    # resilience config routes service calls through the invoker, which
    # also creates the per-endpoint breaker-state gauges), SPARQL
    # timings, and annotation-store reads.
    scenario = ProteomicsScenario.generate(
        seed=args.seed, n_proteins=args.proteins, n_spots=args.spots
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    view = framework.quality_view(example_quality_view_xml())
    config = RuntimeConfig(
        workers=args.workers,
        parallel_enactment=True,
        resilience=ResilienceConfig(max_attempts=2),
    ).validated()
    datasets = [results.items_of_run(run.run_id) for run in runs]
    with framework.runtime(config) as service:
        service.submit_many(view, datasets).wait()
        snap = service.snapshot()
    if args.oneshot:
        if args.format == "json":
            document = json_snapshot(
                services=framework.services, runtime=snap
            )
            print(json.dumps(document, indent=2, sort_keys=True, default=str))
        else:
            print(render_prometheus(), end="")
        return 0
    from repro.observability import serve_until_interrupt

    server = serve_metrics(
        host=args.host, port=args.port,
        services=framework.services, runtime=snap,
    )
    host, port = server.server_address[:2]
    print(f"serving http://{host}:{port}/metrics "
          f"(JSON snapshot at /metrics.json; Ctrl-C to stop)")
    return serve_until_interrupt(server)


def _cmd_serve(args) -> int:
    from repro.core.ispider import example_quality_view_xml, setup_framework
    from repro.observability import serve_until_interrupt
    from repro.proteomics import ProteomicsScenario
    from repro.proteomics.results import ImprintResultSet
    from repro.runtime import RuntimeConfig
    from repro.serving import QualityViewServer, ServingConfig

    # The synthetic backing deployment: a proteomics scenario whose
    # identification results feed the live Imprint annotator, so
    # registered views have real evidence to annotate, assert over,
    # and filter.  GET /datasets lists the run ids enact bodies can
    # reference ({"dataset": "<run id>"}).
    scenario = ProteomicsScenario.generate(
        seed=args.seed, n_proteins=args.proteins, n_spots=args.spots
    )
    runs = scenario.identify_all()
    results = ImprintResultSet(runs)
    framework, holder = setup_framework(scenario)
    holder.set(results)
    datasets = {run.run_id: results.items_of_run(run.run_id) for run in runs}
    try:
        runtime_config = RuntimeConfig(
            workers=args.workers,
            queue_size=args.queue_size,
            queue_policy="reject",
            parallel_enactment=args.parallel_enactment,
            name="serving",
            shards=args.shards,
            **({"backend": args.backend} if args.backend else {}),
        ).validated()
        serving_config = ServingConfig(
            host=args.host,
            port=args.port,
            quota_rate=args.quota_rate if args.quota_rate > 0 else None,
            quota_burst=args.quota_burst,
            plan_cache_size=args.plan_cache_size,
            storage_dir=args.store_dir,
            storage_sync=args.store_sync,
        ).validated()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with framework.runtime(runtime_config) as runtime:
        server = QualityViewServer(
            framework, runtime, config=serving_config, datasets=datasets
        ).start()
        if args.store_dir:
            restored = server.views.names()
            print(f"durable store: {args.store_dir} "
                  f"(sync={args.store_sync}; "
                  f"{len(restored)} view(s) restored"
                  + (": " + ", ".join(restored) if restored else "")
                  + ")")
        if args.register_example:
            record = server.views.register(
                "protein-id-quality",
                example_quality_view_xml(),
                serving_config.default_tenant,
            )
            print(f"registered view 'protein-id-quality' "
                  f"(fingerprint {record.fingerprint[:16]}…)")
        quota = (
            f"{args.quota_rate:g} req/s (burst {args.quota_burst:g})"
            if args.quota_rate > 0 else "disabled"
        )
        pool = (
            f"{runtime_config.effective_shards()} shard processes"
            if runtime_config.backend == "process"
            else f"{runtime_config.workers} workers"
        )
        print(
            f"serving http://{args.host}:{server.port} — "
            f"{pool}, queue "
            f"{runtime_config.queue_size} (reject), per-tenant quota "
            f"{quota}, {len(datasets)} datasets; Ctrl-C to stop"
        )
        print("endpoints: PUT /views/{name}  POST /views/{name}/enact  "
              "GET /jobs/{id}  /metrics  /healthz")
        return serve_until_interrupt(server)


def _cmd_stream(args) -> int:
    from repro.serving import wire
    from repro.storage.cursors import CursorFile
    from repro.stream import (
        CusumDetector,
        EwmaDetector,
        IncrementalEnactor,
        JsonLinesSource,
        RollingWindows,
        StreamEngine,
    )
    from repro.stream.scenario import build_stream_scenario, synthetic_records

    if args.delta_ratio <= 0 or args.delta_ratio > 1:
        print(f"error: --delta-ratio must be in (0, 1], got "
              f"{args.delta_ratio}", file=sys.stderr)
        return 2
    if args.emit_events is not None:
        records = synthetic_records(
            items=args.items, steps=args.steps,
            delta_ratio=args.delta_ratio, seed=args.seed,
            drift_after=args.drift_after,
        )
        count = JsonLinesSource.write(args.emit_events, records)
        print(f"wrote {count} records to {args.emit_events}")
        return 0

    scenario = build_stream_scenario(args.filter_condition)
    enactor = IncrementalEnactor(scenario.view, feed=scenario.table)
    if args.events is not None:
        source = JsonLinesSource(args.events, follow=args.follow)
        feed_label = args.events
    else:
        class _ListSource:
            def __init__(self, records):
                self._records = records

            def records(self):
                return iter(self._records)

        source = _ListSource(synthetic_records(
            items=args.items, steps=args.steps,
            delta_ratio=args.delta_ratio, seed=args.seed,
            drift_after=args.drift_after,
        ))
        feed_label = (f"synthetic (items {args.items}, steps {args.steps}, "
                      f"delta ratio {args.delta_ratio:g}, seed {args.seed})")
    cursor = (
        CursorFile(args.cursor_dir, args.cursor_name)
        if args.cursor_dir is not None else None
    )
    engine = StreamEngine(
        enactor,
        windows=RollingWindows(args.window, args.slide),
        detectors=[EwmaDetector(), CusumDetector()],
        cursor=cursor,
        name=args.cursor_name,
    )
    print(f"stream over view {scenario.view.name!r} — feed: {feed_label}")
    if engine.resumed:
        print(f"resumed from persisted watermark seq {engine.watermark} "
              f"(records at or below it are skipped)")
    mismatches = 0

    def show(step):
        nonlocal mismatches
        report = step.outcome.report
        lookups = report.memo_hits + report.memo_misses
        hit_rate = report.memo_hits / lookups if lookups else 0.0
        suffix = ""
        if args.verify:
            oracle = wire.dumps(wire.encode_result(enactor.full_recompute()))
            same = wire.dumps(wire.encode_result(step.outcome.result)) == oracle
            mismatches += 0 if same else 1
            suffix += "  verify=ok" if same else "  verify=MISMATCH"
        for event in step.drift_events:
            suffix += (f"  DRIFT[{event.detector} {event.direction} "
                       f"stat={event.statistic:.2f}]")
        for window in step.closed_windows:
            suffix += (f"  window[{window.start:g}..{window.end:g} "
                       f"mean={window.mean:.3f} n={window.count}]")
        print(f"seq {step.record.seq:>4}  items {report.items_total:>4}  "
              f"delta {report.delta_size:>3}  reannotated "
              f"{report.reannotated_items:>3}  memo {hit_rate:>4.0%}  "
              f"surviving {step.signal:.3f}{suffix}")

    stats = engine.run(source, max_records=args.max_records, on_step=show)
    print(f"\n{stats.processed} processed, {stats.skipped} skipped "
          f"(watermark {stats.watermark}), {stats.drift_events} drift "
          f"event(s), {stats.windows_closed} window(s) closed"
          + (f"; {stats.replayed} record(s) replayed into the feed, "
             f"{stats.bootstrapped_items} item(s) re-bootstrapped"
             if stats.replayed else "")
          + (f"; cursor {cursor.path}" if cursor is not None else ""))
    if args.verify:
        print(f"verification: {stats.processed - mismatches}/"
              f"{stats.processed} byte-equal to full recompute")
        if mismatches:
            return 1
    return 0


def _cmd_store(args) -> int:
    import json

    from repro.storage import StorageError, bulk_load_ntriples, open_backend

    try:
        if args.store_command == "load":
            if args.batch_size < 1:
                print(f"error: --batch-size must be >= 1, got "
                      f"{args.batch_size}", file=sys.stderr)
                return 2
            summary = bulk_load_ntriples(
                args.file, args.directory, batch_size=args.batch_size,
                engine=args.backend,
            )
            print(f"loaded {summary['triples_loaded']} triples "
                  f"({summary['terms']} terms) into {summary['directory']} "
                  f"({summary['engine']} engine) "
                  f"in {summary['seconds']:.2f}s "
                  f"({summary['triples_per_second']:,.0f} triples/sec, "
                  f"segment {summary['segment_bytes']:,} bytes)")
            return 0
        if args.store_command == "verify":
            from repro.storage.verify import verify_store

            report = verify_store(args.directory)
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0 if report["ok"] else 1
        backend = open_backend(args.directory, create=False, sync="none")
        try:
            if args.store_command == "info":
                from repro.storage.cursors import CursorFile, cursor_files

                description = backend.describe()
                cursors = {}
                for path in cursor_files(args.directory):
                    name = path.name[len("stream-"):-len(".cursor")]
                    document = CursorFile(args.directory, name).load()
                    cursors[path.name] = (
                        document if document is not None else "unreadable"
                    )
                description["stream_cursors"] = cursors
                print(json.dumps(description, indent=2, sort_keys=True))
            elif args.store_command == "compact":
                path = backend.compact()
                print(f"compacted {args.directory} into {path.name} "
                      f"({backend.size} triples); WAL reset")
            elif args.store_command == "snapshot":
                backend.snapshot(args.destination)
                print(f"snapshot of {args.directory} "
                      f"({backend.size} triples) written to "
                      f"{args.destination}")
        finally:
            backend.close()
        return 0
    except (StorageError, OSError) as exc:
        details = exc.details() if isinstance(exc, StorageError) else {
            "code": "os_error", "message": str(exc),
        }
        print(f"error: {json.dumps(details, sort_keys=True)}",
              file=sys.stderr)
        return 1


def _cmd_query(args) -> int:
    import time

    from repro.rdf import Graph
    from repro.rdf.sparql import SPARQLSyntaxError, compile_query
    from repro.rdf.sparql.evaluator import SPARQLEvaluationError

    if (args.sparql is None) == (args.query_file is None):
        print("error: provide the query text or --query-file (not both)",
              file=sys.stderr)
        return 2
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}",
              file=sys.stderr)
        return 2
    sparql = args.sparql if args.sparql is not None else _read(args.query_file)

    if args.data is not None:
        fmt = args.data_format
        if fmt is None:
            fmt = "turtle" if args.data.endswith((".ttl", ".turtle")) \
                else "ntriples"
        graph = Graph("cli:data")
        graph.parse(_read(args.data), fmt)
        print(f"loaded {len(graph)} triples from {args.data} ({fmt})")
    else:
        from repro.annotation.store import AnnotationStore
        from repro.rdf import Q
        from repro.rdf.lsid import uniprot_lsid

        store = AnnotationStore("cli:synthetic")
        evidence_types = [Q.HitRatio, Q.Coverage, Q.PeptidesCount]
        for index in range(args.synthetic_items):
            item = uniprot_lsid(f"B{index:06d}")
            for offset, evidence_type in enumerate(evidence_types):
                store.annotate(
                    item, evidence_type, (index * 7 + offset) % 100 / 100.0
                )
        graph = store.graph
        print(f"synthetic annotation store: {args.synthetic_items} items, "
              f"{len(graph)} triples")

    try:
        if args.explain:
            compiled = compile_query(sparql, use_cache=not args.no_cache)
            print(compiled.explain(graph))
            return 0
        result = None
        for run in range(args.repeat):
            started = time.perf_counter()
            result = graph.query(
                sparql,
                use_planner=not args.no_planner,
                use_cache=not args.no_cache,
            )
            elapsed = (time.perf_counter() - started) * 1e3
            if args.repeat > 1:
                print(f"run {run + 1}: {elapsed:.3f} ms")
    except (SPARQLSyntaxError, SPARQLEvaluationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if result.query_type == "ASK":
        print("yes" if result.boolean else "no")
        return 0
    if result.graph is not None:
        print(result.graph.serialize("ntriples"), end="")
        return 0
    header = [f"?{var}" for var in result.variables]
    print("  ".join(header))
    for row in result:
        print("  ".join(
            value.n3() if value is not None else "-" for value in row
        ))
    print(f"({len(result)} row{'s' if len(result) != 1 else ''})")
    return 0


def _cmd_info() -> int:
    import repro

    print(repro.__doc__)
    return 0


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch; returns the process exit status."""

    args = _build_parser().parse_args(argv)
    if args.command == "validate":
        return _cmd_validate(args.file)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "demo":
        return _cmd_demo(
            args.spots, args.seed, args.proteins, args.filter_condition
        )
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "info":
        return _cmd_info()
    return 2


if __name__ == "__main__":
    sys.exit(main())
