"""The Qurator framework facade: the library's primary public API.

``QuratorFramework`` wires the pieces of the paper's Fig. 5 together —
the IQ ontology, annotation repositories, the service registry and
binding registry, the scavenger and the QV compiler — and hands out
:class:`QualityView` objects implementing the full lifecycle:
parse -> validate -> compile -> (optionally embed) -> run.
"""

from repro.core.framework import QuratorFramework
from repro.core.quality_view import QualityView
from repro.core.results import QualityViewResult
from repro.core.errors import QuratorError

__all__ = [
    "QualityView",
    "QualityViewResult",
    "QuratorError",
    "QuratorFramework",
]
