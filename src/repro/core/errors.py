"""Top-level error type.

Subsystem errors (syntax, validation, compilation, deployment,
enactment) all derive from standard exceptions; ``QuratorError`` wraps
them at the facade boundary so callers can catch one type.
"""

from __future__ import annotations


class QuratorError(RuntimeError):
    """Any failure surfaced through the framework facade."""

    def __init__(self, message: str, cause: Exception = None) -> None:
        super().__init__(message)
        self.cause = cause
