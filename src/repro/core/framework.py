"""The Qurator framework object."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Union

from repro.annotation.functions import AnnotationFunction, AnnotationFunctionRegistry
from repro.annotation.manager import RepositoryManager
from repro.annotation.store import AnnotationStore
from repro.binding.registry import BindingRegistry
from repro.core.errors import QuratorError
from repro.core.quality_view import QualityView
from repro.ontology.iq_model import IQModel, build_iq_model
from repro.qa.classifier import PIScoreClassifierQA
from repro.qa.pi_score import HRScoreQA, UniversalPIScoreQA, UniversalPIScore2QA
from repro.qv.compiler import QVCompiler
from repro.qv.spec import QualityViewSpec
from repro.qv.xml_io import parse_quality_view
from repro.rdf import Q, URIRef
from repro.services.interface import AnnotationService, QualityAssertionService
from repro.services.registry import ServiceRegistry
from repro.workflow.enactor import Enactor
from repro.workflow.scavenger import Scavenger

if TYPE_CHECKING:
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.service import ExecutionService


class QuratorFramework:
    """One configured deployment of the quality framework (paper Fig. 5)."""

    def __init__(self, iq_model: Optional[IQModel] = None) -> None:
        self.iq_model = iq_model if iq_model is not None else build_iq_model()
        self.repositories = RepositoryManager(self.iq_model)
        self.services = ServiceRegistry()
        self.bindings = BindingRegistry(self.iq_model.ontology)
        self.annotation_functions = AnnotationFunctionRegistry()
        self.scavenger = Scavenger()
        self.enactor = Enactor()
        self._compiler: Optional[QVCompiler] = None
        self._compiler_lock = threading.Lock()

    # -- repositories -----------------------------------------------------

    def create_repository(
        self, name: str, persistent: bool = True
    ) -> AnnotationStore:
        """Create (or fetch) a named annotation repository."""
        return self.repositories.get_or_create(name, persistent=persistent)

    @property
    def cache(self) -> AnnotationStore:
        """The per-execution scratch repository."""
        return self.repositories.repository(RepositoryManager.CACHE)

    # -- service deployment --------------------------------------------------

    def deploy_annotation_service(
        self,
        name: str,
        function: AnnotationFunction,
        bind: bool = True,
    ) -> AnnotationService:
        """Deploy an annotation function as a service; bind its concept."""
        service = AnnotationService(name, function.function_class, "", function)
        self.services.deploy(service)
        self.annotation_functions.register(function)
        if bind:
            self.bindings.bind_service(function.function_class, service.endpoint)
        self.scavenger.scan(self.services)
        return service

    def deploy_qa_service(
        self,
        name: str,
        concept: URIRef,
        operator_factory: Callable[..., Any],
        bind: bool = True,
        item_local: bool = False,
    ) -> QualityAssertionService:
        """Deploy a QA operator factory as a service; bind its concept.

        ``item_local`` declares the operator's verdicts independent of
        the rest of the collection (see
        :class:`~repro.services.interface.QualityAssertionService`),
        which lets the compiler push filters below the QA.
        """
        service = QualityAssertionService(
            name, concept, "", operator_factory, item_local=item_local
        )
        self.services.deploy(service)
        if bind:
            self.bindings.bind_service(concept, service.endpoint)
        self.scavenger.scan(self.services)
        return service

    def register_standard_services(self) -> None:
        """Deploy the paper's three example QAs under their IQ classes."""
        if "UniversalPIScore" not in self.services:
            self.deploy_qa_service(
                "UniversalPIScore",
                Q.UniversalPIScore,
                UniversalPIScoreQA,
                item_local=True,
            )
        if "UniversalPIScore2" not in self.services:
            self.deploy_qa_service(
                "UniversalPIScore2",
                Q.UniversalPIScore2,
                UniversalPIScore2QA,
                item_local=True,
            )
        if "HRScore" not in self.services:
            self.deploy_qa_service(
                "HRScore", Q.HRScore, HRScoreQA, item_local=True
            )
        if "PIScoreClassifier" not in self.services:
            self.deploy_qa_service(
                "PIScoreClassifier", Q.PIScoreClassifier, PIScoreClassifierQA
            )

    # -- quality views -----------------------------------------------------------

    @property
    def compiler(self) -> QVCompiler:
        """The (lazily built) quality-view compiler for this framework."""
        with self._compiler_lock:
            if self._compiler is None:
                self._compiler = QVCompiler(
                    self.iq_model, self.services, self.bindings, self.repositories
                )
            return self._compiler

    def quality_view(self, view: Union[str, QualityViewSpec]) -> QualityView:
        """Create a quality view from XML text or a parsed spec."""
        try:
            spec = parse_quality_view(view) if isinstance(view, str) else view
        except ValueError as exc:
            raise QuratorError(f"cannot parse quality view: {exc}", exc) from exc
        return QualityView(spec, self)

    def runtime(
        self, config: Optional["RuntimeConfig"] = None, **overrides: Any
    ) -> "ExecutionService":
        """A concurrent execution engine over this framework.

        Returns a started :class:`repro.runtime.service.ExecutionService`
        (job queue + worker pool); keyword overrides adjust the config,
        e.g. ``framework.runtime(workers=8, queue_policy="reject")``.
        ``backend="process"`` (or ``REPRO_RUNTIME_BACKEND=process``)
        selects the sharded process-pool backend instead — deploy every
        service *before* building the runtime then, because workers
        inherit the framework at fork time.  The caller owns its
        lifecycle — use it as a context manager or call ``shutdown()``.
        """
        from repro.runtime.config import BACKEND_PROCESS, RuntimeConfig
        from repro.runtime.service import ExecutionService

        if config is None:
            config = RuntimeConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        if config.backend == BACKEND_PROCESS:
            from repro.runtime.process import ProcessExecutionService

            return ProcessExecutionService(self, config)
        return ExecutionService(self, config)

    def resilient_invoker(self, config: Optional[Any] = None) -> Any:
        """A fault-tolerant service invoker bound to this framework.

        Builds a :class:`repro.resilience.ResilientInvoker` from the
        given :class:`~repro.resilience.ResilienceConfig` (defaults
        apply when omitted) and registers its circuit breakers as the
        service registry's health registry, so
        ``framework.services.health()`` reports per-endpoint breaker
        state.  Pass the invoker to
        :meth:`QualityView.with_resilience` or use
        ``runtime(resilience=...)`` for the managed path.
        """
        from repro.resilience import ResilientInvoker

        return ResilientInvoker(config, services=self.services)

    def end_execution(self) -> None:
        """Per-execution cleanup: clears transient (cache) repositories."""
        self.repositories.clear_transient()

    def __repr__(self) -> str:
        return (
            f"<QuratorFramework: {len(self.services)} services, "
            f"{len(self.bindings)} bindings, "
            f"repositories {self.repositories.names()}>"
        )
