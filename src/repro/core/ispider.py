"""The paper's running example, wired end-to-end (Secs. 1.1, 5.1, 6).

This module assembles the full Figure-6 construction: the ISPIDER
analysis workflow (Fig. 1), the example quality view of Sec. 5.1 (three
QAs over Imprint evidence plus an editable filter action), and the
deployment descriptor that embeds the compiled quality workflow between
protein identification and GO retrieval, through two adapters.

The Imprint evidence is produced *within the same process execution*
that computes the data (Sec. 4), so the annotation function reads the
live result set through a holder the ``ImprintToDataSet`` adapter fills
during enactment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.annotation.map import AnnotationMap
from repro.core.framework import QuratorFramework
from repro.core.quality_view import QualityView
from repro.proteomics.imprint import ImprintRun
from repro.proteomics.results import ImprintResultSet
from repro.proteomics.scenario import ProteomicsScenario
from repro.proteomics.workflows import (
    COLLECT_ACCESSIONS,
    GO_RETRIEVAL,
    PROTEIN_IDENTIFICATION,
    build_ispider_workflow,
)
from repro.annotation.functions import AnnotationFunction
from repro.qa.annotators import ImprintOutputAnnotator
from repro.qv.compiler import sanitize
from repro.qv.deployment import DeploymentDescriptor, input_sinks
from repro.rdf import Q, URIRef
from repro.workflow.model import Workflow
from repro.workflow.processors import PythonProcessor

#: The default filter of the paper's experiment: keep only the
#: top-quality protein IDs (score above average + standard deviation,
#: i.e. class q:high of the PIScoreClassification).
DEFAULT_FILTER_CONDITION = "ScoreClass in q:high"

#: Processor/adapter names used in the Fig. 6 embedding.
HITS_TO_DATASET = "ImprintToDataSet"
ACCEPTED_TO_ACCESSIONS = "AcceptedToAccessions"
FILTER_ACTION = "filter top k score"


class ResultSetHolder:
    """Mutable slot carrying the live Imprint result set of one run."""

    def __init__(self) -> None:
        self.results: Optional[ImprintResultSet] = None

    def set(self, results: ImprintResultSet) -> None:
        """Install the live result set for this execution."""
        self.results = results

    def require(self) -> ImprintResultSet:
        """The current result set; error if identification has not run."""
        if self.results is None:
            raise RuntimeError(
                "no Imprint result set available yet; the quality workflow "
                "ran before the identification step"
            )
        return self.results


class LiveImprintAnnotator(AnnotationFunction):
    """``q:Imprint-output-annotation`` over the in-flight result set."""

    function_class = Q["Imprint-output-annotation"]
    provides = ImprintOutputAnnotator.provides

    def __init__(self, holder: ResultSetHolder) -> None:
        self.holder = holder

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Delegate to an ImprintOutputAnnotator over the live results."""
        delegate = ImprintOutputAnnotator(self.holder.require())
        return delegate.annotate(items, evidence_types, context)


def example_quality_view_xml(
    filter_condition: str = DEFAULT_FILTER_CONDITION,
) -> str:
    """The Sec. 5.1 example view: one annotator, three QAs, one filter."""
    return f"""
<QualityView name="protein-id-quality">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:coverage"/>
      <var evidence="q:masses"/>
      <var evidence="q:hitRatio"/>
      <var evidence="q:peptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="HR MC score"
                    serviceType="q:UniversalPIScore2"
                    tagName="HR MC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:coverage"/>
      <var variableName="hitRatio" evidence="q:hitRatio"/>
      <var variableName="peptidesCount" evidence="q:peptidesCount"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="HR score"
                    serviceType="q:HRScore"
                    tagName="HR" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="PIScoreClassifier"
                    serviceType="q:PIScoreClassifier"
                    tagSemType="q:PIScoreClassification"
                    tagName="ScoreClass" tagSynType="q:class">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:coverage"/>
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="{FILTER_ACTION}">
    <filter>
      <condition>{_xml_escape(filter_condition)}</condition>
    </filter>
  </action>
</QualityView>
"""


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class ISpiderDeployment:
    """Everything assembled for one embedded-quality-view experiment."""

    scenario: ProteomicsScenario
    framework: QuratorFramework
    view: QualityView
    holder: ResultSetHolder
    host: Workflow
    embedded: Workflow

    def run(self, sample_ids: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Enact the embedded workflow; returns its outputs.

        Outputs: ``goTerms`` (quality-filtered GO-term occurrences) and
        ``identifications`` (the raw Imprint runs).
        """
        if sample_ids is None:
            sample_ids = self.scenario.pedro.sample_ids()
        self.framework.repositories.clear_transient()
        return self.framework.enactor.run(
            self.embedded, {"sampleIDs": list(sample_ids)}
        )

    def run_unfiltered(
        self, sample_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """Enact the original host workflow (no quality view)."""
        if sample_ids is None:
            sample_ids = self.scenario.pedro.sample_ids()
        return self.framework.enactor.run(
            self.host, {"sampleIDs": list(sample_ids)}
        )


def setup_framework(scenario: ProteomicsScenario) -> "tuple[QuratorFramework, ResultSetHolder]":
    """A framework with the standard QAs plus the live Imprint annotator."""
    framework = QuratorFramework()
    framework.register_standard_services()
    holder = ResultSetHolder()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
    )
    return framework, holder


def build_deployment(
    scenario: ProteomicsScenario,
    filter_condition: str = DEFAULT_FILTER_CONDITION,
    framework: Optional[QuratorFramework] = None,
    holder: Optional[ResultSetHolder] = None,
) -> ISpiderDeployment:
    """Assemble the complete Fig. 6 experiment for a scenario."""
    if framework is None or holder is None:
        framework, holder = setup_framework(scenario)
    view = framework.quality_view(example_quality_view_xml(filter_condition))
    quality = view.compile()
    host = build_ispider_workflow(scenario)

    def hits_to_dataset(runs: List[ImprintRun]):
        results = ImprintResultSet(runs)
        holder.set(results)
        return results.items()

    def accepted_to_accessions(items: List[URIRef]):
        return holder.require().accessions(items)

    descriptor = DeploymentDescriptor(name="embed-protein-id-quality")
    descriptor.add_adapter(
        PythonProcessor(
            HITS_TO_DATASET,
            hits_to_dataset,
            input_ports={"runs": 1},
            output_ports={"dataSet": 1},
        )
    )
    descriptor.add_adapter(
        PythonProcessor(
            ACCEPTED_TO_ACCESSIONS,
            accepted_to_accessions,
            input_ports={"items": 1},
            output_ports={"accessions": 1},
        )
    )
    # The quality flow replaces the direct hits -> GO retrieval path.
    descriptor.cut(COLLECT_ACCESSIONS, "accessions", GO_RETRIEVAL, "accessions")
    # Identification feeds the quality view through the first adapter.
    descriptor.connect(PROTEIN_IDENTIFICATION, "run", HITS_TO_DATASET, "runs")
    for sink in input_sinks(quality, "dataSet"):
        descriptor.connect(
            HITS_TO_DATASET, "dataSet", sink.processor, sink.port
        )
    # The filter output feeds GO retrieval through the second adapter.
    filter_port = sanitize("accepted")
    descriptor.connect(
        FILTER_ACTION, filter_port, ACCEPTED_TO_ACCESSIONS, "items"
    )
    descriptor.connect(
        ACCEPTED_TO_ACCESSIONS, "accessions", GO_RETRIEVAL, "accessions"
    )
    embedded = view.embed(host, descriptor)
    return ISpiderDeployment(
        scenario=scenario,
        framework=framework,
        view=view,
        holder=holder,
        host=host,
        embedded=embedded,
    )
