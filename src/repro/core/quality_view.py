"""The QualityView object: one view through its whole lifecycle."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.annotation.map import AnnotationMap
from repro.core.errors import QuratorError
from repro.core.results import QualityViewResult
from repro.qv.compiler import ActionProcessor, sanitize
from repro.qv.deployment import DeploymentDescriptor, embed_quality_workflow
from repro.qv.spec import QualityViewSpec
from repro.qv.validator import ValidationReport, validate_quality_view
from repro.qv.xml_io import quality_view_to_xml
from repro.rdf import URIRef
from repro.workflow.enactor import Enactor
from repro.workflow.model import Workflow

if TYPE_CHECKING:
    from repro.core.framework import QuratorFramework


class QualityView:
    """A personalised quality lens over data (paper Sec. 1).

    Lifecycle: the spec is validated against the IQ model, compiled into
    a quality workflow targeting the workflow environment, optionally
    embedded within a host workflow, and executed over concrete data
    sets — repeatedly, possibly editing action conditions in between.
    """

    def __init__(self, spec: QualityViewSpec, framework: "QuratorFramework") -> None:
        self.spec = spec
        self.framework = framework
        self._workflow: Optional[Workflow] = None

    @property
    def name(self) -> str:
        """The view's declared name."""

        return self.spec.name

    def to_xml(self) -> str:
        """The view serialised back to the Sec. 5.1 XML syntax."""

        return quality_view_to_xml(self.spec)

    # -- lifecycle -----------------------------------------------------------

    def validate(self) -> ValidationReport:
        """Validate the spec against the framework's IQ model."""

        return validate_quality_view(
            self.spec,
            self.framework.iq_model,
            known_repositories=set(self.framework.repositories.names()),
        )

    def compile(
        self,
        force: bool = False,
        optimize: bool = True,
        options=None,
    ) -> Workflow:
        """Compile (and cache) the quality workflow for this view.

        ``optimize`` / ``options`` are forwarded to
        :meth:`repro.qv.compiler.QVCompiler.compile`; pass
        ``options=CompileOptions(observed_outputs=...)`` (with
        ``force=True`` if already compiled) to unlock the
        observed-output passes before handing the view to a runtime.
        """
        if self._workflow is None or force:
            try:
                self._workflow = self.framework.compiler.compile(
                    self.spec, optimize=optimize, options=options
                )
            except ValueError as exc:
                raise QuratorError(
                    f"cannot compile quality view {self.name!r}: {exc}", exc
                ) from exc
        return self._workflow

    def invalidate(self) -> None:
        """Drop the compiled workflow (after editing the spec)."""
        self._workflow = None

    def with_resilience(self, invoker, config=None) -> "QualityView":
        """Route this view's service calls through a resilient invoker.

        Compiles the view (if needed) and applies
        :func:`repro.resilience.apply_resilience`: every service-backed
        processor invokes through ``invoker`` (retries, deadlines,
        circuit breakers) and picks up the ``on_failure`` degradation
        policies of ``config`` (which defaults to the invoker's own
        configuration).  Returns ``self`` for chaining; re-apply after
        :meth:`invalidate`.
        """
        from repro.resilience import apply_resilience

        apply_resilience(
            self.compile(), invoker, config if config is not None else invoker.config
        )
        return self

    def embed(
        self,
        host: Workflow,
        descriptor: DeploymentDescriptor,
        name: Optional[str] = None,
    ) -> Workflow:
        """Embed the compiled view within a host workflow (Sec. 6.2)."""
        try:
            return embed_quality_workflow(host, self.compile(), descriptor, name)
        except ValueError as exc:
            raise QuratorError(
                f"cannot embed quality view {self.name!r}: {exc}", exc
            ) from exc

    def run(
        self,
        items: Sequence[URIRef],
        enactor: Optional[Enactor] = None,
        clear_cache: bool = True,
    ) -> QualityViewResult:
        """Execute the view stand-alone over a data set.

        ``clear_cache=True`` (the default) resets transient repositories
        first, matching the per-execution scope of cache annotations.
        """
        if clear_cache:
            self.framework.repositories.clear_transient()
        workflow = self.compile()
        runner = enactor if enactor is not None else self.framework.enactor
        outputs = runner.run(workflow, {"dataSet": list(items)})
        return self._package(list(items), workflow, outputs)

    def _package(
        self, items: List[URIRef], workflow: Workflow, outputs
    ) -> QualityViewResult:
        result = QualityViewResult(
            view_name=self.name,
            items=items,
            annotation_map=outputs.get("annotationMap") or AnnotationMap(),
        )
        for processor in workflow.processors.values():
            if isinstance(processor, ActionProcessor):
                by_group = {}
                for group, port in processor.group_ports.items():
                    output_name = f"{sanitize(processor.name)}_{port}"
                    by_group[group] = list(outputs.get(output_name) or [])
                result.groups[processor.name] = by_group
        return result

    def __repr__(self) -> str:
        compiled = "compiled" if self._workflow is not None else "not compiled"
        return f"<QualityView {self.name!r} ({compiled})>"
