"""Human-readable quality reports for view executions.

The paper's users are scientists, not database experts (Sec. 1); after
running a view they want a summary, not an annotation map.  This module
renders a :class:`~repro.core.results.QualityViewResult` into a plain-
text report: per-action routing, per-tag score statistics, and the
classification distribution per scheme.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.results import QualityViewResult
from repro.qa.classifier import mean_and_stddev
from repro.rdf import URIRef


def tag_statistics(result: QualityViewResult) -> Dict[str, dict]:
    """Per-tag summary: numeric tags get stats, class tags get counts."""
    summary: Dict[str, dict] = {}
    amap = result.annotation_map
    for tag_name in sorted(amap.tag_names()):
        numeric: List[float] = []
        labels: Counter = Counter()
        missing = 0
        for item in result.items:
            tag = amap.get_tag(item, tag_name)
            if tag is None:
                missing += 1
                continue
            value = tag.plain()
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                numeric.append(float(value))
            else:
                key = value.fragment() if isinstance(value, URIRef) else str(value)
                labels[key] += 1
        entry: dict = {"missing": missing}
        if numeric:
            mean, std = mean_and_stddev(numeric)
            entry.update(
                kind="score",
                count=len(numeric),
                min=min(numeric),
                max=max(numeric),
                mean=mean,
                stddev=std,
            )
        else:
            entry.update(kind="class", counts=dict(labels))
        summary[tag_name] = entry
    return summary


def routing_summary(result: QualityViewResult) -> Dict[str, Dict[str, int]]:
    """Per-action group sizes of one execution."""

    return {
        action: {group: len(items) for group, items in by_group.items()}
        for action, by_group in result.groups.items()
    }


def render_report(
    result: QualityViewResult, title: Optional[str] = None
) -> str:
    """The full plain-text report."""
    lines: List[str] = []
    heading = title or f"Quality report — view {result.view_name!r}"
    lines.append(heading)
    lines.append("=" * len(heading))
    lines.append(f"data items processed: {len(result.items)}")
    lines.append("")

    statistics = tag_statistics(result)
    if statistics:
        lines.append("quality assertions")
        lines.append("------------------")
        for tag_name, entry in statistics.items():
            if entry["kind"] == "score":
                lines.append(
                    f"  {tag_name}: n={entry['count']} "
                    f"min={entry['min']:.2f} mean={entry['mean']:.2f} "
                    f"max={entry['max']:.2f} stddev={entry['stddev']:.2f}"
                    + (f" (missing {entry['missing']})" if entry["missing"] else "")
                )
            else:
                counts = ", ".join(
                    f"{label}={count}"
                    for label, count in sorted(entry["counts"].items())
                )
                lines.append(
                    f"  {tag_name}: {counts}"
                    + (f" (missing {entry['missing']})" if entry["missing"] else "")
                )
        lines.append("")

    routing = routing_summary(result)
    if routing:
        lines.append("actions")
        lines.append("-------")
        for action, groups in routing.items():
            lines.append(f"  {action}:")
            for group, size in groups.items():
                share = size / max(1, len(result.items))
                lines.append(f"    {group:<12} {size:>5}  ({share:>5.1%})")
        lines.append("")
    return "\n".join(lines)
