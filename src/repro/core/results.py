"""Results of quality-view executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.annotation.map import AnnotationMap
from repro.rdf import URIRef


@dataclass
class QualityViewResult:
    """What one run of a compiled quality view produced.

    ``groups`` is keyed by action name, then group name ('accepted' for
    filters, declared names plus 'default' for splitters), holding the
    routed item lists.  ``metrics`` is filled by the execution runtime
    (a :class:`repro.runtime.metrics.JobMetrics`) when the run went
    through a job queue; it stays ``None`` for direct ``view.run``
    calls.
    """

    view_name: str
    items: List[URIRef]
    annotation_map: AnnotationMap
    groups: Dict[str, Dict[str, List[URIRef]]] = field(default_factory=dict)
    metrics: Optional[Any] = None

    def actions(self) -> List[str]:
        """The actions that produced routing groups."""

        return list(self.groups)

    def group(self, action: str, group: str) -> List[URIRef]:
        """The items one action routed to one group."""

        try:
            by_group = self.groups[action]
        except KeyError:
            raise KeyError(
                f"no action {action!r}; view has {sorted(self.groups)}"
            ) from None
        try:
            return list(by_group[group])
        except KeyError:
            raise KeyError(
                f"action {action!r} has no group {group!r}; "
                f"has {sorted(by_group)}"
            ) from None

    def surviving(self, action: Optional[str] = None) -> List[URIRef]:
        """Items of every non-default group of an action (default: last)."""
        if not self.groups:
            return list(self.items)
        if action is None:
            action = next(reversed(self.groups))
        seen = set()
        out: List[URIRef] = []
        for group, members in self.groups[action].items():
            if group == "default":
                continue
            for item in members:
                if item not in seen:
                    seen.add(item)
                    out.append(item)
        return out

    def tag_of(self, item: URIRef, tag_name: str):
        """The plain value of one item's tag, or None."""

        tag = self.annotation_map.get_tag(item, tag_name)
        return None if tag is None else tag.plain()

    def __repr__(self) -> str:
        sizes = {
            action: {group: len(members) for group, members in by_group.items()}
            for action, by_group in self.groups.items()
        }
        return (
            f"<QualityViewResult {self.view_name!r}: {len(self.items)} items, "
            f"{sizes}>"
        )
