"""Observability for quality-view execution: metrics, spans, events.

The paper's Qurator framework is meant to run quality views
continuously inside production pipelines; this subsystem makes that
execution *inspectable from outside* instead of only through
runtime-local objects:

* :mod:`~repro.observability.registry` — a thread-safe
  :class:`MetricRegistry` of labeled counters, gauges, and
  fixed-bucket histograms, with a process-wide default that the
  workflow, runtime, resilience, RDF, and annotation layers write to
  (names follow ``repro_<subsystem>_<name>[_unit]``);
* :mod:`~repro.observability.spans` — hierarchical spans with
  parent/child links; context propagates across the runtime's thread
  hops (worker pool, wavefront pool, iteration pool), and each trace's
  root span accumulates exact per-job counts (the annotation-cache
  attribution rides on this);
* :mod:`~repro.observability.events` — a structured JSON-lines event
  log with a bounded ring buffer and pluggable sinks;
* :mod:`~repro.observability.export` — a Prometheus text-format
  renderer (``text/plain; version=0.0.4``), a JSON snapshot that joins
  metrics with ``ServiceRegistry.health()`` breaker states and runtime
  aggregates, and a stdlib HTTP endpoint (``python -m repro metrics``).

Disable everything with :func:`disable` (installs a
:class:`NullRegistry`, a :class:`~repro.observability.events.NullEventLog`,
and switches span creation off); benchmark E15 pins the fully
instrumented overhead at <= 5% of that baseline.
"""

from typing import Any, Dict

from repro.observability.events import (
    CallbackSink,
    EventLog,
    JsonLinesFileSink,
    NullEventLog,
    RingBufferSink,
    get_event_log,
    set_event_log,
)
from repro.observability.export import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    render_prometheus,
    serve_in_background,
    serve_metrics,
    serve_until_interrupt,
    write_telemetry,
)
from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS,
    METRIC_NAME_RE,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    NullRegistry,
    get_registry,
    set_default_registry,
)
from repro.observability.spans import (
    Span,
    SpanRecorder,
    add_to_current,
    clear_recorded_spans,
    current_span,
    recent_spans,
    set_tracing,
    start_span,
    tracing_enabled,
    use_span,
)


def disable() -> Dict[str, Any]:
    """Turn telemetry off entirely; returns state for :func:`restore`.

    Installs a :class:`NullRegistry` and a :class:`NullEventLog` and
    stops span creation (the runtime's per-job attribution spans keep
    working — see :mod:`~repro.observability.spans`).
    """
    return {
        "registry": set_default_registry(NullRegistry()),
        "event_log": set_event_log(NullEventLog()),
        "tracing": set_tracing(False),
    }


def restore(state: Dict[str, Any]) -> None:
    """Undo a :func:`disable` (or any saved swap of the defaults)."""
    set_default_registry(state["registry"])
    set_event_log(state["event_log"])
    set_tracing(state["tracing"])


__all__ = [
    "CallbackSink",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonLinesFileSink",
    "METRIC_NAME_RE",
    "MetricError",
    "MetricRegistry",
    "NullEventLog",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "RingBufferSink",
    "Span",
    "SpanRecorder",
    "add_to_current",
    "clear_recorded_spans",
    "current_span",
    "disable",
    "get_event_log",
    "get_registry",
    "json_snapshot",
    "recent_spans",
    "render_prometheus",
    "restore",
    "serve_in_background",
    "serve_metrics",
    "serve_until_interrupt",
    "set_default_registry",
    "set_event_log",
    "set_tracing",
    "start_span",
    "tracing_enabled",
    "use_span",
    "write_telemetry",
]
