"""Structured event log: JSON-ready dicts through pluggable sinks.

Instrumented layers emit *events* — small flat dicts with a name, a
unix timestamp, and whatever attributes matter (job name, endpoint,
breaker state…).  The default log keeps the newest events in a
bounded in-memory ring (:class:`RingBufferSink`), which the JSON
snapshot exporter and the CLI drain; attaching a
:class:`JsonLinesFileSink` streams the same events to disk as JSON
lines.  When a span is active, its trace/span ids are stamped onto
every event automatically, so the log joins against the span tree.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.observability import spans


class RingBufferSink:
    """Keeps the newest ``capacity`` events in memory."""

    def __init__(self, capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The buffered events, oldest first (``limit`` keeps the newest)."""
        with self._lock:
            events = list(self._events)
        if limit is None:
            return events
        # events[-limit:] would return *everything* for limit=0.
        return events[-limit:] if limit > 0 else []

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class JsonLinesFileSink:
    """Appends each event to a file as one JSON line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, default=str, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.close()


class CallbackSink:
    """Routes events to an arbitrary callable (test hook, bridge)."""

    def __init__(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        self.fn = fn

    def emit(self, event: Dict[str, Any]) -> None:
        self.fn(event)


class EventLog:
    """Fans every emitted event out to its sinks.

    A sink failure never breaks the instrumented caller — faulty
    sinks are dropped after their first raise.
    """

    def __init__(self, *sinks: Any) -> None:
        self._lock = threading.Lock()
        self._sinks: List[Any] = list(sinks) or [RingBufferSink()]

    @property
    def ring(self) -> Optional[RingBufferSink]:
        """The first ring-buffer sink, if any (the snapshot source)."""
        with self._lock:
            for sink in self._sinks:
                if isinstance(sink, RingBufferSink):
                    return sink
        return None

    def add_sink(self, sink: Any) -> None:
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(self, name: str, **attributes: Any) -> Dict[str, Any]:
        """Build, stamp, and deliver one event; returns it."""
        event: Dict[str, Any] = {"event": name, "ts": time.time()}
        span = spans.current_span()
        if span is not None:
            event["trace_id"] = span.trace_id
            event["span_id"] = span.span_id
        event.update(attributes)
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink.emit(event)
            except Exception:  # noqa: BLE001 - sinks must not break callers
                self.remove_sink(sink)
        return event

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The ring buffer's events (empty when no ring sink is attached)."""
        ring = self.ring
        return ring.events(limit) if ring is not None else []


class NullEventLog(EventLog):
    """An event log that drops everything (telemetry disabled)."""

    def __init__(self) -> None:
        super().__init__(CallbackSink(lambda event: None))

    def emit(self, name: str, **attributes: Any) -> Dict[str, Any]:
        return {}

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return []


_default_log = EventLog()
_default_lock = threading.Lock()


def get_event_log() -> EventLog:
    """The process-wide event log the instrumented layers emit to."""
    return _default_log


def set_event_log(log: EventLog) -> EventLog:
    """Swap the process-wide event log; returns the previous one."""
    global _default_log
    with _default_lock:
        previous = _default_log
        _default_log = log
        return previous
