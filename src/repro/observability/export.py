"""Exporters: Prometheus text format, JSON snapshots, and an HTTP endpoint.

``render_prometheus`` produces the Prometheus text exposition format
(``text/plain; version=0.0.4``): one ``# HELP`` / ``# TYPE`` pair per
family, label-escaped samples, and the ``_bucket``/``_sum``/``_count``
triplet for histograms.  ``json_snapshot`` renders the same registry —
plus, optionally, per-endpoint circuit-breaker health from a
:class:`repro.services.registry.ServiceRegistry`, a runtime's
:class:`~repro.runtime.metrics.RuntimeStatsSnapshot`, recent events,
and recent spans — as one JSON-ready dict, so a single document
reports runtime, resilience, and enactment telemetry together.
``serve_metrics`` puts both behind a tiny stdlib HTTP server
(``/metrics`` and ``/metrics.json``), which is what
``python -m repro metrics`` runs.
"""

from __future__ import annotations

import dataclasses
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.observability import events as events_mod
from repro.observability import spans as spans_mod
from repro.observability.registry import (
    MetricFamilySnapshot,
    MetricRegistry,
    get_registry,
)

#: The content type Prometheus scrapers expect for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _render_family(family: MetricFamilySnapshot) -> List[str]:
    lines = []
    if family.help:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for sample in family.samples:
        if family.kind == "histogram":
            for bound, count in sample.buckets or []:
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                labels = _render_labels(sample.labels, f'le="{le}"')
                lines.append(f"{family.name}_bucket{labels} {count}")
            plain = _render_labels(sample.labels)
            lines.append(
                f"{family.name}_sum{plain} {_format_value(sample.sum)}"
            )
            lines.append(f"{family.name}_count{plain} {sample.count}")
        else:
            labels = _render_labels(sample.labels)
            lines.append(
                f"{family.name}{labels} {_format_value(sample.value)}"
            )
    return lines


def render_prometheus(registry: Optional[MetricRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for family in registry.collect():
        lines.extend(_render_family(family))
    return "\n".join(lines) + "\n"


def _family_to_json(family: MetricFamilySnapshot) -> Dict[str, Any]:
    samples = []
    for sample in family.samples:
        entry: Dict[str, Any] = {"labels": dict(sample.labels)}
        if family.kind == "histogram":
            entry["buckets"] = [
                {"le": "+Inf" if math.isinf(b) else b, "count": c}
                for b, c in sample.buckets or []
            ]
            entry["sum"] = sample.sum
            entry["count"] = sample.count
        else:
            entry["value"] = sample.value
        samples.append(entry)
    return {"kind": family.kind, "help": family.help, "samples": samples}


def json_snapshot(
    registry: Optional[MetricRegistry] = None,
    services: Optional[Any] = None,
    runtime: Optional[Any] = None,
    event_limit: int = 200,
    span_limit: int = 200,
) -> Dict[str, Any]:
    """One JSON-ready telemetry document.

    ``services`` (a :class:`~repro.services.registry.ServiceRegistry`)
    contributes per-endpoint circuit-breaker health via its
    ``health()`` view; ``runtime`` (an
    :class:`~repro.runtime.service.ExecutionService` or a
    :class:`~repro.runtime.metrics.RuntimeStatsSnapshot`) contributes
    the runtime's aggregate counters — so one document joins
    enactment, runtime, and resilience telemetry.
    """
    registry = registry if registry is not None else get_registry()
    document: Dict[str, Any] = {
        "generated_at": time.time(),
        "metrics": {
            family.name: _family_to_json(family)
            for family in registry.collect()
        },
    }
    if services is not None:
        document["health"] = {
            endpoint: {
                "state": snap.state.value,
                "consecutive_failures": snap.consecutive_failures,
                "failures": snap.failures,
                "successes": snap.successes,
                "rejections": snap.rejections,
                "opened_count": snap.opened_count,
            }
            for endpoint, snap in sorted(services.health().items())
        }
    if runtime is not None:
        snapshot = runtime.snapshot() if hasattr(runtime, "snapshot") else runtime
        document["runtime"] = dataclasses.asdict(snapshot)
    recent_events = events_mod.get_event_log().recent(event_limit)
    if recent_events:
        document["events"] = recent_events
    recent_spans = spans_mod.recent_spans(span_limit)
    if recent_spans:
        document["spans"] = recent_spans
    return document


def write_telemetry(
    path: str,
    registry: Optional[MetricRegistry] = None,
    services: Optional[Any] = None,
    runtime: Optional[Any] = None,
) -> str:
    """Dump :func:`json_snapshot` to a file; returns the path."""
    document = json_snapshot(registry, services=services, runtime=runtime)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def serve_metrics(
    registry: Optional[MetricRegistry] = None,
    host: str = "127.0.0.1",
    port: int = 9464,
    services: Optional[Any] = None,
    runtime: Optional[Any] = None,
) -> ThreadingHTTPServer:
    """An HTTP server exposing ``/metrics`` and ``/metrics.json``.

    Returns the (not yet serving) server; call ``serve_forever()`` or
    run it on a thread and ``shutdown()`` when done.  ``port=0`` binds
    an ephemeral port (``server.server_address[1]`` reports it).
    """
    resolved = registry if registry is not None else get_registry()

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            if path in ("/metrics", "/"):
                body = render_prometheus(resolved).encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            elif path in ("/metrics.json", "/snapshot"):
                document = json_snapshot(
                    resolved, services=services, runtime=runtime
                )
                body = json.dumps(
                    document, indent=2, sort_keys=True, default=str
                ).encode("utf-8")
                content_type = "application/json"
            else:
                self.send_error(404, "try /metrics or /metrics.json")
                return
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: Any) -> None:
            pass  # scrapes poll; keep stderr quiet

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server


def serve_in_background(server: ThreadingHTTPServer) -> threading.Thread:
    """Run a :func:`serve_metrics` server on a daemon thread."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics", daemon=True
    )
    thread.start()
    return thread


def serve_until_interrupt(server: Any) -> int:
    """Serve in the foreground until Ctrl-C; returns a process status.

    The graceful path the CLI commands (``metrics``, ``serve``) share:
    ``serve_forever()`` until ``KeyboardInterrupt``, then
    ``shutdown()`` (unblocks any concurrent ``serve_forever`` state)
    and ``server_close()`` (releases the socket), mapping Ctrl-C to a
    clean exit code 0 instead of a traceback.  ``server`` is anything
    with the ``BaseServer`` lifecycle trio (``serve_forever`` /
    ``shutdown`` / ``server_close``).
    """
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
        return 0
    finally:
        server.server_close()
    return 0
