"""Cross-process telemetry forwarding for the process execution backend.

After a fork, each worker process owns a private copy of the metric
registry: counters a worker bumps are invisible to the parent's
exporters.  Workers therefore report structured *records* — one per
processed chunk, plus worker-lifecycle events — through the stats
queue, and the parent republishes them here under the
``repro_runtime_proc_*`` metric families and re-emits lifecycle events
through the parent's event log.  Span timing crosses the boundary the
same way: each worker stage measures its own wall clock and the chunk
record carries the per-stage seconds.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.observability.events import get_event_log
from repro.observability.registry import get_registry

__all__ = [
    "chunk_record",
    "publish_chunk_record",
    "publish_worker_event",
    "set_worker_gauge",
]


def chunk_record(
    *,
    shard: int,
    job: int,
    seq: int,
    items: int,
    status: str,
    stage_seconds: Mapping[str, float],
    cache_lookups: int = 0,
    cache_hits: int = 0,
) -> Dict[str, Any]:
    """One worker chunk's telemetry, as a wire-safe stat message."""
    return {
        "kind": "stat",
        "shard": shard,
        "job": job,
        "seq": seq,
        "items": items,
        "status": status,
        "stage_seconds": {
            stage: float(seconds)
            for stage, seconds in stage_seconds.items()
        },
        "cache_lookups": int(cache_lookups),
        "cache_hits": int(cache_hits),
    }


def publish_chunk_record(record: Mapping[str, Any]) -> None:
    """Republish one worker chunk record on the parent's registry."""
    registry = get_registry()
    shard = str(record.get("shard", ""))
    registry.counter(
        "repro_runtime_proc_chunks_total",
        "Streaming chunks processed by worker shard and status.",
        labels=("shard", "status"),
    ).labels(shard=shard, status=str(record.get("status", ""))).inc()
    registry.counter(
        "repro_runtime_proc_chunk_items_total",
        "Data items processed by worker shard.",
        labels=("shard",),
    ).labels(shard=shard).inc(int(record.get("items", 0)))
    for stage, seconds in (record.get("stage_seconds") or {}).items():
        registry.histogram(
            "repro_runtime_proc_stage_seconds",
            "Wall-clock seconds of one chunk through one worker stage.",
            labels=("stage",),
        ).labels(stage=str(stage)).observe(float(seconds))


def publish_worker_event(name: str, **attributes: Any) -> None:
    """Re-emit one worker-lifecycle event on the parent's event log."""
    get_event_log().emit(name, **attributes)


def set_worker_gauge(runtime: str, live: int) -> None:
    """Publish the live worker-process count of one runtime."""
    get_registry().gauge(
        "repro_runtime_proc_workers",
        "Live worker processes of the process execution backend.",
        labels=("runtime",),
    ).labels(runtime=runtime).set(live)
