"""Thread-safe metric registry: labeled counters, gauges, histograms.

The registry is deliberately Prometheus-shaped: a *family* is one
metric name with a fixed label schema, a *child* is one label-value
combination, and a collect pass produces immutable snapshots that the
exporters (``repro.observability.export``) render as Prometheus text
or JSON.  Everything is safe for concurrent mutation — every family
guards its children map and their values with one lock, so concurrent
``inc``/``observe`` calls can never lose updates (pinned by the
hammer test in ``tests/test_observability.py``).

Naming convention (enforced at registration, linted across the source
tree by ``tests/test_observability_lint.py``)::

    repro_<subsystem>_<name>[_unit]     e.g. repro_runtime_job_run_seconds

A process-wide default registry (:func:`get_registry` /
:func:`set_default_registry`) is what the instrumented layers write
to; swapping in a :class:`NullRegistry` turns every observation into a
no-op, which is how telemetry is disabled entirely (benchmark E15
measures the difference at under 5%).
"""

from __future__ import annotations

import bisect
import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: The enforced metric-name shape: ``repro_<subsystem>_<name>[_unit]``
#: — lower-case tokens, at least one token after the subsystem.
METRIC_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9]*(?:_[a-z0-9]+)+$")

_LABEL_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Default histogram buckets for second-valued latencies (upper
#: bounds, seconds); an implicit +Inf bucket always follows.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


@dataclass
class MetricSample:
    """One child's reading inside a family snapshot.

    Counters and gauges use ``value``; histograms use ``buckets``
    (cumulative ``(upper_bound, count)`` pairs, +Inf last), ``sum``
    and ``count``.
    """

    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0
    buckets: Optional[List[Tuple[float, int]]] = None
    sum: float = 0.0
    count: int = 0


@dataclass
class MetricFamilySnapshot:
    """One immutable reading of a whole metric family."""

    name: str
    help: str
    kind: str  # counter | gauge | histogram
    label_names: Tuple[str, ...]
    samples: List[MetricSample]


class _Family:
    """Shared plumbing of one named metric with a fixed label schema."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str]
    ) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        for label in self.label_names:
            if not _LABEL_NAME_RE.match(label):
                raise MetricError(
                    f"metric {name!r} declares invalid label name {label!r}"
                )
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelkv: object):
        """The child for one label-value combination (created on first use)."""
        if set(labelkv) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labelkv)}"
            )
        key = tuple(str(labelkv[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _child(self):
        """The single child of an unlabelled family."""
        return self.labels()

    def _new_child(self):
        raise NotImplementedError

    def _sorted_children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def snapshot(self) -> MetricFamilySnapshot:
        raise NotImplementedError


class _CounterChild:
    """One label combination of a counter; monotonically increasing."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError(f"counters only go up; inc({amount}) refused")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    """A monotonically increasing count (events, items, retries)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (labelled families use .labels())."""
        self._child().inc(amount)

    @property
    def value(self) -> float:
        """The unlabelled child's current value."""
        return self._child().value

    def snapshot(self) -> MetricFamilySnapshot:
        samples = [
            MetricSample(labels=self._labels_dict(key), value=child.value)
            for key, child in self._sorted_children()
        ]
        return MetricFamilySnapshot(
            self.name, self.help, self.kind, self.label_names, samples
        )


class _GaugeChild:
    """One label combination of a gauge; goes up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Family):
    """A value that can go up and down (queue depth, busy workers)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._child().dec(amount)

    @property
    def value(self) -> float:
        """The unlabelled child's current value."""
        return self._child().value

    def snapshot(self) -> MetricFamilySnapshot:
        samples = [
            MetricSample(labels=self._labels_dict(key), value=child.value)
            for key, child in self._sorted_children()
        ]
        return MetricFamilySnapshot(
            self.name, self.help, self.kind, self.label_names, samples
        )


class _HistogramChild:
    """One label combination of a histogram; fixed upper bounds."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def reading(self) -> Tuple[List[Tuple[float, int]], float, int]:
        """Cumulative ``(le, count)`` pairs (+Inf last), sum, count."""
        with self._lock:
            counts = list(self._counts)
            total = self._sum
            count = self._count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self._bounds, counts):
            running += bucket_count
            cumulative.append((bound, running))
        cumulative.append((float("inf"), count))
        return cumulative, total, count


class Histogram(_Family):
    """A fixed-bucket distribution (latencies, sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise MetricError(
                f"histogram {name!r} buckets must be finite (+Inf is implicit)"
            )
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name!r} has duplicate buckets")
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._child().observe(value)

    def snapshot(self) -> MetricFamilySnapshot:
        samples = []
        for key, child in self._sorted_children():
            cumulative, total, count = child.reading()
            samples.append(
                MetricSample(
                    labels=self._labels_dict(key),
                    buckets=cumulative,
                    sum=total,
                    count=count,
                )
            )
        return MetricFamilySnapshot(
            self.name, self.help, self.kind, self.label_names, samples
        )


class MetricRegistry:
    """A process-local catalogue of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call fixes the help text, label schema (and buckets); later
    calls return the same family, so instrumented code can declare the
    metric at the point of use without import-order coupling.
    Redeclaring a name as a different kind or with a different label
    schema raises :class:`MetricError`.
    """

    def __init__(self, strict_names: bool = True) -> None:
        self.strict_names = strict_names
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- declaration (get-or-create) ---------------------------------------

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """The named counter family, created on first use."""
        return self._family(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        """The named gauge family, created on first use."""
        return self._family(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The named histogram family, created on first use."""
        return self._family(Histogram, name, help, labels, buckets=buckets)

    def _family(self, cls, name, help, labels, **extra) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"metric {name!r} is a {existing.kind}, "
                        f"not a {cls.kind}"
                    )
                if existing.label_names != tuple(labels):
                    raise MetricError(
                        f"metric {name!r} was declared with labels "
                        f"{list(existing.label_names)}, not {list(labels)}"
                    )
                return existing
            if self.strict_names and not METRIC_NAME_RE.match(name):
                raise MetricError(
                    f"metric name {name!r} violates the "
                    f"repro_<subsystem>_<name>[_unit] convention"
                )
            family = cls(name, help, labels, **extra)
            self._families[name] = family
            return family

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[_Family]:
        """The family by name, or None."""
        with self._lock:
            return self._families.get(name)

    def names(self) -> List[str]:
        """Sorted names of every registered family."""
        with self._lock:
            return sorted(self._families)

    def collect(self) -> List[MetricFamilySnapshot]:
        """A consistent-per-family snapshot of every metric, by name."""
        with self._lock:
            families = sorted(self._families.items())
        return [family.snapshot() for _, family in families]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {len(self)} families>"


class _NullMetric:
    """One do-nothing object standing in for every family and child."""

    __slots__ = ()

    def labels(self, **labelkv: object) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricRegistry):
    """A registry that records nothing: telemetry disabled.

    Every declaration returns one shared no-op metric, so the
    instrumented hot paths pay only a method call; ``collect`` is
    always empty.
    """

    def counter(self, name, help="", labels=()):  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name, help="", labels=()):  # type: ignore[override]
        return _NULL_METRIC

    def histogram(  # type: ignore[override]
        self, name, help="", labels=(), buckets=DEFAULT_LATENCY_BUCKETS
    ):
        return _NULL_METRIC

    def collect(self) -> List[MetricFamilySnapshot]:
        return []


#: The process-wide registry the instrumented layers write to.
_default_registry: MetricRegistry = MetricRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_default_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-wide registry; returns the previous one.

    Installing a :class:`NullRegistry` disables metric collection
    everywhere; installing a fresh :class:`MetricRegistry` starts the
    catalogue from zero (tests and benchmarks use both).
    """
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
