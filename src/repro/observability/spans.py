"""Hierarchical spans with context propagation across thread hops.

A span is one timed unit of work; spans nest (parent/child links share
a ``trace_id``), and the *current* span travels in a
:class:`contextvars.ContextVar`.  Thread pools do **not** inherit
context variables, so the concurrent layers — the wavefront
:class:`repro.runtime.parallel.ParallelEnactor` submitting firing
tasks, its iteration pool, and :class:`repro.runtime.service.ExecutionService`
workers — capture :func:`current_span` at submission and re-activate
it with :func:`use_span` inside the task.  That is what makes a
processor firing on a pool thread a *child* of the job span that
queued it.

Spans double as the runtime's exact-attribution carrier: every span
keeps shared counters on its **root** (:meth:`Span.add`), so e.g. an
annotation-store lookup performed three thread-hops deep still counts
against precisely the job that caused it — this replaces the old
window-delta accounting whose counts cross-talked when jobs
overlapped.

Finished spans land in a bounded in-memory recorder
(:func:`recent_spans`) and are emitted as structured events; tracing
can be switched off (:func:`set_tracing`), in which case only spans
started with ``always=True`` (one per runtime job, needed for exact
metrics) are created.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

_current: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None
)

#: Monotonic span-id source; ``itertools.count`` is atomic in CPython.
_ids = itertools.count(1)


class Span:
    """One timed, attributed unit of work in a trace tree."""

    __slots__ = (
        "name", "span_id", "trace_id", "parent_id", "attributes",
        "started_at", "ended_at", "status", "error",
        "_root", "_counters", "_counters_lock",
    )

    def __init__(
        self,
        name: str,
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, Any]] = None,
        boundary: bool = False,
    ) -> None:
        token = next(_ids)
        self.name = name
        self.span_id = f"s{token:06d}"
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.started_at = time.perf_counter()
        self.ended_at: Optional[float] = None
        self.status = "started"
        self.error: Optional[str] = None
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = f"t{token:06d}"
            self.parent_id = None
        if parent is None or boundary:
            # A counter boundary: descendants attribute here, not to any
            # enclosing trace.  Runtime job spans use this so two jobs
            # queued from one submitter trace never pool their counts.
            self._root = self
            self._counters: Optional[Dict[str, float]] = {}
            self._counters_lock = threading.Lock()
        else:
            self._root = parent._root
            self._counters = None
            self._counters_lock = None

    # -- shared counters (root-attributed) ---------------------------------

    @property
    def root(self) -> "Span":
        """The trace's root span (the attribution target)."""
        return self._root

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate a named count on this trace's root span.

        Thread-safe; any descendant span — on any thread — adds to the
        same totals, which is how per-job measurements stay exact when
        jobs overlap.
        """
        root = self._root
        with root._counters_lock:
            root._counters[key] = root._counters.get(key, 0) + amount

    def counter(self, key: str, default: float = 0) -> float:
        """One root-accumulated count (0 when never added)."""
        root = self._root
        with root._counters_lock:
            return root._counters.get(key, default)

    def counters(self) -> Dict[str, float]:
        """A copy of every root-accumulated count of this trace."""
        root = self._root
        with root._counters_lock:
            return dict(root._counters)

    # -- lifecycle ---------------------------------------------------------

    def end(self, status: str = "ok", error: Optional[str] = None) -> None:
        """Close the span (idempotent) and record it."""
        if self.ended_at is not None:
            return
        self.ended_at = time.perf_counter()
        self.status = status
        self.error = error
        _recorder.record(self)

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock seconds, or None while running."""
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (exporters and the recorder use this)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "duration": self.duration,
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.error is not None:
            data["error"] = self.error
        return data

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} {self.trace_id}/{self.span_id} "
            f"({self.status})>"
        )


class _NullSpan:
    """The span handed out while tracing is disabled; records nothing.

    ``add``/``counter`` still work when an *enclosing* real span is
    active — they delegate to it — so exact job attribution survives
    tracing being off.
    """

    __slots__ = ()

    name = "null"
    trace_id = span_id = parent_id = None
    status = "ok"
    duration = None
    attributes: Dict[str, Any] = {}

    def add(self, key: str, amount: float = 1) -> None:
        enclosing = _current.get()
        if enclosing is not None:
            enclosing.add(key, amount)

    def counter(self, key: str, default: float = 0) -> float:
        enclosing = _current.get()
        if enclosing is not None:
            return enclosing.counter(key, default)
        return default

    def counters(self) -> Dict[str, float]:
        enclosing = _current.get()
        if enclosing is not None:
            return enclosing.counters()
        return {}

    def end(self, status: str = "ok", error: Optional[str] = None) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "null"}


_NULL_SPAN = _NullSpan()


class SpanRecorder:
    """A bounded ring of finished spans (newest last)."""

    def __init__(self, capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span.to_dict())

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            spans = list(self._spans)
        return spans if limit is None else spans[-limit:]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


_recorder = SpanRecorder()
_tracing_enabled = True


def set_tracing(enabled: bool) -> bool:
    """Switch span creation on or off; returns the previous setting.

    Disabled tracing still creates ``always=True`` spans (one per
    runtime job) because exact metric attribution rides on them.
    """
    global _tracing_enabled
    previous = _tracing_enabled
    _tracing_enabled = enabled
    return previous


def tracing_enabled() -> bool:
    """Whether ordinary (non-``always``) spans are being created."""
    return _tracing_enabled


def current_span() -> Optional[Span]:
    """The calling context's active span, or None."""
    return _current.get()


def recent_spans(limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """Recently finished spans as dicts (bounded ring, newest last)."""
    return _recorder.recent(limit)


def clear_recorded_spans() -> None:
    """Empty the finished-span ring (test isolation)."""
    _recorder.clear()


@contextlib.contextmanager
def start_span(
    name: str, always: bool = False, boundary: bool = False, **attributes: Any
) -> Iterator[Span]:
    """Open a child of the current span, activate it, close on exit.

    A failure inside the block marks the span ``status="error"`` with
    the exception text and re-raises.  ``always=True`` creates the
    span even while tracing is disabled (the runtime's per-job root
    spans carry exact metric attribution and must always exist);
    ``boundary=True`` makes the span its own counter-attribution root
    while keeping the parent/trace linkage.
    """
    if not _tracing_enabled and not always:
        yield _NULL_SPAN
        return
    span = Span(
        name, parent=_current.get(), attributes=attributes, boundary=boundary
    )
    token = _current.set(span)
    try:
        yield span
    except BaseException as exc:
        span.end(status="error", error=f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _current.reset(token)
        span.end()


@contextlib.contextmanager
def use_span(span: Optional[Span]) -> Iterator[Optional[Span]]:
    """Re-activate a captured span on this thread (the pool-hop helper).

    ``None`` is accepted and does nothing, so callers can always write
    ``with use_span(captured):`` around pool tasks.
    """
    if span is None:
        yield None
        return
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


def add_to_current(key: str, amount: float = 1) -> None:
    """Accumulate on the active trace's root span, if any.

    The annotation store calls this per lookup; outside any span (a
    bare ``view.run`` with no runtime) it is a no-op.
    """
    span = _current.get()
    if span is not None:
        span.add(key, amount)
