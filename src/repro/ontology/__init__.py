"""OWL-lite ontology engine and the Qurator IQ semantic model.

The paper (Sec. 3) defines the *IQ model*, an OWL DL ontology whose root
classes are ``QualityAssertion``, ``QualityEvidence``, ``DataEntity``,
``AnnotationFunction`` and ``ClassificationModel``, plus generic quality
dimensions (accuracy, completeness, currency).  ``Ontology`` is a typed
API over an RDF graph that provides the reasoning the framework needs:
subclass transitive closure, instance checking, domain/range validation,
and enumerated classification members.
"""

from repro.ontology.ontology import (
    Ontology,
    OntologyError,
    PropertyKind,
)
from repro.ontology.reasoner import Reasoner
from repro.ontology.iq_model import IQModel, build_iq_model

__all__ = [
    "IQModel",
    "Ontology",
    "OntologyError",
    "PropertyKind",
    "Reasoner",
    "build_iq_model",
]
