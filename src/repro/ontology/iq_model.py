"""The Qurator IQ model: the information-quality ontology of Sec. 3.

Root classes (paper Fig. 2):

* ``q:DataEntity`` — anything annotatable: Imprint hit entries, database
  tuples, XML documents, peak lists, Uniprot entries.
* ``q:QualityEvidence`` — measurable quantities that enable quality
  assertions: Hit Ratio, Mass Coverage, matched masses, peptide counts,
  ELDP, Uniprot evidence codes, journal impact factors.
* ``q:AnnotationFunction`` — functions computing evidence values.
* ``q:QualityAssertion`` — user-defined decision models over evidence.
* ``q:ClassificationModel`` — classification schemes whose members are
  enumerated individuals (``q:low``/``q:mid``/``q:high``).
* ``q:QualityDimension`` — the generic IQ dimensions (accuracy,
  completeness, currency, ...) QAs may be associated with for reuse.

Operators are modelled as *classes* rather than individuals so users can
specialise them (paper Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.rdf import Graph, Literal, Q, RDF, RDFS, URIRef, XSD
from repro.ontology.ontology import Ontology, PropertyKind


@dataclass
class IQModel:
    """The built IQ ontology plus direct handles to its key terms."""

    ontology: Ontology

    # root classes
    DataEntity: URIRef = Q.DataEntity
    QualityEvidence: URIRef = Q.QualityEvidence
    AnnotationFunction: URIRef = Q.AnnotationFunction
    QualityAssertion: URIRef = Q.QualityAssertion
    ClassificationModel: URIRef = Q.ClassificationModel
    QualityDimension: URIRef = Q.QualityDimension

    # data entities
    ImprintHitEntry: URIRef = Q.ImprintHitEntry
    DatabaseTuple: URIRef = Q.DatabaseTuple
    XMLDocument: URIRef = Q.XMLDocument
    PeakList: URIRef = Q.PeakList
    UniprotEntry: URIRef = Q.UniprotEntry
    GOTermOccurrence: URIRef = Q.GOTermOccurrence

    # quality evidence types
    HitRatio: URIRef = Q.HitRatio
    MassCoverage: URIRef = Q.Coverage
    Masses: URIRef = Q.Masses
    PeptidesCount: URIRef = Q.PeptidesCount
    ELDP: URIRef = Q.ELDP
    EvidenceCode: URIRef = Q.EvidenceCode
    JournalImpactFactor: URIRef = Q.JournalImpactFactor

    # annotation functions
    ImprintOutputAnnotation: URIRef = Q["Imprint-output-annotation"]
    EvidenceCodeAnnotation: URIRef = Q.EvidenceCodeAnnotation
    JournalImpactAnnotation: URIRef = Q.JournalImpactAnnotation

    # quality assertions
    UniversalPIScore: URIRef = Q.UniversalPIScore
    UniversalPIScore2: URIRef = Q.UniversalPIScore2
    HRScore: URIRef = Q.HRScore
    PIScoreClassifier: URIRef = Q.PIScoreClassifier

    # classification models + members
    PIScoreClassification: URIRef = Q.PIScoreClassification
    PIMatchClassification: URIRef = Q.PIMatchClassification
    low: URIRef = Q.low
    mid: URIRef = Q.mid
    high: URIRef = Q.high

    # quality dimensions
    Accuracy: URIRef = Q.Accuracy
    Completeness: URIRef = Q.Completeness
    Currency: URIRef = Q.Currency
    Consistency: URIRef = Q.Consistency
    Reliability: URIRef = Q.Reliability

    # properties
    contains_evidence: URIRef = Q["contains-evidence"]
    value: URIRef = Q.value
    computed_by: URIRef = Q.computedBy
    based_on_evidence: URIRef = Q.basedOnEvidence
    classification_model: URIRef = Q.classificationModel
    addresses_dimension: URIRef = Q.addressesDimension
    assigned_class: URIRef = Q.assignedClass
    assigned_score: URIRef = Q.assignedScore

    # syntactic tag types for QA outputs (paper Sec. 5.1: tagSynType)
    score_type: URIRef = Q.score
    class_type: URIRef = Q["class"]

    # -- convenience queries -------------------------------------------------

    def evidence_classes(self) -> Set[URIRef]:
        """Every declared q:QualityEvidence subclass."""

        return self.ontology.subclasses(self.QualityEvidence)

    def assertion_classes(self) -> Set[URIRef]:
        """Every declared q:QualityAssertion subclass."""

        return self.ontology.subclasses(self.QualityAssertion)

    def annotation_function_classes(self) -> Set[URIRef]:
        """Every declared q:AnnotationFunction subclass."""

        return self.ontology.subclasses(self.AnnotationFunction)

    def data_entity_classes(self) -> Set[URIRef]:
        """Every declared q:DataEntity subclass."""

        return self.ontology.subclasses(self.DataEntity)

    def is_evidence_type(self, uri: URIRef) -> bool:
        """True for q:QualityEvidence subclasses."""

        return self.ontology.is_subclass(uri, self.QualityEvidence)

    def is_assertion_type(self, uri: URIRef) -> bool:
        """True for q:QualityAssertion subclasses."""

        return self.ontology.is_subclass(uri, self.QualityAssertion)

    def is_annotation_function(self, uri: URIRef) -> bool:
        """True for q:AnnotationFunction subclasses."""

        return self.ontology.is_subclass(uri, self.AnnotationFunction)

    def is_classification_model(self, uri: URIRef) -> bool:
        """True for q:ClassificationModel subclasses."""

        return self.ontology.is_subclass(uri, self.ClassificationModel)

    def classification_members(self, model: URIRef) -> Set[URIRef]:
        """The enumerated individuals of a classification scheme."""
        return {
            member
            for member in self.ontology.individuals_of(model)
            if isinstance(member, URIRef)
        }

    def dimensions(self) -> Set[URIRef]:
        """The declared IQ-dimension individuals."""

        return {
            d
            for d in self.ontology.individuals_of(self.QualityDimension)
            if isinstance(d, URIRef)
        }

    def declare_evidence_type(
        self, uri: URIRef, parent: Optional[URIRef] = None, label: str = ""
    ) -> URIRef:
        """User extension point: add a new quality-evidence class."""
        return self.ontology.add_class(
            uri, parents=(parent or self.QualityEvidence,), label=label or None
        )

    def declare_assertion_type(
        self,
        uri: URIRef,
        parent: Optional[URIRef] = None,
        evidence: Set[URIRef] = frozenset(),
        dimension: Optional[URIRef] = None,
        label: str = "",
    ) -> URIRef:
        """User extension point: add a new quality-assertion class."""
        self.ontology.add_class(
            uri, parents=(parent or self.QualityAssertion,), label=label or None
        )
        for evidence_type in evidence:
            self.ontology.graph.add(uri, self.based_on_evidence, evidence_type)
        if dimension is not None:
            self.ontology.graph.add(uri, self.addresses_dimension, dimension)
        return uri

    def required_evidence(self, assertion: URIRef) -> Set[URIRef]:
        """The evidence types a QA class declares via q:basedOnEvidence."""
        found: Set[URIRef] = set()
        for cls in [assertion, *self.ontology.superclasses(assertion)]:
            found.update(
                o
                for o in self.ontology.graph.objects(cls, self.based_on_evidence)
                if isinstance(o, URIRef)
            )
        return found


def build_iq_model() -> IQModel:
    """Construct the complete IQ ontology of the paper."""
    ontology = Ontology(Graph("iq-model"))
    model = IQModel(ontology)
    add_class = ontology.add_class
    graph = ontology.graph

    # root classes
    add_class(model.DataEntity, label="Data Entity")
    add_class(model.QualityEvidence, label="Quality Evidence")
    add_class(model.AnnotationFunction, label="Annotation Function")
    add_class(model.QualityAssertion, label="Quality Assertion")
    add_class(model.ClassificationModel, label="Classification Model")
    add_class(model.QualityDimension, label="Quality Dimension")

    # data entities
    add_class(model.ImprintHitEntry, (model.DataEntity,), "Imprint Hit Entry")
    add_class(model.DatabaseTuple, (model.DataEntity,), "Database Tuple")
    add_class(model.XMLDocument, (model.DataEntity,), "XML Document")
    add_class(model.PeakList, (model.DataEntity,), "Peak List")
    add_class(model.UniprotEntry, (model.DataEntity,), "Uniprot Entry")
    add_class(model.GOTermOccurrence, (model.DataEntity,), "GO Term Occurrence")

    # quality evidence
    add_class(
        model.HitRatio,
        (model.QualityEvidence,),
        "Hit Ratio",
        "Signal-to-noise indication for a PMF mass spectrum (Stead et al.)",
    )
    add_class(
        model.MassCoverage,
        (model.QualityEvidence,),
        "Mass Coverage",
        "Fraction of the protein sequence matched by peptide masses",
    )
    add_class(model.Masses, (model.QualityEvidence,), "Matched Masses")
    add_class(model.PeptidesCount, (model.QualityEvidence,), "Peptides Count")
    add_class(
        model.ELDP,
        (model.QualityEvidence,),
        "Excess of Limit-Digested Peptides",
    )
    add_class(
        model.EvidenceCode,
        (model.QualityEvidence,),
        "Evidence Code",
        "Uniprot/GO curation evidence code, an indicator of annotation "
        "reliability (Lord et al.)",
    )
    add_class(
        model.JournalImpactFactor,
        (model.QualityEvidence,),
        "Journal Impact Factor",
    )

    # annotation functions
    add_class(
        model.ImprintOutputAnnotation,
        (model.AnnotationFunction,),
        "Imprint Output Annotation",
        "Captures HR/MC/masses/peptide-count indicators emitted by Imprint",
    )
    add_class(
        model.EvidenceCodeAnnotation,
        (model.AnnotationFunction,),
        "Evidence Code Annotation",
    )
    add_class(
        model.JournalImpactAnnotation,
        (model.AnnotationFunction,),
        "Journal Impact Annotation",
    )

    # classification models and members
    add_class(model.PIScoreClassification, (model.ClassificationModel,))
    add_class(model.PIMatchClassification, (model.ClassificationModel,))
    ontology.add_individual(model.low, model.PIScoreClassification)
    ontology.add_individual(model.mid, model.PIScoreClassification)
    ontology.add_individual(model.high, model.PIScoreClassification)
    ontology.add_individual(Q["average-to-low"], model.PIMatchClassification)
    ontology.add_individual(Q["average-to-high"], model.PIMatchClassification)

    # quality dimensions (Wang & Strong / Redman)
    for dimension, label in (
        (model.Accuracy, "Accuracy"),
        (model.Completeness, "Completeness"),
        (model.Currency, "Currency"),
        (model.Consistency, "Consistency"),
        (model.Reliability, "Reliability"),
    ):
        ontology.add_class(model.QualityDimension)  # idempotent
        graph.add(dimension, RDF.type, model.QualityDimension)
        graph.add(dimension, RDFS.label, Literal(label))

    # properties
    ontology.add_property(
        model.contains_evidence,
        PropertyKind.OBJECT,
        domain=model.DataEntity,
        range=model.QualityEvidence,
        label="contains evidence",
    )
    ontology.add_property(
        model.value, PropertyKind.DATATYPE, domain=model.QualityEvidence
    )
    ontology.add_property(
        model.computed_by,
        PropertyKind.OBJECT,
        domain=model.QualityEvidence,
        range=model.AnnotationFunction,
    )
    ontology.add_property(
        model.based_on_evidence,
        PropertyKind.OBJECT,
        domain=model.QualityAssertion,
        range=model.QualityEvidence,
    )
    ontology.add_property(
        model.classification_model,
        PropertyKind.OBJECT,
        domain=model.QualityAssertion,
        range=model.ClassificationModel,
    )
    ontology.add_property(
        model.addresses_dimension,
        PropertyKind.OBJECT,
        domain=model.QualityAssertion,
        range=model.QualityDimension,
    )
    ontology.add_property(
        model.assigned_class, PropertyKind.OBJECT, domain=model.DataEntity
    )
    ontology.add_property(
        model.assigned_score, PropertyKind.DATATYPE, domain=model.DataEntity
    )

    # the root categories are mutually exclusive: a resource cannot be
    # both data and evidence, or an assertion and an annotation function
    ontology.declare_disjoint(model.DataEntity, model.QualityEvidence)
    ontology.declare_disjoint(model.QualityAssertion, model.AnnotationFunction)
    ontology.declare_disjoint(model.QualityEvidence, model.QualityAssertion)

    # quality assertions, with their declared evidence requirements
    model.declare_assertion_type(
        model.UniversalPIScore,
        evidence={model.HitRatio, model.MassCoverage},
        dimension=model.Accuracy,
        label="Universal PI Score (HR + MC)",
    )
    model.declare_assertion_type(
        model.UniversalPIScore2,
        parent=model.UniversalPIScore,
        evidence={model.PeptidesCount},
        dimension=model.Accuracy,
        label="Universal PI Score 2 (HR + MC + peptide count)",
    )
    model.declare_assertion_type(
        model.HRScore,
        evidence={model.HitRatio},
        dimension=model.Accuracy,
        label="Hit Ratio score",
    )
    model.declare_assertion_type(
        model.PIScoreClassifier,
        evidence={model.HitRatio, model.MassCoverage},
        dimension=model.Accuracy,
        label="PI score three-way classifier",
    )
    graph.add(
        model.PIScoreClassifier,
        model.classification_model,
        model.PIScoreClassification,
    )

    return model
