"""A typed ontology API over an RDF graph.

Classes, properties and individuals are RDF resources described with the
RDFS/OWL vocabulary, so the whole model serialises like any other graph
(and the binding registry can annotate the same resources).  The engine
implements the OWL-lite subset the Qurator framework needs; anything
requiring a DL reasoner is out of scope, exactly as the paper's use of
the ontology is structural (taxonomy + schema for annotations).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.rdf import Graph, Literal, OWL, RDF, RDFS, URIRef
from repro.rdf.term import Node


class OntologyError(ValueError):
    """Raised on structurally invalid ontology operations."""


class PropertyKind(enum.Enum):
    """The OWL property categories the engine distinguishes."""

    OBJECT = OWL.ObjectProperty
    DATATYPE = OWL.DatatypeProperty
    ANNOTATION = OWL.AnnotationProperty


class Ontology:
    """Mutable ontology with memoised subsumption reasoning."""

    def __init__(self, graph: Optional[Graph] = None) -> None:
        self.graph = graph if graph is not None else Graph("ontology")
        self._ancestor_cache: Dict[URIRef, Set[URIRef]] = {}

    # -- cache management ---------------------------------------------------

    def _invalidate(self) -> None:
        self._ancestor_cache.clear()

    # -- schema construction -------------------------------------------------

    def add_class(
        self,
        uri: URIRef,
        parents: Sequence[URIRef] = (),
        label: Optional[str] = None,
        comment: Optional[str] = None,
    ) -> URIRef:
        """Declare an ``owl:Class``, optionally under one or more parents."""
        self.graph.add(uri, RDF.type, OWL.Class)
        for parent in parents:
            if parent == uri:
                raise OntologyError(f"class {uri} cannot subclass itself")
            self.graph.add(uri, RDFS.subClassOf, parent)
        if label:
            self.graph.add(uri, RDFS.label, Literal(label))
        if comment:
            self.graph.add(uri, RDFS.comment, Literal(comment))
        self._invalidate()
        return uri

    def add_property(
        self,
        uri: URIRef,
        kind: PropertyKind = PropertyKind.OBJECT,
        domain: Optional[URIRef] = None,
        range: Optional[URIRef] = None,
        label: Optional[str] = None,
    ) -> URIRef:
        """Declare a property with optional domain/range/label."""

        self.graph.add(uri, RDF.type, kind.value)
        if domain is not None:
            self.graph.add(uri, RDFS.domain, domain)
        if range is not None:
            self.graph.add(uri, RDFS.range, range)
        if label:
            self.graph.add(uri, RDFS.label, Literal(label))
        self._invalidate()
        return uri

    def add_individual(self, uri: URIRef, cls: URIRef) -> URIRef:
        """Type an individual into a declared class."""

        if not self.is_class(cls):
            raise OntologyError(f"{cls} is not a declared class")
        self.graph.add(uri, RDF.type, cls)
        return uri

    def add_subclass_of(self, child: URIRef, parent: URIRef) -> None:
        """Assert one rdfs:subClassOf edge."""

        if child == parent:
            raise OntologyError(f"class {child} cannot subclass itself")
        self.graph.add(child, RDFS.subClassOf, parent)
        self._invalidate()

    # -- introspection ---------------------------------------------------------

    def is_class(self, uri: URIRef) -> bool:
        """True when the URI is a declared owl:Class."""
        return (uri, RDF.type, OWL.Class) in self.graph

    def is_property(self, uri: URIRef) -> bool:
        """True when the URI is a declared property of any kind."""
        return any(
            (uri, RDF.type, kind.value) in self.graph for kind in PropertyKind
        )

    def classes(self) -> Iterator[URIRef]:
        """Every declared class."""
        for subject in self.graph.subjects(RDF.type, OWL.Class):
            if isinstance(subject, URIRef):
                yield subject

    def label_of(self, uri: URIRef) -> Optional[str]:
        """The rdfs:label of a resource, or None."""
        value = self.graph.value(uri, RDFS.label, None)
        return str(value) if value is not None else None

    def comment_of(self, uri: URIRef) -> Optional[str]:
        """The rdfs:comment of a resource, or None."""
        value = self.graph.value(uri, RDFS.comment, None)
        return str(value) if value is not None else None

    # -- subsumption ------------------------------------------------------------

    def direct_superclasses(self, cls: URIRef) -> List[URIRef]:
        """The asserted (one-step) superclasses."""
        return [
            o
            for o in self.graph.objects(cls, RDFS.subClassOf)
            if isinstance(o, URIRef)
        ]

    def superclasses(self, cls: URIRef) -> Set[URIRef]:
        """The transitive superclass closure (excluding ``cls`` itself)."""
        cached = self._ancestor_cache.get(cls)
        if cached is not None:
            return cached
        closure: Set[URIRef] = set()
        stack = list(self.direct_superclasses(cls))
        while stack:
            current = stack.pop()
            if current in closure or current == cls:
                continue
            closure.add(current)
            stack.extend(self.direct_superclasses(current))
        self._ancestor_cache[cls] = closure
        return closure

    def subclasses(self, cls: URIRef, direct: bool = False) -> Set[URIRef]:
        """The subclass closure (or only direct children)."""

        if direct:
            return {
                s
                for s in self.graph.subjects(RDFS.subClassOf, cls)
                if isinstance(s, URIRef)
            }
        result: Set[URIRef] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            for child in self.graph.subjects(RDFS.subClassOf, current):
                if isinstance(child, URIRef) and child not in result:
                    result.add(child)
                    stack.append(child)
        return result

    def is_subclass(self, child: URIRef, parent: URIRef) -> bool:
        """Reflexive-transitive subclass test."""
        if child == parent:
            return True
        return parent in self.superclasses(child)

    # -- instances ---------------------------------------------------------------

    def types_of(self, individual: Node) -> Set[URIRef]:
        """The asserted rdf:types of an individual."""
        return {
            o
            for o in self.graph.objects(individual, RDF.type)
            if isinstance(o, URIRef)
        }

    def is_instance(self, individual: Node, cls: URIRef) -> bool:
        """True when the individual's type reaches ``cls``."""
        return any(self.is_subclass(t, cls) for t in self.types_of(individual))

    def individuals_of(self, cls: URIRef, direct: bool = False) -> Set[Node]:
        """Instances of a class (and its subclasses by default)."""

        classes = {cls} if direct else ({cls} | self.subclasses(cls))
        result: Set[Node] = set()
        for klass in classes:
            result.update(self.graph.subjects(RDF.type, klass))
        result.difference_update(c for c in classes if c in result)
        return result

    # -- domain / range validation --------------------------------------------

    def property_domain(self, prop: URIRef) -> Optional[URIRef]:
        """The declared rdfs:domain of a property, or None."""
        value = self.graph.value(prop, RDFS.domain, None)
        return value if isinstance(value, URIRef) else None

    def property_range(self, prop: URIRef) -> Optional[URIRef]:
        """The declared rdfs:range of a property, or None."""
        value = self.graph.value(prop, RDFS.range, None)
        return value if isinstance(value, URIRef) else None

    def validate_statement(self, subject: Node, prop: URIRef, obj: Node) -> None:
        """Raise ``OntologyError`` if a statement violates domain or range.

        Unknown properties and untyped resources validate trivially —
        the IQ model is user-extensible (paper Sec. 1) so strictness is
        limited to what has been declared.
        """
        domain = self.property_domain(prop)
        if domain is not None and self.types_of(subject):
            if not self.is_instance(subject, domain):
                raise OntologyError(
                    f"subject {subject} is not an instance of the domain "
                    f"{domain} of {prop}"
                )
        range_cls = self.property_range(prop)
        if range_cls is None:
            return
        if isinstance(obj, Literal):
            if self.is_class(range_cls):
                raise OntologyError(
                    f"property {prop} expects resources of class {range_cls}, "
                    f"got literal {obj!r}"
                )
            return
        if self.types_of(obj) and not self.is_instance(obj, range_cls):
            raise OntologyError(
                f"object {obj} is not an instance of the range "
                f"{range_cls} of {prop}"
            )

    # -- disjointness ----------------------------------------------------------

    def declare_disjoint(self, a: URIRef, b: URIRef) -> None:
        """Assert ``owl:disjointWith`` between two classes."""
        if a == b:
            raise OntologyError(f"a class cannot be disjoint with itself: {a}")
        self.graph.add(a, OWL.disjointWith, b)
        self.graph.add(b, OWL.disjointWith, a)

    def are_disjoint(self, a: URIRef, b: URIRef) -> bool:
        """Disjointness including inherited declarations."""
        ancestors_a = {a} | self.superclasses(a)
        ancestors_b = {b} | self.superclasses(b)
        for cls_a in ancestors_a:
            for declared in self.graph.objects(cls_a, OWL.disjointWith):
                if declared in ancestors_b:
                    return True
        return False

    def find_disjointness_violations(self) -> List[str]:
        """Individuals typed into two disjoint classes."""
        problems: List[str] = []
        disjoint_pairs = [
            (s, o)
            for s, _, o in self.graph.triples((None, OWL.disjointWith, None))
            if isinstance(s, URIRef) and isinstance(o, URIRef) and str(s) < str(o)
        ]
        for a, b in disjoint_pairs:
            members_a = self.individuals_of(a)
            members_b = self.individuals_of(b)
            for individual in sorted(members_a & members_b, key=str):
                problems.append(
                    f"{individual} is an instance of both {a} and {b}, "
                    f"which are disjoint"
                )
        return problems

    # -- consistency --------------------------------------------------------------

    def find_subclass_cycles(self) -> List[List[URIRef]]:
        """Detect cycles in the subclass graph (flagged, not fatal)."""
        cycles: List[List[URIRef]] = []
        visited: Set[URIRef] = set()

        def visit(node: URIRef, path: List[URIRef]) -> None:
            if node in path:
                cycles.append(path[path.index(node):] + [node])
                return
            if node in visited:
                return
            visited.add(node)
            for parent in self.direct_superclasses(node):
                visit(parent, path + [node])

        for cls in list(self.classes()):
            visit(cls, [])
        return cycles

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        n_classes = sum(1 for _ in self.classes())
        return f"<Ontology: {n_classes} classes, {len(self.graph)} triples>"
