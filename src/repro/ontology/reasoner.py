"""Materialising reasoner for RDFS-style entailments.

The annotation repositories store instance data in separate graphs from
the IQ schema; the reasoner combines both to answer questions such as
"is this evidence node an instance of q:QualityEvidence?" and can
materialise the inferred ``rdf:type`` closure into a graph so plain
SPARQL queries see entailed types (the paper's stores are queried with
SPARQL without a reasoner in the loop).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set

from repro.rdf import Graph, RDF, RDFS, URIRef
from repro.rdf.term import Node
from repro.rdf.triple import Triple
from repro.ontology.ontology import Ontology


class Reasoner:
    """Answers entailment questions over schema + instance graphs."""

    def __init__(self, ontology: Ontology, data: Optional[Graph] = None) -> None:
        self.ontology = ontology
        self.data = data if data is not None else Graph("data")

    # -- instance-level reasoning -------------------------------------------

    def asserted_types(self, node: Node) -> Set[URIRef]:
        """Types asserted in either the data or schema graph."""
        types = {
            o
            for o in self.data.objects(node, RDF.type)
            if isinstance(o, URIRef)
        }
        types.update(self.ontology.types_of(node))
        return types

    def inferred_types(self, node: Node) -> Set[URIRef]:
        """All types of ``node`` including superclass entailments."""
        result: Set[URIRef] = set()
        for asserted in self.asserted_types(node):
            result.add(asserted)
            result.update(self.ontology.superclasses(asserted))
        return result

    def is_instance(self, node: Node, cls: URIRef) -> bool:
        """Instance check across schema + data with subsumption."""
        return any(
            self.ontology.is_subclass(t, cls) for t in self.asserted_types(node)
        )

    def instances_of(self, cls: URIRef) -> Set[Node]:
        """Instances of ``cls`` or any subclass, across schema + data."""
        classes = {cls} | self.ontology.subclasses(cls)
        result: Set[Node] = set()
        for klass in classes:
            result.update(self.data.subjects(RDF.type, klass))
            result.update(self.ontology.graph.subjects(RDF.type, klass))
        result.difference_update(c for c in classes if c in result)
        return result

    # -- materialisation -------------------------------------------------------

    def materialise_types(self, target: Optional[Graph] = None) -> Graph:
        """Write the inferred ``rdf:type`` closure of the data graph.

        Returns ``target`` (a new graph if none given) containing one
        ``rdf:type`` triple per (instance, entailed class) pair.
        """
        out = target if target is not None else Graph("entailed-types")
        for subject in set(self.data.subjects(RDF.type, None)):
            for cls in self.inferred_types(subject):
                out.add(subject, RDF.type, cls)
        return out

    def entailed_triples(self) -> Iterator[Triple]:
        """Data triples plus the rdf:type / rdfs:subClassOf entailments."""
        yield from self.data
        seen = set(self.data)
        for subject in set(self.data.subjects(RDF.type, None)):
            for cls in self.inferred_types(subject):
                triple = Triple(subject, RDF.type, cls)
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    # -- validation -------------------------------------------------------------

    def validate_data(self) -> list:
        """Domain/range-check every data triple; return violation messages.

        Unlike :meth:`Ontology.validate_statement`, instance types are
        looked up across both the schema and the data graph, so typing
        asserted by the annotation functions is honoured.
        """
        from repro.rdf import Literal

        problems = []
        for s, p, o in self.data:
            if p == RDF.type:
                continue
            domain = self.ontology.property_domain(p)
            if (
                domain is not None
                and self.asserted_types(s)
                and not self.is_instance(s, domain)
            ):
                problems.append(
                    f"subject {s} is not an instance of the domain {domain} of {p}"
                )
            range_cls = self.ontology.property_range(p)
            if range_cls is None:
                continue
            if isinstance(o, Literal):
                if self.ontology.is_class(range_cls):
                    problems.append(
                        f"property {p} expects resources of class {range_cls}, "
                        f"got literal {o!r}"
                    )
                continue
            if self.asserted_types(o) and not self.is_instance(o, range_cls):
                problems.append(
                    f"object {o} is not an instance of the range "
                    f"{range_cls} of {p}"
                )
        return problems
