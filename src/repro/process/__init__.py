"""Abstract quality-process model (paper Sec. 4).

A quality process collects quality evidence (annotation + data
enrichment), computes quality assertions, and applies condition/action
pairs to partition or filter the data.  This package defines the four
abstract operator types of Sec. 4.1, the action implementations, the
condition expression language, and a directly executable process
pattern (quality views compile to the same operators, targeted at a
workflow environment instead).
"""

from repro.process.operators import (
    ActionOperator,
    AnnotationOperator,
    DataEnrichmentOperator,
    Operator,
    QualityAssertionOperator,
)
from repro.process.actions import (
    ActionOutcome,
    ConditionActionPair,
    FilterAction,
    SplitterAction,
)
from repro.process.pattern import QualityProcess, ProcessResult
from repro.process.conditions import Condition, ConditionError, parse_condition

__all__ = [
    "ActionOperator",
    "ActionOutcome",
    "AnnotationOperator",
    "Condition",
    "ConditionActionPair",
    "ConditionError",
    "DataEnrichmentOperator",
    "FilterAction",
    "Operator",
    "ProcessResult",
    "QualityAssertionOperator",
    "QualityProcess",
    "SplitterAction",
    "parse_condition",
]
