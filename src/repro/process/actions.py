"""Action operators: condition-driven routing of data items.

Paper Sec. 4.1 defines two concrete action types (the set is
extensible):

* **Data splitting** — splits an input set D into groups D1..Dk, *not
  necessarily disjoint*, one per condition, plus a (k+1)-th default
  group collecting the items for which no condition held.  Each group
  carries the subset of the annotation map for its items.
* **Data filtering** — the single-condition special case: one output
  map with the satisfying entries; the rest are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.annotation.map import AnnotationMap
from repro.process.conditions import Condition
from repro.process.operators import ActionOperator
from repro.rdf import NamespaceManager, URIRef

#: Name of the implicit group of items matching no splitter condition.
DEFAULT_GROUP = "default"


@dataclass(frozen=True)
class ConditionActionPair:
    """A named routing rule: items satisfying ``condition`` join ``group``."""

    group: str
    condition: Condition


@dataclass
class ActionOutcome:
    """The result of one action: named groups of (items, sub-map) pairs."""

    action_name: str
    groups: Dict[str, Tuple[List[URIRef], AnnotationMap]] = field(
        default_factory=dict
    )

    def items(self, group: str) -> List[URIRef]:
        """The items routed to a group (empty for unknown groups)."""
        entry = self.groups.get(group)
        return list(entry[0]) if entry else []

    def map_of(self, group: str) -> AnnotationMap:
        """The annotation sub-map of a group."""
        entry = self.groups.get(group)
        return entry[1] if entry else AnnotationMap()

    def group_names(self) -> List[str]:
        """Every group the action produced."""
        return list(self.groups)

    def surviving(self) -> List[URIRef]:
        """Items of every non-default group, original order, no duplicates."""
        seen = set()
        out: List[URIRef] = []
        for name, (items, _) in self.groups.items():
            if name == DEFAULT_GROUP:
                continue
            for item in items:
                if item not in seen:
                    seen.add(item)
                    out.append(item)
        return out

    def __repr__(self) -> str:
        sizes = {name: len(items) for name, (items, _) in self.groups.items()}
        return f"<ActionOutcome {self.action_name!r} {sizes}>"


def _as_condition(
    condition: Union[str, Condition], namespaces: Optional[NamespaceManager]
) -> Condition:
    if isinstance(condition, Condition):
        return condition
    return Condition(condition, namespaces=namespaces)


class SplitterAction(ActionOperator):
    """Partition items into k condition groups plus a default group."""

    def __init__(
        self,
        name: str,
        conditions: Sequence[Tuple[str, Union[str, Condition]]],
        namespaces: Optional[NamespaceManager] = None,
    ) -> None:
        super().__init__(name)
        if not conditions:
            raise ValueError("a splitter needs at least one condition")
        self.pairs: List[ConditionActionPair] = []
        seen_groups = set()
        for group, condition in conditions:
            if group == DEFAULT_GROUP:
                raise ValueError(
                    f"group name {DEFAULT_GROUP!r} is reserved for unmatched items"
                )
            if group in seen_groups:
                raise ValueError(f"duplicate splitter group {group!r}")
            seen_groups.add(group)
            self.pairs.append(
                ConditionActionPair(group, _as_condition(condition, namespaces))
            )

    def execute(
        self,
        items: List[URIRef],
        amap: AnnotationMap,
        variable_bindings: Optional[Mapping[str, URIRef]] = None,
    ) -> ActionOutcome:
        """Route the items; see ActionOutcome."""

        buckets: Dict[str, List[URIRef]] = {
            pair.group: [] for pair in self.pairs
        }
        buckets[DEFAULT_GROUP] = []
        for item in items:
            environment = amap.environment(item, dict(variable_bindings or {}))
            matched = False
            for pair in self.pairs:
                if pair.condition.evaluate(environment):
                    buckets[pair.group].append(item)
                    matched = True
            if not matched:
                buckets[DEFAULT_GROUP].append(item)
        outcome = ActionOutcome(self.name)
        for group, members in buckets.items():
            outcome.groups[group] = (members, amap.subset(members))
        return outcome


class FilterAction(ActionOperator):
    """Keep items satisfying one condition; discard the rest."""

    #: Name of a filter's single surviving group.
    ACCEPTED = "accepted"

    def __init__(
        self,
        name: str,
        condition: Union[str, Condition],
        namespaces: Optional[NamespaceManager] = None,
    ) -> None:
        super().__init__(name)
        self.condition = _as_condition(condition, namespaces)

    def execute(
        self,
        items: List[URIRef],
        amap: AnnotationMap,
        variable_bindings: Optional[Mapping[str, URIRef]] = None,
    ) -> ActionOutcome:
        """Route the items; see ActionOutcome."""

        kept: List[URIRef] = []
        for item in items:
            environment = amap.environment(item, dict(variable_bindings or {}))
            if self.condition.evaluate(environment):
                kept.append(item)
        outcome = ActionOutcome(self.name)
        outcome.groups[self.ACCEPTED] = (kept, amap.subset(kept))
        return outcome
