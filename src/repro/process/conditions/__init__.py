"""The condition expression language of quality-view actions.

Paper Sec. 4.1/5.1: conditions are boolean expressions over quality-
assertion tags and evidence values, with relational operators
(``score < 3.2``), set membership (``PIScoreClassification IN
{ 'high', 'mid' }``) and boolean connectives — e.g. the paper's

    scoreClass in q:high, q:mid and HR MC > 20

Tag names may contain spaces (``HR MC``); adjacent bare words combine
into one identifier.
"""

from repro.process.conditions.ast import (
    AndNode,
    Comparison,
    ConditionNode,
    Identifier,
    LiteralNode,
    Membership,
    NotNode,
    NullCheck,
    OrNode,
    referenced_names,
)
from repro.process.conditions.analysis import conjoin, split_conjuncts
from repro.process.conditions.lexer import ConditionError
from repro.process.conditions.parser import parse_condition
from repro.process.conditions.printer import unparse
from repro.process.conditions.evaluator import Condition

__all__ = [
    "AndNode",
    "Comparison",
    "Condition",
    "ConditionError",
    "ConditionNode",
    "Identifier",
    "LiteralNode",
    "Membership",
    "NotNode",
    "NullCheck",
    "OrNode",
    "conjoin",
    "parse_condition",
    "referenced_names",
    "split_conjuncts",
    "unparse",
]
