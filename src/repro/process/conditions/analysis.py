"""Static analysis over condition ASTs.

The quality-view compiler's optimization passes reason about action
conditions without evaluating them: *filter pushdown* needs the
top-level AND-conjuncts of a condition (a conjunct that references only
one QA tag can gate the data set before later assertions run), and
*evidence pruning* needs the set of names a condition reads.

These helpers are pure functions over the frozen AST nodes of
:mod:`repro.process.conditions.ast`; node equality is structural, so
two parses of the same conjunct compare equal across actions.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.process.conditions.ast import (
    AndNode,
    ConditionNode,
    referenced_names,
)

__all__ = ["conjoin", "referenced_names", "split_conjuncts"]


def split_conjuncts(node: ConditionNode) -> List[ConditionNode]:
    """The top-level AND-conjuncts of a condition, left to right.

    ``a and b and c`` yields ``[a, b, c]``; anything that is not an
    ``AndNode`` (including a parenthesised disjunction) is a single
    conjunct.  The conjunction of the returned list is semantically
    identical to the input: ``and`` is associative and the evaluator
    has no short-circuit side effects.
    """
    if isinstance(node, AndNode):
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node]


def conjoin(conjuncts: Sequence[ConditionNode]) -> ConditionNode:
    """Rebuild a (left-associated) conjunction from conjuncts."""
    if not conjuncts:
        raise ValueError("cannot conjoin an empty conjunct list")
    node = conjuncts[0]
    for conjunct in conjuncts[1:]:
        node = AndNode(node, conjunct)
    return node
