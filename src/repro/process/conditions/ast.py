"""AST for condition expressions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple, Union


@dataclass(frozen=True)
class Identifier:
    """A reference to a tag or evidence variable (may contain spaces)."""

    name: str


@dataclass(frozen=True)
class LiteralNode:
    """A constant: number, string, boolean, None, or a QName string.

    QName constants (``q:high``) keep their prefixed form in ``qname``;
    evaluation resolves them against the IQ namespace manager.
    """

    value: object
    qname: str = ""


@dataclass(frozen=True)
class Comparison:
    """A relational test between two operands."""

    op: str  # one of < <= > >= = !=
    left: "ConditionNode"
    right: "ConditionNode"


@dataclass(frozen=True)
class Membership:
    """A set-membership test (``x in a, b`` / ``not in``)."""

    operand: "ConditionNode"
    members: Tuple["ConditionNode", ...]
    negated: bool = False


@dataclass(frozen=True)
class NullCheck:
    """An ``is [not] null`` test."""

    operand: "ConditionNode"
    negated: bool = False  # True for "is not null"


@dataclass(frozen=True)
class AndNode:
    """Boolean conjunction."""

    left: "ConditionNode"
    right: "ConditionNode"


@dataclass(frozen=True)
class OrNode:
    """Boolean disjunction."""

    left: "ConditionNode"
    right: "ConditionNode"


@dataclass(frozen=True)
class NotNode:
    """Boolean negation."""

    operand: "ConditionNode"


ConditionNode = Union[
    Identifier,
    LiteralNode,
    Comparison,
    Membership,
    NullCheck,
    AndNode,
    OrNode,
    NotNode,
]


def referenced_names(node: ConditionNode) -> Set[str]:
    """Every identifier a condition reads (for validation)."""
    if isinstance(node, Identifier):
        return {node.name}
    if isinstance(node, LiteralNode):
        return set()
    if isinstance(node, Comparison):
        return referenced_names(node.left) | referenced_names(node.right)
    if isinstance(node, Membership):
        names = referenced_names(node.operand)
        for member in node.members:
            names |= referenced_names(member)
        return names
    if isinstance(node, NullCheck):
        return referenced_names(node.operand)
    if isinstance(node, (AndNode, OrNode)):
        return referenced_names(node.left) | referenced_names(node.right)
    if isinstance(node, NotNode):
        return referenced_names(node.operand)
    raise TypeError(f"unknown condition node {node!r}")
