"""Evaluation of condition expressions against annotation environments.

Null semantics follow the quality-process model: a data item lacking an
evidence value or tag simply fails every comparison involving it (so it
lands in a splitter's default group) rather than raising — except
``is null`` / ``is not null`` which test absence explicitly.

Classification values are URIs (``q:high``); conditions may write them
as QNames or as bare strings (``'high'``), so equality between a URI
and a string also matches on the URI's fragment name.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Set

from repro.process.conditions import ast
from repro.process.conditions.lexer import ConditionError
from repro.process.conditions.parser import parse_condition
from repro.rdf import Literal, NamespaceManager, URIRef


def _normalise(value: Any) -> Any:
    if isinstance(value, Literal):
        return value.value
    return value


def _values_equal(left: Any, right: Any) -> bool:
    left, right = _normalise(left), _normalise(right)
    if left is None or right is None:
        return False
    if isinstance(left, URIRef) and isinstance(right, str) and not isinstance(
        right, URIRef
    ):
        return str(left) == right or left.fragment() == right
    if isinstance(right, URIRef) and isinstance(left, str) and not isinstance(
        left, URIRef
    ):
        return str(right) == left or right.fragment() == left
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def _values_ordered(op: str, left: Any, right: Any) -> bool:
    left, right = _normalise(left), _normalise(right)
    if left is None or right is None:
        return False
    numeric = (
        isinstance(left, (int, float))
        and isinstance(right, (int, float))
        and not isinstance(left, bool)
        and not isinstance(right, bool)
    )
    textual = isinstance(left, str) and isinstance(right, str)
    if not numeric and not textual:
        raise ConditionError(
            f"cannot order values {left!r} and {right!r} with {op!r}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ConditionError(f"unknown relational operator {op!r}")


class Condition:
    """A parsed, reusable condition expression.

    >>> c = Condition("scoreClass in q:high, q:mid and HR MC > 20")
    >>> c.evaluate({"scoreClass": Q.high, "HR MC": 25.0})
    True
    """

    def __init__(
        self,
        expression: str,
        namespaces: Optional[NamespaceManager] = None,
    ) -> None:
        self.text = expression
        self.node = parse_condition(expression)
        self._nsm = namespaces if namespaces is not None else NamespaceManager()

    def referenced_names(self) -> Set[str]:
        """Every identifier the condition reads."""
        return ast.referenced_names(self.node)

    def evaluate(self, environment: Mapping[str, Any]) -> bool:
        """True when the condition holds in the environment."""
        return bool(self._eval(self.node, environment))

    __call__ = evaluate

    # -- internals -------------------------------------------------------------

    def _resolve_literal(self, node: ast.LiteralNode) -> Any:
        if node.qname:
            try:
                return self._nsm.expand(node.qname)
            except ValueError:
                # Unknown prefix: treat the QName text as an opaque value.
                return node.qname
        return node.value

    def _operand_value(
        self, node: ast.ConditionNode, environment: Mapping[str, Any]
    ) -> Any:
        if isinstance(node, ast.Identifier):
            return _normalise(environment.get(node.name))
        if isinstance(node, ast.LiteralNode):
            return self._resolve_literal(node)
        # A nested boolean expression used as a value.
        return self._eval(node, environment)

    def _eval(self, node: ast.ConditionNode, environment: Mapping[str, Any]) -> bool:
        if isinstance(node, ast.AndNode):
            return self._eval(node.left, environment) and self._eval(
                node.right, environment
            )
        if isinstance(node, ast.OrNode):
            return self._eval(node.left, environment) or self._eval(
                node.right, environment
            )
        if isinstance(node, ast.NotNode):
            return not self._eval(node.operand, environment)
        if isinstance(node, ast.Comparison):
            left = self._operand_value(node.left, environment)
            right = self._operand_value(node.right, environment)
            if node.op == "=":
                return _values_equal(left, right)
            if node.op == "!=":
                if left is None or right is None:
                    return False
                return not _values_equal(left, right)
            return _values_ordered(node.op, left, right)
        if isinstance(node, ast.Membership):
            value = self._operand_value(node.operand, environment)
            if value is None:
                return False
            hit = any(
                _values_equal(value, self._operand_value(member, environment))
                for member in node.members
            )
            return (not hit) if node.negated else hit
        if isinstance(node, ast.NullCheck):
            value = self._operand_value(node.operand, environment)
            is_null = value is None
            return (not is_null) if node.negated else is_null
        if isinstance(node, ast.Identifier):
            value = _normalise(environment.get(node.name))
            if isinstance(value, bool):
                return value
            return value is not None
        if isinstance(node, ast.LiteralNode):
            return bool(self._resolve_literal(node))
        raise ConditionError(f"unknown condition node {node!r}")

    def __repr__(self) -> str:
        return f"Condition({self.text!r})"
