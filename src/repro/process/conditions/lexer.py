"""Tokeniser for the condition language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class ConditionError(ValueError):
    """Raised on syntax or evaluation errors in a condition expression."""


KEYWORDS = {"and", "or", "not", "in", "is", "null", "true", "false"}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<STRING>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<QNAME>[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z0-9_\-]+)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<OP><=|>=|!=|<>|==|[-<>=])
  | (?P<PUNCT>[(){},])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Split a condition string into tokens; error on junk."""

    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConditionError(
                f"unexpected character {text[pos]!r} at position {pos} "
                f"in condition {text!r}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "WS":
            pos = match.end()
            continue
        if kind == "NAME":
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("KEYWORD", lowered, pos))
            else:
                tokens.append(Token("NAME", value, pos))
        elif kind == "STRING":
            body = value[1:-1]
            body = body.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")
            tokens.append(Token("STRING", body, pos))
        else:
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens
