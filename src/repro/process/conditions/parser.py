"""Recursive-descent parser for the condition language.

Grammar (lowercase keywords are case-insensitive):

    condition  := or
    or         := and ('or' and)*
    and        := unary ('and' unary)*
    unary      := 'not' unary | primary
    primary    := operand ( relop operand
                          | ['not'] 'in' member-list
                          | 'is' ['not'] 'null' )?
                | '(' condition ')'
    relop      := '<' | '<=' | '>' | '>=' | '=' | '==' | '!=' | '<>'
    member-list:= '{' members '}' | members
    members    := operand (',' operand)*
    operand    := NUMBER | STRING | QNAME | 'true' | 'false' | 'null'
                | identifier
    identifier := NAME+          (adjacent names join: "HR MC")

Because adjacent bare words merge into one identifier, keywords are the
only separators — exactly what the paper's examples need
(``scoreClass in q:high, q:mid and HR MC > 20``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.process.conditions import ast
from repro.process.conditions.lexer import ConditionError, Token, tokenize

_RELOPS = {"<", "<=", ">", ">=", "=", "==", "!=", "<>"}
_NORMALISED_OPS = {"==": "=", "<>": "!="}


class _Parser:
    def __init__(self, tokens: List[Token], text: str) -> None:
        self._tokens = tokens
        self._index = 0
        self._text = text

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise ConditionError(
                f"expected {value or kind} at position {actual.position} "
                f"in condition {self._text!r}, got {actual.value!r}"
            )
        return token

    # -- grammar -------------------------------------------------------------

    def parse(self) -> ast.ConditionNode:
        """Parse the token stream into a condition AST."""

        node = self._parse_or()
        self._expect("EOF")
        return node

    def _parse_or(self) -> ast.ConditionNode:
        left = self._parse_and()
        while self._accept("KEYWORD", "or"):
            left = ast.OrNode(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.ConditionNode:
        left = self._parse_unary()
        while self._accept("KEYWORD", "and"):
            left = ast.AndNode(left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.ConditionNode:
        # 'not' directly before 'in' belongs to the membership operator,
        # which _parse_primary handles; here it must prefix an expression.
        if self._peek().kind == "KEYWORD" and self._peek().value == "not":
            self._advance()
            return ast.NotNode(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.ConditionNode:
        if self._accept("PUNCT", "("):
            inner = self._parse_or()
            self._expect("PUNCT", ")")
            return inner
        operand = self._parse_operand()
        token = self._peek()
        if token.kind == "OP" and token.value in _RELOPS:
            self._advance()
            right = self._parse_operand()
            op = _NORMALISED_OPS.get(token.value, token.value)
            return ast.Comparison(op, operand, right)
        if token.kind == "KEYWORD" and token.value == "in":
            self._advance()
            return self._parse_membership(operand, negated=False)
        if token.kind == "KEYWORD" and token.value == "not":
            # lookahead for 'not in'
            following = self._tokens[self._index + 1]
            if following.kind == "KEYWORD" and following.value == "in":
                self._advance()
                self._advance()
                return self._parse_membership(operand, negated=True)
        if token.kind == "KEYWORD" and token.value == "is":
            self._advance()
            negated = bool(self._accept("KEYWORD", "not"))
            self._expect("KEYWORD", "null")
            return ast.NullCheck(operand, negated=negated)
        return operand

    def _parse_membership(
        self, operand: ast.ConditionNode, negated: bool
    ) -> ast.Membership:
        braced = bool(self._accept("PUNCT", "{"))
        members = [self._parse_operand()]
        while self._accept("PUNCT", ","):
            members.append(self._parse_operand())
        if braced:
            self._expect("PUNCT", "}")
        return ast.Membership(operand, tuple(members), negated=negated)

    def _parse_operand(self) -> ast.ConditionNode:
        token = self._advance()
        if token.kind == "NUMBER":
            if any(ch in token.value for ch in ".eE"):
                return ast.LiteralNode(float(token.value))
            return ast.LiteralNode(int(token.value))
        if token.kind == "STRING":
            return ast.LiteralNode(token.value)
        if token.kind == "QNAME":
            return ast.LiteralNode(token.value, qname=token.value)
        if token.kind == "KEYWORD":
            if token.value == "true":
                return ast.LiteralNode(True)
            if token.value == "false":
                return ast.LiteralNode(False)
            if token.value == "null":
                return ast.LiteralNode(None)
            raise ConditionError(
                f"unexpected keyword {token.value!r} at position "
                f"{token.position} in condition {self._text!r}"
            )
        if token.kind == "NAME":
            parts = [token.value]
            while self._peek().kind == "NAME":
                parts.append(self._advance().value)
            return ast.Identifier(" ".join(parts))
        if token.kind == "OP" and token.value == "-":
            inner = self._parse_operand()
            if isinstance(inner, ast.LiteralNode) and isinstance(
                inner.value, (int, float)
            ):
                return ast.LiteralNode(-inner.value)
            raise ConditionError("unary '-' applies only to numeric literals")
        raise ConditionError(
            f"unexpected token {token.value!r} at position {token.position} "
            f"in condition {self._text!r}"
        )


def parse_condition(text: str) -> ast.ConditionNode:
    """Parse a condition expression into its AST."""
    if not text or not text.strip():
        raise ConditionError("empty condition expression")
    return _Parser(tokenize(text), text).parse()
