"""Unparser: render a condition AST back to its surface syntax.

``unparse(parse_condition(text))`` is semantically identical to
``text`` (and re-parses to an equal AST) — the property test suite
relies on this round-trip.  Used by tooling that rewrites conditions
(e.g. the threshold-exploration helpers) and by error messages.
"""

from __future__ import annotations

from repro.process.conditions import ast

_PRECEDENCE = {
    ast.OrNode: 1,
    ast.AndNode: 2,
    ast.NotNode: 3,
}


def _atom(node: ast.ConditionNode) -> str:
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, ast.LiteralNode):
        if node.qname:
            return node.qname
        value = node.value
        if value is None:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(value)
    return unparse(node)


def unparse(node: ast.ConditionNode, parent_precedence: int = 0) -> str:
    """Render a condition AST as parseable text."""
    if isinstance(node, (ast.Identifier, ast.LiteralNode)):
        return _atom(node)
    if isinstance(node, ast.Comparison):
        return f"{_atom(node.left)} {node.op} {_atom(node.right)}"
    if isinstance(node, ast.Membership):
        members = ", ".join(_atom(member) for member in node.members)
        keyword = "not in" if node.negated else "in"
        return f"{_atom(node.operand)} {keyword} {{ {members} }}"
    if isinstance(node, ast.NullCheck):
        keyword = "is not null" if node.negated else "is null"
        return f"{_atom(node.operand)} {keyword}"
    if isinstance(node, ast.NotNode):
        inner = unparse(node.operand, _PRECEDENCE[ast.NotNode])
        if isinstance(node.operand, (ast.AndNode, ast.OrNode)):
            inner = f"({inner})"
        return f"not {inner}"
    if isinstance(node, (ast.AndNode, ast.OrNode)):
        keyword = "and" if isinstance(node, ast.AndNode) else "or"
        my_precedence = _PRECEDENCE[type(node)]
        left = unparse(node.left, my_precedence)
        right = unparse(node.right, my_precedence)
        if _needs_parens(node.left, my_precedence):
            left = f"({left})"
        # the grammar is left-associative; a same-precedence right child
        # must be parenthesised to survive the round trip
        if _needs_parens(node.right, my_precedence, right_child=True):
            right = f"({right})"
        text = f"{left} {keyword} {right}"
        if parent_precedence > my_precedence:
            return text  # parent adds parens via _needs_parens
        return text
    raise TypeError(f"cannot unparse condition node {node!r}")


def _needs_parens(
    child: ast.ConditionNode, parent_precedence: int, right_child: bool = False
) -> bool:
    child_precedence = _PRECEDENCE.get(type(child))
    if child_precedence is None:
        return False
    if child_precedence < parent_precedence:
        return True
    if right_child and child_precedence == parent_precedence:
        return True
    return False
