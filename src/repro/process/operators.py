"""The four abstract quality-operator types (paper Sec. 4.1, Fig. 4).

* **Annotation** — computes new evidence values via an annotation
  function and stores them in a repository.  Domain- *and* data-specific.
* **Data Enrichment** — fetches pre-computed annotations from
  repositories by (data item, evidence type) key.  Pre-defined, not
  user-extensible.
* **Quality Assertion** — a decision model assigning a class or score to
  each item of a collection based on its evidence vector.  User-defined
  and domain-specific but *not* data-specific: applicable to any data
  set annotatable with the input evidence types.
* **Action** — evaluates boolean conditions over evidence and QA values
  and routes data items accordingly (see ``actions.py``).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.annotation.functions import AnnotationFunction
from repro.annotation.map import AnnotationMap
from repro.annotation.store import AnnotationStore
from repro.rdf import URIRef


class Operator(abc.ABC):
    """Common base: every operator has a name for workflow wiring."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class AnnotationOperator(Operator):
    """Computes evidence for the input items and persists it.

    ``variables`` lists the evidence types this operator provides into
    ``store`` (the quality view's ``<variables repositoryRef=...>``
    block); ``persistent=False`` marks annotations valid only for one
    process execution.
    """

    def __init__(
        self,
        name: str,
        function: AnnotationFunction,
        store: AnnotationStore,
        evidence_types: Sequence[URIRef],
        persistent: bool = True,
        data_class: Optional[URIRef] = None,
    ) -> None:
        super().__init__(name)
        self.function = function
        self.store = store
        self.evidence_types = list(evidence_types)
        self.persistent = persistent
        self.data_class = data_class

    @property
    def function_class(self) -> URIRef:
        """The IQ-model class of the wrapped annotation function."""

        return self.function.function_class

    def execute(
        self,
        items: List[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Run the operator; see the class docstring for semantics."""

        return self.function.annotate_into(
            self.store,
            items,
            set(self.evidence_types),
            context=context,
            data_class=self.data_class,
        )


class DataEnrichmentOperator(Operator):
    """Reads annotations from repositories into one annotation map.

    Configured by the QV compiler with the association between each
    evidence type and the repository holding its values (paper
    Sec. 6.1): a single DE operator serves all downstream QAs.
    """

    def __init__(
        self,
        name: str,
        sources: Mapping[URIRef, AnnotationStore],
    ) -> None:
        super().__init__(name)
        self.sources = dict(sources)

    def evidence_types(self) -> Set[URIRef]:
        """The evidence types this operator reads."""

        return set(self.sources)

    def execute(self, items: List[URIRef]) -> AnnotationMap:
        """Run the operator; see the class docstring for semantics."""

        amap = AnnotationMap(items)
        by_store: Dict[AnnotationStore, List[URIRef]] = {}
        for evidence_type, store in self.sources.items():
            by_store.setdefault(store, []).append(evidence_type)
        for store, types in by_store.items():
            store.enrich(amap, items, types)
        return amap


class QualityAssertionOperator(Operator):
    """Base for quality assertions: collection-level decision models.

    Concrete QAs implement :meth:`compute`, receiving the evidence
    vectors for the whole collection at once — the paper's QAs classify
    relative to the collection (e.g. thresholds at avg ± stddev of the
    score distribution), so per-item evaluation would be wrong.

    ``variables`` maps local variable names to evidence-type URIs, as
    declared in the quality view (``<var variableName="coverage"
    evidence="q:coverage"/>``).
    """

    def __init__(
        self,
        name: str,
        assertion_class: URIRef,
        tag_name: str,
        tag_syn_type: Optional[URIRef] = None,
        tag_sem_type: Optional[URIRef] = None,
        variables: Optional[Mapping[str, URIRef]] = None,
    ) -> None:
        super().__init__(name)
        self.assertion_class = assertion_class
        self.tag_name = tag_name
        self.tag_syn_type = tag_syn_type
        self.tag_sem_type = tag_sem_type
        self.variables = dict(variables or {})

    def evidence_vector(
        self, amap: AnnotationMap, item: URIRef
    ) -> Dict[str, Any]:
        """The named evidence values for one item (None when missing)."""
        vector: Dict[str, Any] = {}
        for variable_name, evidence_type in self.variables.items():
            value = amap.get_evidence(item, evidence_type)
            from repro.rdf import Literal

            if isinstance(value, Literal):
                value = value.value
            vector[variable_name] = value
        return vector

    @abc.abstractmethod
    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Tag values (score, class URI, ...) for each item, in order."""

    def execute(self, amap: AnnotationMap) -> AnnotationMap:
        """Compute the assertion and add its tags to (a copy of) the map.

        Per the paper, a QA "computes a new version of its input map,
        augmented with new mappings for the class assignment".
        """
        items = amap.items()
        vectors = [self.evidence_vector(amap, item) for item in items]
        values = self.compute(items, vectors)
        if len(values) != len(items):
            raise ValueError(
                f"quality assertion {self.name!r} returned {len(values)} "
                f"values for {len(items)} items"
            )
        result = amap.copy()
        for item, value in zip(items, values):
            if value is None:
                continue
            result.set_tag(
                item,
                self.tag_name,
                value,
                syn_type=self.tag_syn_type,
                sem_type=self.tag_sem_type,
            )
        return result


class ActionOperator(Operator):
    """Base for actions; concrete splitter/filter live in ``actions.py``."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    @abc.abstractmethod
    def execute(
        self,
        items: List[URIRef],
        amap: AnnotationMap,
        variable_bindings: Optional[Mapping[str, URIRef]] = None,
    ):
        """Route items into groups; see ``actions.ActionOutcome``."""
