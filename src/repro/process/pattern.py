"""The generic quality-process pattern (paper Fig. 3), directly runnable.

A process executes in the three steps of Sec. 4: (i) collect quality
evidence — running annotation operators and then a data-enrichment read;
(ii) compute the QA functions over the collected evidence; (iii)
evaluate conditions and execute actions.  Quality views compile to the
same operators embedded in a workflow; this class is the stand-alone
interpreter used for rapid prototyping and by the test-suite oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.annotation.map import AnnotationMap
from repro.process.actions import ActionOutcome
from repro.process.operators import (
    ActionOperator,
    AnnotationOperator,
    DataEnrichmentOperator,
    QualityAssertionOperator,
)
from repro.rdf import URIRef


@dataclass
class ProcessResult:
    """Everything one quality-process execution produced."""

    items: List[URIRef]
    consolidated: AnnotationMap
    outcomes: Dict[str, ActionOutcome] = field(default_factory=dict)

    def surviving(self, action: Optional[str] = None) -> List[URIRef]:
        """Items retained by an action (default: the last one)."""
        if not self.outcomes:
            return list(self.items)
        if action is None:
            action = next(reversed(self.outcomes))
        return self.outcomes[action].surviving()


class QualityProcess:
    """An executable instance of the general quality-process pattern."""

    def __init__(
        self,
        name: str,
        annotators: Sequence[AnnotationOperator] = (),
        enrichment: Optional[DataEnrichmentOperator] = None,
        assertions: Sequence[QualityAssertionOperator] = (),
        actions: Sequence[ActionOperator] = (),
        extra_bindings: Optional[Mapping[str, URIRef]] = None,
    ) -> None:
        self.name = name
        self.annotators = list(annotators)
        self.enrichment = enrichment
        self.assertions = list(assertions)
        self.actions = list(actions)
        #: Additional condition-visible names (annotator-declared
        #: evidence variables); QA bindings win on clashes.
        self.extra_bindings = dict(extra_bindings or {})

    def variable_bindings(self) -> Dict[str, URIRef]:
        """All variable-name -> evidence-type bindings conditions see."""
        bindings: Dict[str, URIRef] = dict(self.extra_bindings)
        for assertion in self.assertions:
            bindings.update(assertion.variables)
        return bindings

    def consolidate(self, maps: Sequence[AnnotationMap]) -> AnnotationMap:
        """Merge the per-QA output maps (the ConsolidateAssertions step)."""
        merged = AnnotationMap()
        for amap in maps:
            merged.merge(amap)
        return merged

    def execute(
        self,
        items: Sequence[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> ProcessResult:
        """Run annotate -> enrich -> assert -> act over the items."""

        items = list(items)
        # (i) collect evidence: annotate, then enrich from repositories.
        for annotator in self.annotators:
            annotator.execute(items, context)
        if self.enrichment is not None:
            evidence = self.enrichment.execute(items)
        else:
            evidence = AnnotationMap(items)
        # (ii) compute the QA functions.
        qa_outputs = [assertion.execute(evidence) for assertion in self.assertions]
        consolidated = self.consolidate(qa_outputs) if qa_outputs else evidence
        # (iii) evaluate conditions, execute actions.
        result = ProcessResult(items=items, consolidated=consolidated)
        bindings = self.variable_bindings()
        for action in self.actions:
            result.outcomes[action.name] = action.execute(
                items, consolidated, bindings
            )
        return result

    def __repr__(self) -> str:
        return (
            f"<QualityProcess {self.name!r}: {len(self.annotators)} annotators, "
            f"{len(self.assertions)} assertions, {len(self.actions)} actions>"
        )
