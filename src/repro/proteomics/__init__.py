"""Synthetic proteomics substrate (paper Secs. 1.1, 6.3).

The paper's experiment runs on real mass-spectrometry data, the
in-house *Imprint* PMF tool, and the public PEDRo / GOA / Uniprot / GO
databases.  None of those are available offline, so this package builds
behaviourally faithful equivalents from first principles:

* amino-acid monoisotopic masses and tryptic digestion;
* a seeded reference proteome generator;
* a mass-spectrometer simulator emitting peak lists with measurement
  error, dropped peptides, noise and contaminant peaks;
* an Imprint-like PMF search engine computing ranked identifications
  with the Stead et al. quality indicators (Hit Ratio, Mass Coverage,
  ELDP, matched masses, peptide counts);
* GO / GOA / Uniprot / PEDRo database substitutes;
* the ISPIDER analysis workflow of the paper's Figure 1.

Every generator is seed-deterministic, so experiments reproduce
bit-for-bit.
"""

from repro.proteomics.masses import peptide_mass, WATER_MONO
from repro.proteomics.proteins import (
    Protein,
    ReferenceDatabase,
    generate_reference_database,
)
from repro.proteomics.digest import Peptide, tryptic_digest
from repro.proteomics.spectrometer import (
    MassSpectrometer,
    PeakList,
    SpectrometerSettings,
)
from repro.proteomics.imprint import Imprint, ImprintHit, ImprintRun, ImprintSettings
from repro.proteomics.go import GeneOntology, GOTerm, generate_gene_ontology
from repro.proteomics.goa import GOAnnotation, GOADatabase, generate_goa
from repro.proteomics.uniprot import UniprotDatabase, UniprotEntry, generate_uniprot
from repro.proteomics.pedro import PedroRepository, Sample
from repro.proteomics.scenario import ProteomicsScenario

__all__ = [
    "GOADatabase",
    "GOAnnotation",
    "GOTerm",
    "GeneOntology",
    "Imprint",
    "ImprintHit",
    "ImprintRun",
    "ImprintSettings",
    "MassSpectrometer",
    "PeakList",
    "PedroRepository",
    "Peptide",
    "Protein",
    "ProteomicsScenario",
    "ReferenceDatabase",
    "Sample",
    "SpectrometerSettings",
    "UniprotDatabase",
    "UniprotEntry",
    "WATER_MONO",
    "generate_gene_ontology",
    "generate_goa",
    "generate_reference_database",
    "generate_uniprot",
    "peptide_mass",
    "tryptic_digest",
]
