"""Functional-annotation analysis: the scientist's downstream toolkit.

Paper Sec. 1.1: after GO retrieval "the scientist proceeds to determine
the most likely protein functions, perhaps making a pareto chart of the
functional annotations by frequency of occurrence"; Sec. 6.3 then ranks
terms by the with/without-filtering *significance ratio*.  This module
implements both analyses plus a hypergeometric enrichment test, so the
full Figure-7 pipeline is a library call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ParetoRow:
    """One bar of a pareto chart."""

    term: str
    count: int
    share: float
    cumulative_share: float


def pareto(frequencies: Mapping[str, int]) -> List[ParetoRow]:
    """Frequency-ranked rows with cumulative shares (ties by term id)."""
    total = sum(frequencies.values())
    if total == 0:
        return []
    rows: List[ParetoRow] = []
    cumulative = 0
    for term, count in sorted(
        frequencies.items(), key=lambda pair: (-pair[1], pair[0])
    ):
        cumulative += count
        rows.append(
            ParetoRow(
                term=term,
                count=count,
                share=count / total,
                cumulative_share=cumulative / total,
            )
        )
    return rows


@dataclass(frozen=True)
class SignificanceRow:
    """One GO term's with/without-filtering comparison (Fig. 7)."""

    term: str
    raw_count: int
    kept_count: int

    @property
    def ratio(self) -> float:
        """kept/raw occurrence ratio (0 when raw is 0)."""

        return self.kept_count / self.raw_count if self.raw_count else 0.0


def significance_ratio(
    raw: Mapping[str, int], kept: Mapping[str, int]
) -> List[SignificanceRow]:
    """Fig. 7's ranking: terms by kept/raw occurrence ratio, descending.

    Terms only present in ``kept`` are ignored (they cannot appear: the
    quality view filters a subset of the raw identifications).
    """
    rows = [
        SignificanceRow(term, count, kept.get(term, 0))
        for term, count in raw.items()
    ]
    return sorted(rows, key=lambda r: (-r.ratio, -r.kept_count, r.term))


def rank_displacement(
    raw: Mapping[str, int], kept: Mapping[str, int]
) -> Dict[str, int]:
    """How far each term moved between frequency rank and ratio rank.

    Positive = promoted by quality filtering (the paper's GO term that
    occurred 6 times and ranked first); negative = demoted.
    """
    frequency_order = [row.term for row in pareto(dict(raw))]
    ratio_order = [row.term for row in significance_ratio(raw, kept)]
    frequency_rank = {term: i for i, term in enumerate(frequency_order)}
    return {
        term: frequency_rank[term] - i
        for i, term in enumerate(ratio_order)
    }


def _log_choose(n: int, k: int) -> float:
    if k < 0 or k > n:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def hypergeometric_pvalue(
    population: int, successes: int, draws: int, observed: int
) -> float:
    """P(X >= observed) for X ~ Hypergeometric(population, successes, draws).

    The standard GO-term over-representation test: ``population`` = all
    annotation occurrences, ``successes`` = occurrences of the term,
    ``draws`` = occurrences in the filtered set, ``observed`` = the
    term's occurrences in the filtered set.
    """
    if not 0 <= successes <= population:
        raise ValueError("need 0 <= successes <= population")
    if not 0 <= draws <= population:
        raise ValueError("need 0 <= draws <= population")
    if observed < 0:
        raise ValueError("observed must be >= 0")
    upper = min(successes, draws)
    if observed > upper:
        return 0.0
    log_denominator = _log_choose(population, draws)
    total = 0.0
    for k in range(observed, upper + 1):
        log_p = (
            _log_choose(successes, k)
            + _log_choose(population - successes, draws - k)
            - log_denominator
        )
        total += math.exp(log_p)
    return min(1.0, total)


@dataclass(frozen=True)
class EnrichmentRow:
    """One over-represented term with its p-value."""

    term: str
    raw_count: int
    kept_count: int
    p_value: float


def enrichment(
    raw: Mapping[str, int],
    kept: Mapping[str, int],
    alpha: float = 0.05,
) -> List[EnrichmentRow]:
    """Terms over-represented in the quality-filtered output.

    Returns rows with p < ``alpha`` (one-sided hypergeometric),
    ordered by p-value — a statistically grounded version of the
    paper's ratio ranking.
    """
    population = sum(raw.values())
    draws = sum(kept.values())
    rows: List[EnrichmentRow] = []
    for term, raw_count in raw.items():
        kept_count = kept.get(term, 0)
        if kept_count == 0:
            continue
        p_value = hypergeometric_pvalue(
            population, raw_count, draws, kept_count
        )
        if p_value < alpha:
            rows.append(EnrichmentRow(term, raw_count, kept_count, p_value))
    return sorted(rows, key=lambda r: (r.p_value, r.term))
