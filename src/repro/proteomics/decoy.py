"""Decoy-database searching and false-discovery-rate estimation.

A standard proteomics technique (target-decoy searching): search the
peak list against a *decoy* database of reversed sequences; any decoy
hit is a guaranteed false positive, so the rate of decoy hits above a
score threshold estimates the false-discovery rate (FDR) among target
hits at that threshold.

In Qurator terms this is one more *quality evidence* source: the
per-hit ``q:DecoyFDR`` value a quality view can filter on exactly like
Hit Ratio — demonstrating the user-extensible evidence model on a
technique the paper's successors adopted widely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set

from repro.annotation.functions import AnnotationFunction
from repro.annotation.map import AnnotationMap
from repro.proteomics.imprint import Imprint, ImprintRun, ImprintSettings
from repro.proteomics.proteins import Protein, ReferenceDatabase
from repro.proteomics.results import ImprintResultSet
from repro.rdf import Q, URIRef

#: The IQ-model evidence class for decoy-estimated FDR values.
DECOY_FDR = Q.DecoyFDR


def decoy_database(database: ReferenceDatabase) -> ReferenceDatabase:
    """The reversed-sequence decoy of a reference database.

    Accessions are prefixed ``DECOY_`` so hits are distinguishable;
    sequence reversal preserves amino-acid composition and length
    distribution, the properties random matching depends on.
    """
    decoys = ReferenceDatabase(f"decoy-{database.name}")
    for protein in database:
        decoys.add(
            Protein(
                accession=f"DECOY_{protein.accession}",
                name=f"Decoy of {protein.name}",
                sequence=protein.sequence[::-1],
                organism=protein.organism,
            )
        )
    return decoys


@dataclass(frozen=True)
class FDREstimate:
    """FDR at one score threshold."""

    threshold: float
    target_hits: int
    decoy_hits: int

    @property
    def fdr(self) -> float:
        """decoy hits / target hits at this threshold, capped at 1."""

        if self.target_hits == 0:
            return 0.0
        return min(1.0, self.decoy_hits / self.target_hits)


def estimate_fdr(
    target_run: ImprintRun, decoy_run: ImprintRun, threshold: float
) -> FDREstimate:
    """Target-decoy FDR at a score threshold."""
    target_hits = sum(1 for hit in target_run.hits if hit.score >= threshold)
    decoy_hits = sum(1 for hit in decoy_run.hits if hit.score >= threshold)
    return FDREstimate(threshold, target_hits, decoy_hits)


def hit_level_fdr(target_run: ImprintRun, decoy_run: ImprintRun) -> Dict[int, float]:
    """Per-hit q-values: for each target hit (by rank), the minimum FDR
    over all thresholds that still accept it.

    Raw threshold FDR is not monotone down the ranked list; the
    standard q-value correction takes the running minimum from the
    bottom, so accepting a hit never implies a better-scoring hit has a
    worse error estimate.
    """
    ranks = [hit.rank for hit in target_run.hits]
    raw = [
        estimate_fdr(target_run, decoy_run, hit.score).fdr
        for hit in target_run.hits
    ]
    q_values: Dict[int, float] = {}
    running = 1.0
    for rank, value in zip(reversed(ranks), reversed(raw)):
        running = min(running, value)
        q_values[rank] = running
    return q_values


class DecoySearcher:
    """Pairs every target identification with its decoy search."""

    def __init__(
        self,
        database: ReferenceDatabase,
        settings: Optional[ImprintSettings] = None,
    ) -> None:
        self.settings = settings if settings is not None else ImprintSettings()
        self.decoy_engine = Imprint(decoy_database(database), self.settings)

    def fdr_for_run(self, target_run: ImprintRun, peaks) -> Dict[int, float]:
        """Per-rank q-values for one target run."""

        decoy_run = self.decoy_engine.identify(
            peaks, run_id=f"decoy-{target_run.run_id}"
        )
        return hit_level_fdr(target_run, decoy_run)


class DecoyFDRAnnotator(AnnotationFunction):
    """Annotates Imprint hit entries with their target-decoy FDR.

    Construct with the result set and a mapping run-id -> per-rank FDR
    (from :class:`DecoySearcher`).
    """

    function_class = Q.DecoyFDRAnnotation
    provides = frozenset({DECOY_FDR})

    def __init__(
        self,
        results: ImprintResultSet,
        fdr_by_run: Mapping[str, Mapping[int, float]],
    ) -> None:
        self.results = results
        self.fdr_by_run = {k: dict(v) for k, v in fdr_by_run.items()}

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Attach the q-value of each hit as q:DecoyFDR evidence."""

        amap = AnnotationMap()
        for item in items:
            amap.add_item(item)
            if DECOY_FDR not in evidence_types or item not in self.results:
                continue
            reference = self.results.reference(item)
            per_rank = self.fdr_by_run.get(reference.run_id)
            if per_rank is None:
                continue
            fdr = per_rank.get(reference.hit.rank)
            if fdr is not None:
                amap.set_evidence(item, DECOY_FDR, fdr)
        return amap


def declare_decoy_evidence(iq_model) -> None:
    """Register the decoy-FDR evidence and annotation-function classes
    in an IQ model (the user-extension path of Sec. 3)."""
    if not iq_model.is_evidence_type(DECOY_FDR):
        iq_model.declare_evidence_type(
            DECOY_FDR, label="Target-decoy false discovery rate"
        )
    if not iq_model.is_annotation_function(Q.DecoyFDRAnnotation):
        iq_model.ontology.add_class(
            Q.DecoyFDRAnnotation,
            (iq_model.AnnotationFunction,),
            "Decoy FDR Annotation",
        )
