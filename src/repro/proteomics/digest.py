"""In-silico tryptic digestion.

Trypsin cleaves C-terminal to lysine (K) or arginine (R), except when
the next residue is proline.  ``tryptic_digest`` enumerates peptides
with up to ``missed_cleavages`` internal cleavage sites retained — the
distinction between *limit* peptides (0 missed cleavages) and partials
underlies the ELDP quality indicator of Stead et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.proteomics.masses import peptide_mass, validate_sequence


@dataclass(frozen=True)
class Peptide:
    """A digestion product with its position and cleavage state."""

    sequence: str
    start: int  # 0-based offset in the parent protein
    end: int  # exclusive
    missed_cleavages: int

    @property
    def mass(self) -> float:
        """The peptide's neutral monoisotopic mass."""

        return peptide_mass(self.sequence)

    @property
    def is_limit(self) -> bool:
        """Limit-digested: no internal missed cleavage sites."""
        return self.missed_cleavages == 0

    def __len__(self) -> int:
        return len(self.sequence)


def cleavage_sites(sequence: str) -> List[int]:
    """Positions *after* which trypsin cleaves (K/R not followed by P)."""
    sites = []
    for index in range(len(sequence) - 1):
        if sequence[index] in "KR" and sequence[index + 1] != "P":
            sites.append(index + 1)
    return sites


def tryptic_digest(
    sequence: str,
    missed_cleavages: int = 1,
    min_length: int = 5,
    max_length: int = 50,
) -> List[Peptide]:
    """All tryptic peptides of a protein within the length window.

    Peptides are returned in order of their start position, limit
    peptides before partials at the same position.
    """
    if missed_cleavages < 0:
        raise ValueError("missed_cleavages must be >= 0")
    sequence = validate_sequence(sequence)
    if not sequence:
        return []
    boundaries = [0] + cleavage_sites(sequence) + [len(sequence)]
    # Drop a duplicated final boundary when the protein ends in K/R.
    deduped = []
    for boundary in boundaries:
        if not deduped or boundary != deduped[-1]:
            deduped.append(boundary)
    boundaries = deduped
    peptides: List[Peptide] = []
    n_fragments = len(boundaries) - 1
    for first in range(n_fragments):
        for missed in range(missed_cleavages + 1):
            last = first + missed
            if last >= n_fragments:
                break
            start, end = boundaries[first], boundaries[last + 1]
            fragment = sequence[start:end]
            if min_length <= len(fragment) <= max_length:
                peptides.append(
                    Peptide(
                        sequence=fragment,
                        start=start,
                        end=end,
                        missed_cleavages=missed,
                    )
                )
    return peptides


def limit_peptides(peptides: List[Peptide]) -> List[Peptide]:
    """The fully-cleaved (0 missed cleavages) peptides."""

    return [p for p in peptides if p.is_limit]


def partial_peptides(peptides: List[Peptide]) -> List[Peptide]:
    """The peptides containing missed cleavage sites."""

    return [p for p in peptides if not p.is_limit]
