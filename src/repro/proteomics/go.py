"""A Gene Ontology substitute: GO terms in a seeded DAG.

GO terms describe molecular function in a controlled vocabulary (paper
Sec. 1.1).  The generator builds a rooted DAG with Zipf-skewed
popularity weights, so downstream GOA annotations show the realistic
pattern: a few very common functions, a long tail of specific ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set


@dataclass(frozen=True)
class GOTerm:
    """One GO vocabulary entry."""

    term_id: str  # canonical "GO:NNNNNNN" form
    name: str
    namespace: str = "molecular_function"
    parents: tuple = ()

    def __post_init__(self) -> None:
        if not self.term_id.startswith("GO:"):
            raise ValueError(f"GO ids start with 'GO:', got {self.term_id!r}")


_FUNCTION_STEMS = (
    "kinase activity",
    "phosphatase activity",
    "ATP binding",
    "DNA binding",
    "RNA binding",
    "receptor activity",
    "transporter activity",
    "oxidoreductase activity",
    "hydrolase activity",
    "transferase activity",
    "ligase activity",
    "isomerase activity",
    "structural molecule activity",
    "signal transducer activity",
    "metal ion binding",
    "protein binding",
    "catalytic activity",
    "transcription factor activity",
    "chaperone activity",
    "peptidase activity",
)


class GeneOntology:
    """The GO term DAG with ancestor/descendant queries."""

    ROOT_ID = "GO:0003674"  # molecular_function

    def __init__(self) -> None:
        self._terms: Dict[str, GOTerm] = {}
        self.add(GOTerm(self.ROOT_ID, "molecular_function"))

    def add(self, term: GOTerm) -> None:
        """Add a term; parents must already exist."""
        if term.term_id in self._terms:
            raise ValueError(f"duplicate GO term {term.term_id!r}")
        for parent in term.parents:
            if parent not in self._terms:
                raise ValueError(
                    f"term {term.term_id} references unknown parent {parent!r}"
                )
        self._terms[term.term_id] = term

    def get(self, term_id: str) -> GOTerm:
        """The term by id; KeyError for unknown ids."""
        try:
            return self._terms[term_id]
        except KeyError:
            raise KeyError(f"unknown GO term {term_id!r}") from None

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[GOTerm]:
        return iter(self._terms.values())

    def term_ids(self) -> List[str]:
        """Every term id, root first."""
        return list(self._terms)

    def ancestors(self, term_id: str) -> Set[str]:
        """Transitive parents (excluding the term itself)."""
        result: Set[str] = set()
        stack = list(self.get(term_id).parents)
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self.get(current).parents)
        return result

    def descendants(self, term_id: str) -> Set[str]:
        """Transitive children of a term."""

        self.get(term_id)
        children: Dict[str, Set[str]] = {}
        for term in self._terms.values():
            for parent in term.parents:
                children.setdefault(parent, set()).add(term.term_id)
        result: Set[str] = set()
        stack = [term_id]
        while stack:
            current = stack.pop()
            for child in children.get(current, ()):
                if child not in result:
                    result.add(child)
                    stack.append(child)
        return result

    def depth(self, term_id: str) -> int:
        """Shortest path length to the root."""
        if term_id == self.ROOT_ID:
            return 0
        frontier = {term_id}
        depth = 0
        while frontier:
            depth += 1
            next_frontier: Set[str] = set()
            for current in frontier:
                for parent in self.get(current).parents:
                    if parent == self.ROOT_ID:
                        return depth
                    next_frontier.add(parent)
            frontier = next_frontier
        raise ValueError(f"term {term_id} is disconnected from the root")


def make_go_id(index: int) -> str:
    """Format a synthetic GO id (GO:NNNNNNN)."""
    return f"GO:{index:07d}"


def generate_gene_ontology(
    n_terms: int = 120, seed: int = 13, max_parents: int = 2
) -> GeneOntology:
    """A seeded molecular-function DAG of ``n_terms`` terms."""
    if n_terms < 1:
        raise ValueError("n_terms must be >= 1")
    rng = random.Random(seed)
    ontology = GeneOntology()
    created: List[str] = [GeneOntology.ROOT_ID]
    for index in range(1, n_terms + 1):
        term_id = make_go_id(index)
        n_parents = 1 if len(created) == 1 else rng.randint(1, max_parents)
        parents = tuple(
            sorted(rng.sample(created, min(n_parents, len(created))))
        )
        stem = _FUNCTION_STEMS[(index - 1) % len(_FUNCTION_STEMS)]
        qualifier = (index - 1) // len(_FUNCTION_STEMS)
        name = stem if qualifier == 0 else f"{stem} (variant {qualifier})"
        ontology.add(
            GOTerm(term_id, name, namespace="molecular_function", parents=parents)
        )
        created.append(term_id)
    return ontology
