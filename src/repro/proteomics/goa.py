"""A GOA database substitute: protein accession -> GO annotations.

The GOA database "links protein accession numbers with terms describing
molecular function" (paper Sec. 1.1).  Each annotation carries an
evidence code, the readily-available reliability indicator studied by
Lord et al. and cited by the paper as quality evidence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.proteomics.go import GeneOntology
from repro.proteomics.proteins import ReferenceDatabase

#: GO evidence codes with a conventional reliability ordering:
#: experimental codes (IDA, IMP) are the most reliable; electronically
#: inferred annotations (IEA) the least.
EVIDENCE_CODE_RELIABILITY: Dict[str, int] = {
    "IDA": 5,  # inferred from direct assay
    "IMP": 5,  # inferred from mutant phenotype
    "TAS": 4,  # traceable author statement
    "IPI": 3,  # inferred from physical interaction
    "ISS": 2,  # inferred from sequence similarity
    "NAS": 2,  # non-traceable author statement
    "IEA": 1,  # inferred from electronic annotation
}


@dataclass(frozen=True)
class GOAnnotation:
    """One functional annotation of one protein."""

    accession: str
    term_id: str
    evidence_code: str

    def reliability(self) -> int:
        """The conventional reliability rank of the evidence code."""
        return EVIDENCE_CODE_RELIABILITY.get(self.evidence_code, 0)


class GOADatabase:
    """Accession-keyed functional annotations."""

    def __init__(self) -> None:
        self._by_accession: Dict[str, List[GOAnnotation]] = {}

    def add(self, annotation: GOAnnotation) -> None:
        """Record one functional annotation."""
        self._by_accession.setdefault(annotation.accession, []).append(annotation)

    def annotations_of(self, accession: str) -> List[GOAnnotation]:
        """All annotations of one accession."""
        return list(self._by_accession.get(accession, []))

    def terms_of(self, accession: str) -> List[str]:
        """GO term ids for one accession (with multiplicity preserved)."""
        return [a.term_id for a in self._by_accession.get(accession, [])]

    def accessions(self) -> List[str]:
        """Every annotated accession."""
        return list(self._by_accession)

    def __contains__(self, accession: str) -> bool:
        return accession in self._by_accession

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_accession.values())

    def __iter__(self) -> Iterator[GOAnnotation]:
        for annotations in self._by_accession.values():
            yield from annotations


def generate_goa(
    database: ReferenceDatabase,
    ontology: GeneOntology,
    seed: int = 17,
    min_terms: int = 2,
    max_terms: int = 6,
    zipf_exponent: float = 1.1,
) -> GOADatabase:
    """Annotate every reference protein with GO terms.

    Term popularity is Zipf-distributed over the ontology (excluding the
    root), and evidence codes skew towards electronic annotations, both
    mirroring the real GOA profile.
    """
    if min_terms < 1 or max_terms < min_terms:
        raise ValueError("need 1 <= min_terms <= max_terms")
    rng = random.Random(seed)
    term_ids = [t for t in ontology.term_ids() if t != ontology.ROOT_ID]
    if not term_ids:
        raise ValueError("the ontology has no terms besides the root")
    weights = [1.0 / (rank ** zipf_exponent) for rank in range(1, len(term_ids) + 1)]
    codes = list(EVIDENCE_CODE_RELIABILITY)
    # Realistic skew: most GOA annotations are IEA.
    code_weights = [1.0, 1.0, 1.5, 1.0, 2.0, 1.0, 6.0]
    goa = GOADatabase()
    for protein in database:
        n_terms = rng.randint(min_terms, max_terms)
        chosen: List[str] = []
        while len(chosen) < n_terms:
            term = rng.choices(term_ids, weights=weights, k=1)[0]
            if term not in chosen:
                chosen.append(term)
        for term in chosen:
            code = rng.choices(codes, weights=code_weights, k=1)[0]
            goa.add(GOAnnotation(protein.accession, term, code))
    return goa
