"""An Imprint-like protein mass fingerprinting search engine.

Reproduces the behaviour of the paper's in-house *Imprint* tool (and of
public tools such as MASCOT [Perkins et al. 1999]): given a peak list,
search a reference protein database and report a ranked list of
candidate identifications, each with a probability-based score and the
quality indicators the Qurator quality views consume — Hit Ratio, Mass
Coverage, matched masses, peptide counts and ELDP (Stead et al.,
"Universal metrics for quality assessment of protein identifications").

Indicator definitions:

* **Hit Ratio (HR)** = matched peaks / total peaks — a signal-to-noise
  indication for the spectrum/identification pair;
* **Mass Coverage (MC)** = residues covered by matched peptides /
  protein length — the amount of protein sequence matched;
* **ELDP** = matched limit-digested peptides − matched partials — the
  excess of limit-digested peptides, high for clean digests;
* **masses** = number of distinct theoretical masses matched;
* **peptidesCount** = number of distinct peptides matched.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.proteomics.digest import Peptide, tryptic_digest
from repro.proteomics.masses import mh_ion_mass
from repro.proteomics.proteins import Protein, ReferenceDatabase
from repro.proteomics.spectrometer import PeakList


@dataclass(frozen=True)
class ImprintSettings:
    """Search-engine configuration (the workflow's 'Imprint parameters')."""

    tolerance_ppm: float = 50.0
    missed_cleavages: int = 1
    max_hits: int = 10
    min_matched_peptides: int = 2
    scan_min_mass: float = 700.0
    scan_max_mass: float = 3500.0

    def __post_init__(self) -> None:
        if self.tolerance_ppm <= 0:
            raise ValueError("tolerance_ppm must be positive")
        if self.max_hits <= 0:
            raise ValueError("max_hits must be positive")


@dataclass(frozen=True)
class ImprintHit:
    """One ranked candidate identification with its quality indicators."""

    rank: int
    accession: str
    score: float
    hit_ratio: float
    mass_coverage: float
    masses: int
    peptides_count: int
    eldp: int

    def indicators(self) -> Dict[str, float]:
        """The hit's quality indicators as a plain dict."""
        return {
            "hitRatio": self.hit_ratio,
            "coverage": self.mass_coverage,
            "masses": float(self.masses),
            "peptidesCount": float(self.peptides_count),
            "eldp": float(self.eldp),
            "score": self.score,
        }


@dataclass
class ImprintRun:
    """The output of one Imprint search."""

    run_id: str
    n_peaks: int
    hits: List[ImprintHit] = field(default_factory=list)

    def top(self) -> Optional[ImprintHit]:
        """The rank-1 hit, or None for an empty run."""
        return self.hits[0] if self.hits else None

    def accessions(self) -> List[str]:
        """The hit accessions in rank order."""
        return [hit.accession for hit in self.hits]

    def __len__(self) -> int:
        return len(self.hits)


class Imprint:
    """A PMF search engine over one reference database.

    The theoretical-digest index (sorted peptide masses across the whole
    database) is built once; each identification is a sweep of binary
    searches per observed peak.
    """

    def __init__(
        self,
        database: ReferenceDatabase,
        settings: Optional[ImprintSettings] = None,
    ) -> None:
        self.database = database
        self.settings = settings if settings is not None else ImprintSettings()
        self._accessions: List[str] = []
        self._peptides: List[List[Peptide]] = []
        self._index_masses: List[float] = []
        self._index_refs: List[Tuple[int, int]] = []  # (protein idx, peptide idx)
        self._build_index()

    def _build_index(self) -> None:
        settings = self.settings
        entries: List[Tuple[float, int, int]] = []
        for protein_index, protein in enumerate(self.database):
            self._accessions.append(protein.accession)
            peptides = tryptic_digest(
                protein.sequence, missed_cleavages=settings.missed_cleavages
            )
            self._peptides.append(peptides)
            for peptide_index, peptide in enumerate(peptides):
                mass = mh_ion_mass(peptide.sequence)
                if settings.scan_min_mass <= mass <= settings.scan_max_mass:
                    entries.append((mass, protein_index, peptide_index))
        entries.sort(key=lambda e: e[0])
        self._index_masses = [e[0] for e in entries]
        self._index_refs = [(e[1], e[2]) for e in entries]
        self._mass_array = np.asarray(self._index_masses, dtype=np.float64)

    # -- matching ---------------------------------------------------------

    def _candidates(self, observed: float) -> Sequence[Tuple[int, int]]:
        tolerance = self.settings.tolerance_ppm * 1e-6
        low = observed / (1.0 + tolerance)
        high = observed / (1.0 - tolerance)
        left = bisect.bisect_left(self._index_masses, low)
        right = bisect.bisect_right(self._index_masses, high)
        return self._index_refs[left:right]

    def identify(self, peaks: PeakList, run_id: str = "run") -> ImprintRun:
        """Search the database with a peak list; return ranked hits."""
        n_peaks = len(peaks)
        run = ImprintRun(run_id=run_id, n_peaks=n_peaks)
        if n_peaks == 0:
            return run
        matched_peptides: Dict[int, Set[int]] = {}
        matched_peaks: Dict[int, Set[int]] = {}
        # Vectorised window search: one searchsorted pass locates the
        # candidate range of every peak in the theoretical-mass index.
        observed_masses = np.fromiter(
            (float(m) for m in peaks), dtype=np.float64, count=n_peaks
        )
        tolerance = self.settings.tolerance_ppm * 1e-6
        lows = np.searchsorted(
            self._mass_array, observed_masses / (1.0 + tolerance), side="left"
        )
        highs = np.searchsorted(
            self._mass_array, observed_masses / (1.0 - tolerance), side="right"
        )
        for peak_index in range(n_peaks):
            for entry in range(int(lows[peak_index]), int(highs[peak_index])):
                protein_index, peptide_index = self._index_refs[entry]
                matched_peptides.setdefault(protein_index, set()).add(peptide_index)
                matched_peaks.setdefault(protein_index, set()).add(peak_index)
        scored: List[Tuple[float, int]] = []
        for protein_index, peptide_set in matched_peptides.items():
            if len(peptide_set) < self.settings.min_matched_peptides:
                continue
            score = self._score(protein_index, peptide_set, n_peaks)
            scored.append((score, protein_index))
        scored.sort(key=lambda pair: (-pair[0], self._accessions[pair[1]]))
        for rank, (score, protein_index) in enumerate(
            scored[: self.settings.max_hits], start=1
        ):
            run.hits.append(
                self._make_hit(
                    rank,
                    score,
                    protein_index,
                    matched_peptides[protein_index],
                    matched_peaks[protein_index],
                    n_peaks,
                )
            )
        return run

    def _theoretical_count(self, protein_index: int) -> int:
        settings = self.settings
        count = 0
        for peptide in self._peptides[protein_index]:
            mass = mh_ion_mass(peptide.sequence)
            if settings.scan_min_mass <= mass <= settings.scan_max_mass:
                count += 1
        return count

    def _score(
        self, protein_index: int, peptide_set: Set[int], n_peaks: int
    ) -> float:
        """Probability-based score, -10 log10 P(>= k random matches).

        Random matching is modelled as Poisson with rate proportional to
        the number of peaks, the protein's theoretical peptide count and
        the relative tolerance window — the same idea as MASCOT's
        probability-based MOWSE scoring.
        """
        k = len(peptide_set)
        settings = self.settings
        theoretical = max(1, self._theoretical_count(protein_index))
        window = 2.0 * settings.tolerance_ppm * 1e-6
        mean_mass = 0.5 * (settings.scan_min_mass + settings.scan_max_mass)
        scan_width = settings.scan_max_mass - settings.scan_min_mass
        rate = n_peaks * theoretical * window * mean_mass / scan_width
        rate = max(rate, 1e-12)
        # Survival function of the Poisson distribution at k-1.
        log_p = _log_poisson_sf(k - 1, rate)
        return max(0.0, -10.0 * log_p / math.log(10.0))

    def _make_hit(
        self,
        rank: int,
        score: float,
        protein_index: int,
        peptide_set: Set[int],
        peak_set: Set[int],
        n_peaks: int,
    ) -> ImprintHit:
        peptides = self._peptides[protein_index]
        protein = self.database.get(self._accessions[protein_index])
        covered: Set[int] = set()
        limit = 0
        partial = 0
        for peptide_index in peptide_set:
            peptide = peptides[peptide_index]
            covered.update(range(peptide.start, peptide.end))
            if peptide.is_limit:
                limit += 1
            else:
                partial += 1
        return ImprintHit(
            rank=rank,
            accession=protein.accession,
            score=round(score, 3),
            hit_ratio=round(len(peak_set) / n_peaks, 4),
            mass_coverage=round(len(covered) / len(protein), 4),
            masses=len({round(peptides[i].mass, 2) for i in peptide_set}),
            peptides_count=len(peptide_set),
            eldp=limit - partial,
        )


def _log_poisson_sf(k: int, rate: float) -> float:
    """log of P(X > k) for X ~ Poisson(rate), numerically careful."""
    if k < 0:
        return 0.0  # P = 1
    # P(X > k) = 1 - CDF(k); compute CDF in log space via summation.
    log_terms = []
    log_factorial = 0.0
    for i in range(k + 1):
        if i > 0:
            log_factorial += math.log(i)
        log_terms.append(i * math.log(rate) - rate - log_factorial)
    log_cdf = _log_sum_exp(log_terms)
    cdf = math.exp(min(0.0, log_cdf))
    survival = max(1e-300, 1.0 - cdf)
    return math.log(survival)


def _log_sum_exp(values: List[float]) -> float:
    peak = max(values)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(v - peak) for v in values))
