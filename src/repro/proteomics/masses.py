"""Amino-acid monoisotopic masses and peptide mass calculation."""

from __future__ import annotations

from typing import Dict

#: Monoisotopic residue masses in Daltons (standard 20 amino acids).
RESIDUE_MONO: Dict[str, float] = {
    "G": 57.02146,
    "A": 71.03711,
    "S": 87.03203,
    "P": 97.05276,
    "V": 99.06841,
    "T": 101.04768,
    "C": 103.00919,
    "L": 113.08406,
    "I": 113.08406,
    "N": 114.04293,
    "D": 115.02694,
    "Q": 128.05858,
    "K": 128.09496,
    "E": 129.04259,
    "M": 131.04049,
    "H": 137.05891,
    "F": 147.06841,
    "R": 156.10111,
    "Y": 163.06333,
    "W": 186.07931,
}

#: Mass of one water molecule, added to the residue sum of any peptide.
WATER_MONO = 18.010565

#: Mass of a proton; singly-protonated [M+H]+ ions are what PMF observes.
PROTON = 1.007276

#: Approximate natural frequencies of amino acids in vertebrate proteins,
#: used by the synthetic proteome generator.
RESIDUE_FREQUENCIES: Dict[str, float] = {
    "A": 0.074,
    "R": 0.042,
    "N": 0.044,
    "D": 0.059,
    "C": 0.033,
    "E": 0.058,
    "Q": 0.037,
    "G": 0.074,
    "H": 0.029,
    "I": 0.038,
    "L": 0.076,
    "K": 0.072,
    "M": 0.018,
    "F": 0.040,
    "P": 0.050,
    "S": 0.081,
    "T": 0.062,
    "W": 0.013,
    "Y": 0.033,
    "V": 0.068,
}


class InvalidSequenceError(ValueError):
    """Raised for sequences containing non-standard residues."""


def validate_sequence(sequence: str) -> str:
    """Uppercase and validate a protein/peptide sequence."""
    sequence = sequence.upper()
    for residue in sequence:
        if residue not in RESIDUE_MONO:
            raise InvalidSequenceError(
                f"unknown amino-acid residue {residue!r} in sequence"
            )
    return sequence


def peptide_mass(sequence: str) -> float:
    """Neutral monoisotopic mass of a peptide (residues + one water)."""
    sequence = validate_sequence(sequence)
    if not sequence:
        raise InvalidSequenceError("cannot compute the mass of an empty peptide")
    return sum(RESIDUE_MONO[residue] for residue in sequence) + WATER_MONO


def mh_ion_mass(sequence: str) -> float:
    """[M+H]+ ion mass, the quantity a PMF peak list reports."""
    return peptide_mass(sequence) + PROTON


def ppm_error(observed: float, theoretical: float) -> float:
    """Relative mass error in parts-per-million."""
    return (observed - theoretical) / theoretical * 1e6


def within_tolerance(observed: float, theoretical: float, tolerance_ppm: float) -> bool:
    """Does an observed mass match a theoretical one within a ppm window?"""
    return abs(ppm_error(observed, theoretical)) <= tolerance_ppm
