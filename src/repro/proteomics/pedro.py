"""A PEDRo-like repository of experimental proteomics data.

PEDRo (Garwood et al. 2004) stores and disseminates experimental
proteomics data; the paper's experiment retrieves "the peptide masses
for 10 protein spots, extracted from a PEDRo data file".  This module
stores samples (protein spots with their acquired peak lists and lab
metadata) and can export/import the simple XML data-file format the
workflow's first step consumes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.proteomics.spectrometer import PeakList


@dataclass
class Sample:
    """One protein spot: identifier, acquisition, provenance metadata."""

    sample_id: str
    peaks: PeakList
    lab: str = "unknown"
    instrument: str = "MALDI-TOF"
    #: Ground-truth accessions (simulation only; real PEDRo has no truth).
    true_accessions: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.peaks)


class PedroRepository:
    """Sample-keyed experimental data store."""

    def __init__(self, name: str = "pedro") -> None:
        self.name = name
        self._samples: Dict[str, Sample] = {}

    def add(self, sample: Sample) -> None:
        """Store a sample; duplicate ids are rejected."""
        if sample.sample_id in self._samples:
            raise ValueError(f"duplicate sample id {sample.sample_id!r}")
        self._samples[sample.sample_id] = sample

    def get(self, sample_id: str) -> Sample:
        """The sample by id."""
        try:
            return self._samples[sample_id]
        except KeyError:
            raise KeyError(f"unknown sample {sample_id!r}") from None

    def sample_ids(self) -> List[str]:
        """Every sample id, in insertion order."""
        return list(self._samples)

    def samples(self, sample_ids: Optional[Sequence[str]] = None) -> List[Sample]:
        """Retrieve samples (all, or the requested subset, in order)."""
        if sample_ids is None:
            return list(self._samples.values())
        return [self.get(sample_id) for sample_id in sample_ids]

    def __contains__(self, sample_id: str) -> bool:
        return sample_id in self._samples

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples.values())

    # -- the PEDRo data-file format -------------------------------------------

    def to_xml(self) -> str:
        """Serialise the repository as a PEDRo-style data file."""

        root = ET.Element("pedroDataFile", {"repository": self.name})
        for sample in self._samples.values():
            element = ET.SubElement(
                root,
                "sample",
                {
                    "id": sample.sample_id,
                    "lab": sample.lab,
                    "instrument": sample.instrument,
                },
            )
            peaks = ET.SubElement(element, "peakList")
            peaks.text = " ".join(f"{mass:.5f}" for mass in sample.peaks)
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "PedroRepository":
        """Load a repository from a PEDRo-style data file."""

        root = ET.fromstring(text)
        repository = cls(root.get("repository") or "pedro")
        for element in root.findall("sample"):
            peaks_el = element.find("peakList")
            masses = []
            if peaks_el is not None and peaks_el.text:
                masses = [float(token) for token in peaks_el.text.split()]
            repository.add(
                Sample(
                    sample_id=element.get("id") or "",
                    peaks=PeakList(masses),
                    lab=element.get("lab") or "unknown",
                    instrument=element.get("instrument") or "MALDI-TOF",
                )
            )
        return repository
