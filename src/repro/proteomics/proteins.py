"""Proteins and the synthetic reference sequence database.

The reference database plays the role of the "reference protein
sequence database" Imprint searches (paper Sec. 1.1).  The generator is
seeded and samples sequences from natural amino-acid frequencies, so
tryptic peptide mass distributions behave like real proteomes (many
shared/near-isobaric peptides, which is what makes PMF identifications
uncertain in the first place).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.proteomics.masses import RESIDUE_FREQUENCIES, validate_sequence

_ORGANISMS = ("human", "mouse", "yeast", "rat", "zebrafish")


@dataclass(frozen=True)
class Protein:
    """One reference-database entry."""

    accession: str
    name: str
    sequence: str
    organism: str = "human"

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequence", validate_sequence(self.sequence))

    def __len__(self) -> int:
        return len(self.sequence)


class ReferenceDatabase:
    """An accession-keyed protein sequence database."""

    def __init__(self, name: str = "reference") -> None:
        self.name = name
        self._proteins: Dict[str, Protein] = {}

    def add(self, protein: Protein) -> None:
        """Add a protein; duplicate accessions are rejected."""
        if protein.accession in self._proteins:
            raise ValueError(f"duplicate accession {protein.accession!r}")
        self._proteins[protein.accession] = protein

    def get(self, accession: str) -> Protein:
        """The protein by accession; KeyError names the database."""
        try:
            return self._proteins[accession]
        except KeyError:
            raise KeyError(
                f"accession {accession!r} not in database {self.name!r}"
            ) from None

    def __contains__(self, accession: str) -> bool:
        return accession in self._proteins

    def __len__(self) -> int:
        return len(self._proteins)

    def __iter__(self) -> Iterator[Protein]:
        return iter(self._proteins.values())

    def accessions(self) -> List[str]:
        """All accessions, in insertion order."""
        return list(self._proteins)

    def by_organism(self, organism: str) -> List[Protein]:
        """The proteins of one organism."""
        return [p for p in self._proteins.values() if p.organism == organism]

    def __repr__(self) -> str:
        return f"<ReferenceDatabase {self.name!r}: {len(self)} proteins>"


def _random_sequence(rng: random.Random, length: int) -> str:
    residues = list(RESIDUE_FREQUENCIES)
    weights = [RESIDUE_FREQUENCIES[r] for r in residues]
    return "".join(rng.choices(residues, weights=weights, k=length))


def make_accession(index: int) -> str:
    """Uniprot-style accession numbers: P00001, P00002, ..."""
    return f"P{index:05d}"


def generate_reference_database(
    n_proteins: int = 500,
    seed: int = 7,
    min_length: int = 120,
    max_length: int = 900,
    name: str = "reference",
    organisms: Sequence[str] = _ORGANISMS,
) -> ReferenceDatabase:
    """A seeded synthetic proteome.

    Lengths are drawn log-uniformly between the bounds (real protein
    lengths are right-skewed); organisms cycle deterministically so
    per-organism subsets are non-trivial.
    """
    if n_proteins <= 0:
        raise ValueError("n_proteins must be positive")
    if min_length < 30:
        raise ValueError("proteins shorter than 30 residues digest degenerately")
    rng = random.Random(seed)
    database = ReferenceDatabase(name)
    import math

    log_min, log_max = math.log(min_length), math.log(max_length)
    for index in range(1, n_proteins + 1):
        length = int(math.exp(rng.uniform(log_min, log_max)))
        protein = Protein(
            accession=make_accession(index),
            name=f"Synthetic protein {index}",
            sequence=_random_sequence(rng, length),
            organism=organisms[(index - 1) % len(organisms)],
        )
        database.add(protein)
    return database
