"""Imprint result sets as quality-annotatable data items.

Quality views operate on data items identified by URIs (paper Sec. 3:
native identifiers are wrapped as LSIDs).  ``ImprintResultSet`` wraps a
batch of Imprint runs, minting one LSID per hit entry — an instance of
``q:ImprintHitEntry`` — and resolving back to the hit's indicators,
accession and originating run, which is exactly what the Imprint-output
annotation function needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.proteomics.imprint import ImprintHit, ImprintRun
from repro.rdf import URIRef
from repro.rdf.lsid import imprint_hit_lsid


@dataclass(frozen=True)
class HitReference:
    """Back-reference from a data item to its run and hit."""

    run_id: str
    hit: ImprintHit


class ImprintResultSet:
    """The identified-hit data set of one or more Imprint runs."""

    def __init__(self, runs: Sequence[ImprintRun]) -> None:
        self.runs = list(runs)
        self._by_item: Dict[URIRef, HitReference] = {}
        self._order: List[URIRef] = []
        for run in self.runs:
            for hit in run.hits:
                item = imprint_hit_lsid(run.run_id, hit.rank)
                self._by_item[item] = HitReference(run.run_id, hit)
                self._order.append(item)

    def items(self) -> List[URIRef]:
        """All hit-entry LSIDs, run order then rank order."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, item: object) -> bool:
        return item in self._by_item

    def __iter__(self) -> Iterator[URIRef]:
        return iter(self._order)

    def reference(self, item: URIRef) -> HitReference:
        """The (run id, hit) pair behind a data item."""
        try:
            return self._by_item[item]
        except KeyError:
            raise KeyError(f"{item} is not a hit of this result set") from None

    def hit(self, item: URIRef) -> ImprintHit:
        """The ImprintHit behind a data item."""
        return self.reference(item).hit

    def run_id(self, item: URIRef) -> str:
        """The run that produced a data item."""
        return self.reference(item).run_id

    def accession(self, item: URIRef) -> str:
        """The protein accession a data item identifies."""
        return self.reference(item).hit.accession

    def accessions(self, items: Optional[Sequence[URIRef]] = None) -> List[str]:
        """Accessions for the given items (default: all), in order."""
        selected = self._order if items is None else list(items)
        return [self.accession(item) for item in selected]

    def indicators(self, item: URIRef) -> Dict[str, float]:
        """The quality indicators of a data item's hit."""
        return self.reference(item).hit.indicators()

    def items_of_run(self, run_id: str) -> List[URIRef]:
        """The data items of one run, in rank order."""
        return [i for i in self._order if self._by_item[i].run_id == run_id]
