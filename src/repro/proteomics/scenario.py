"""A complete synthetic proteomics world with ground truth.

Bundles every substrate a quality-view experiment needs — reference
proteome, GO, GOA, Uniprot, a PEDRo repository populated by simulated
acquisitions, and an Imprint engine — generated from a single seed.
Because the simulation knows which proteins were actually in each spot,
experiments can measure what the paper could only argue for: how well
quality filtering separates true from false identifications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.proteomics.go import GeneOntology, generate_gene_ontology
from repro.proteomics.goa import GOADatabase, generate_goa
from repro.proteomics.imprint import Imprint, ImprintRun, ImprintSettings
from repro.proteomics.pedro import PedroRepository, Sample
from repro.proteomics.proteins import ReferenceDatabase, generate_reference_database
from repro.proteomics.spectrometer import (
    MassSpectrometer,
    SpectrometerSettings,
)
from repro.proteomics.uniprot import UniprotDatabase, generate_uniprot

_LABS = (
    ("aberdeen-mcb", 0.75, 20.0, 8),
    ("manchester-proteomics", 0.65, 30.0, 14),
    ("novice-lab", 0.5, 45.0, 24),
)


@dataclass
class ProteomicsScenario:
    """Everything generated; treat as immutable after construction."""

    seed: int
    reference: ReferenceDatabase
    ontology: GeneOntology
    goa: GOADatabase
    uniprot: UniprotDatabase
    pedro: PedroRepository
    imprint: Imprint
    ground_truth: Dict[str, Set[str]] = field(default_factory=dict)

    @classmethod
    def generate(
        cls,
        seed: int = 42,
        n_proteins: int = 400,
        n_go_terms: int = 120,
        n_spots: int = 10,
        max_proteins_per_spot: int = 2,
        imprint_settings: Optional[ImprintSettings] = None,
        spectrometer_settings: Optional[SpectrometerSettings] = None,
    ) -> "ProteomicsScenario":
        """Build the full world deterministically from one seed."""
        if n_spots < 1:
            raise ValueError("n_spots must be >= 1")
        rng = random.Random(seed)
        reference = generate_reference_database(
            n_proteins=n_proteins, seed=seed * 31 + 1
        )
        ontology = generate_gene_ontology(n_terms=n_go_terms, seed=seed * 31 + 2)
        goa = generate_goa(reference, ontology, seed=seed * 31 + 3)
        uniprot = generate_uniprot(reference, seed=seed * 31 + 4)
        pedro = PedroRepository()
        ground_truth: Dict[str, Set[str]] = {}
        accessions = reference.accessions()
        for spot in range(1, n_spots + 1):
            lab, detection, error_ppm, noise = _LABS[(spot - 1) % len(_LABS)]
            if spectrometer_settings is not None:
                settings = spectrometer_settings
            else:
                settings = SpectrometerSettings(
                    detection_rate=detection,
                    mass_error_ppm=error_ppm,
                    noise_peaks=noise,
                )
            spectrometer = MassSpectrometer(
                settings=settings, seed=seed * 131 + spot
            )
            n_true = rng.randint(1, max_proteins_per_spot)
            chosen = rng.sample(accessions, n_true)
            proteins = [reference.get(accession) for accession in chosen]
            peaks = spectrometer.acquire(proteins)
            sample_id = f"spot-{spot:03d}"
            pedro.add(
                Sample(
                    sample_id=sample_id,
                    peaks=peaks,
                    lab=lab,
                    true_accessions=list(chosen),
                )
            )
            ground_truth[sample_id] = set(chosen)
        imprint = Imprint(
            reference,
            settings=imprint_settings if imprint_settings is not None else ImprintSettings(),
        )
        return cls(
            seed=seed,
            reference=reference,
            ontology=ontology,
            goa=goa,
            uniprot=uniprot,
            pedro=pedro,
            imprint=imprint,
            ground_truth=ground_truth,
        )

    # -- experiment helpers ----------------------------------------------------

    def identify_all(self) -> List[ImprintRun]:
        """Run Imprint over every PEDRo sample, in repository order."""
        return [
            self.imprint.identify(sample.peaks, run_id=sample.sample_id)
            for sample in self.pedro
        ]

    def is_true_positive(self, sample_id: str, accession: str) -> bool:
        """Was this accession really in the sample?"""

        return accession in self.ground_truth.get(sample_id, set())

    def go_terms_for(self, accessions: Sequence[str]) -> List[str]:
        """GO-term occurrences (with multiplicity) for a set of hits."""
        terms: List[str] = []
        for accession in accessions:
            terms.extend(self.goa.terms_of(accession))
        return terms
