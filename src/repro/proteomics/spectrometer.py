"""Mass-spectrometer simulation for PMF experiments.

Generates peak lists from known proteins, reproducing the error sources
the paper names (Sec. 1: "biological contamination, procedural errors
in the lab, and technology limitations"):

* *detection loss* — each tryptic peptide is observed with probability
  ``detection_rate`` (ion suppression, low abundance);
* *measurement error* — Gaussian mass error in ppm;
* *noise peaks* — spurious masses uniform over the scan range;
* *contamination* — peptides from contaminant proteins (keratin,
  trypsin autolysis) mixed into the spectrum.

Lower-skilled labs are modelled by lower detection rates and more
noise, which is what makes lab-quality evidence meaningful downstream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.proteomics.digest import tryptic_digest
from repro.proteomics.masses import mh_ion_mass
from repro.proteomics.proteins import Protein


@dataclass(frozen=True)
class SpectrometerSettings:
    """Tunable error model of one instrument/lab combination."""

    detection_rate: float = 0.7
    #: Missed-cleavage products are less abundant than limit peptides;
    #: they are detected at detection_rate * partial_detection_factor.
    partial_detection_factor: float = 0.4
    mass_error_ppm: float = 25.0
    noise_peaks: int = 12
    contaminant_rate: float = 0.35
    scan_min_mass: float = 700.0
    scan_max_mass: float = 3500.0
    missed_cleavages: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.detection_rate <= 1.0:
            raise ValueError("detection_rate must be in (0, 1]")
        if not 0.0 <= self.partial_detection_factor <= 1.0:
            raise ValueError("partial_detection_factor must be in [0, 1]")
        if self.mass_error_ppm < 0:
            raise ValueError("mass_error_ppm must be >= 0")
        if self.noise_peaks < 0:
            raise ValueError("noise_peaks must be >= 0")
        if self.scan_min_mass >= self.scan_max_mass:
            raise ValueError("scan range is empty")


@dataclass
class PeakList:
    """The observable output of one PMF acquisition."""

    masses: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.masses)

    def __iter__(self):
        return iter(self.masses)

    def sorted(self) -> "PeakList":
        """A mass-sorted copy of the peak list."""
        return PeakList(sorted(self.masses))


#: Default contaminants: sequences rich in tryptic sites, standing in
#: for human keratin and porcine trypsin autolysis products.
DEFAULT_CONTAMINANTS: Tuple[Protein, ...] = (
    Protein(
        accession="CONT_KERATIN",
        name="Keratin-like contaminant",
        sequence=(
            "MSRQFSSRSGYRSGGGFSSGSAGIINYQRRTTSSSTRRSGGGGGRFSSCGGGGGSFGAGGGFGSR"
            "SLVNLGGSKSISISVARGGGRGSGFGGGYGGGGFGGGGFGGGGFGGGGIGGGFGGFGSGFGGGSG"
        ),
        organism="human",
    ),
    Protein(
        accession="CONT_TRYPSIN",
        name="Trypsin autolysis contaminant",
        sequence=(
            "MKTFIFLALLGAAVAFPVDDDDKIVGGYTCGANTVPYQVSLNSGYHFCGGSLINSQWVVSAAHCYK"
            "SGIQVRLGEDNINVVEGNEQFISASKSIVHPSYNSNTLNNDIMLIKLKSAASLNSRVASISLPTSK"
        ),
        organism="pig",
    ),
)


class MassSpectrometer:
    """A seeded PMF instrument."""

    def __init__(
        self,
        settings: Optional[SpectrometerSettings] = None,
        seed: int = 11,
        contaminants: Sequence[Protein] = DEFAULT_CONTAMINANTS,
    ) -> None:
        self.settings = settings if settings is not None else SpectrometerSettings()
        self._rng = random.Random(seed)
        self.contaminants = list(contaminants)

    def _observable_masses(self, protein: Protein) -> List[Tuple[float, bool]]:
        """(ion mass, is_limit_peptide) pairs inside the scan range."""
        settings = self.settings
        peptides = tryptic_digest(
            protein.sequence, missed_cleavages=settings.missed_cleavages
        )
        masses = []
        for peptide in peptides:
            mass = mh_ion_mass(peptide.sequence)
            if settings.scan_min_mass <= mass <= settings.scan_max_mass:
                masses.append((mass, peptide.is_limit))
        return masses

    def _measure(self, mass: float) -> float:
        error_ppm = self._rng.gauss(0.0, self.settings.mass_error_ppm)
        return mass * (1.0 + error_ppm / 1e6)

    def acquire(self, proteins: Sequence[Protein]) -> PeakList:
        """One acquisition over a (possibly mixed) protein sample."""
        if not proteins:
            raise ValueError("cannot acquire a spectrum of an empty sample")
        settings = self.settings
        observed: List[float] = []
        for protein in proteins:
            for mass, is_limit in self._observable_masses(protein):
                rate = settings.detection_rate
                if not is_limit:
                    rate *= settings.partial_detection_factor
                if self._rng.random() <= rate:
                    observed.append(self._measure(mass))
        for contaminant in self.contaminants:
            for mass, _ in self._observable_masses(contaminant):
                if self._rng.random() <= settings.contaminant_rate * 0.2:
                    observed.append(self._measure(mass))
        for _ in range(settings.noise_peaks):
            observed.append(
                self._rng.uniform(settings.scan_min_mass, settings.scan_max_mass)
            )
        self._rng.shuffle(observed)
        return PeakList(observed)
