"""A Uniprot-like curated protein database.

Used by the evidence-code and journal-impact annotation examples: each
entry records its curation status, the evidence codes behind its
annotations, and the journal (with ISI-style impact factor) of the
paper describing the protein — the paper's examples of long-lived
quality evidence over a stable database (Sec. 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.proteomics.goa import EVIDENCE_CODE_RELIABILITY
from repro.proteomics.proteins import ReferenceDatabase

#: Synthetic journals with ISI-style impact factors.
JOURNALS: Tuple[Tuple[str, float], ...] = (
    ("Nature", 32.2),
    ("Science", 30.9),
    ("Cell", 28.4),
    ("Molecular & Cellular Proteomics", 9.6),
    ("Bioinformatics", 6.0),
    ("Proteomics", 5.5),
    ("BMC Genomics", 4.0),
    ("Electrophoresis", 3.8),
    ("J Proteome Res", 5.2),
    ("FEBS Letters", 3.4),
)


@dataclass(frozen=True)
class UniprotEntry:
    """One curated database record."""

    accession: str
    name: str
    organism: str
    curated: bool
    evidence_codes: Tuple[str, ...]
    journal: str
    impact_factor: float

    def best_evidence_reliability(self) -> int:
        """The highest reliability rank among the entry's codes."""
        if not self.evidence_codes:
            return 0
        return max(
            EVIDENCE_CODE_RELIABILITY.get(code, 0) for code in self.evidence_codes
        )


class UniprotDatabase:
    """Accession-keyed curated entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, UniprotEntry] = {}

    def add(self, entry: UniprotEntry) -> None:
        """Add an entry; duplicate accessions are rejected."""
        if entry.accession in self._entries:
            raise ValueError(f"duplicate accession {entry.accession!r}")
        self._entries[entry.accession] = entry

    def get(self, accession: str) -> UniprotEntry:
        """The entry by accession."""
        try:
            return self._entries[accession]
        except KeyError:
            raise KeyError(f"unknown accession {accession!r}") from None

    def __contains__(self, accession: str) -> bool:
        return accession in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[UniprotEntry]:
        return iter(self._entries.values())


def generate_uniprot(
    database: ReferenceDatabase, seed: int = 19, curated_fraction: float = 0.6
) -> UniprotDatabase:
    """Curated entries mirroring the reference proteome."""
    if not 0.0 <= curated_fraction <= 1.0:
        raise ValueError("curated_fraction must be in [0, 1]")
    rng = random.Random(seed)
    codes = list(EVIDENCE_CODE_RELIABILITY)
    uniprot = UniprotDatabase()
    for protein in database:
        curated = rng.random() < curated_fraction
        if curated:
            n_codes = rng.randint(1, 3)
            evidence = tuple(sorted(rng.sample(codes, n_codes)))
        else:
            evidence = ("IEA",)
        journal, impact = JOURNALS[rng.randrange(len(JOURNALS))]
        uniprot.add(
            UniprotEntry(
                accession=protein.accession,
                name=protein.name,
                organism=protein.organism,
                curated=curated,
                evidence_codes=evidence,
                journal=journal,
                impact_factor=impact,
            )
        )
    return uniprot
