"""The ISPIDER proteomics analysis workflow (paper Fig. 1).

Retrieve peak lists from PEDRo, identify proteins with Imprint (given
configuration parameters and the reference sequence database), then
query GOA for the functional annotations of every identified protein.
The workflow is built from ordinary processors, so the quality-view
deployment machinery can embed a compiled quality workflow between the
identification and GO-retrieval steps exactly as in the paper's Fig. 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.proteomics.imprint import ImprintRun
from repro.proteomics.results import ImprintResultSet
from repro.proteomics.scenario import ProteomicsScenario
from repro.workflow.model import Workflow
from repro.workflow.processors import PythonProcessor, StringConstantProcessor

#: Stable processor names the deployment descriptors reference.
PEAK_LIST_RETRIEVAL = "GetPeakLists"
PROTEIN_IDENTIFICATION = "ProteinIdentification"
COLLECT_ACCESSIONS = "CollectAccessions"
GO_RETRIEVAL = "GORetrieval"


def build_ispider_workflow(
    scenario: ProteomicsScenario, name: str = "ispider-analysis"
) -> Workflow:
    """The original (quality-unaware) analysis workflow of Figure 1.

    Inputs: ``sampleIDs`` (list of PEDRo sample identifiers).
    Outputs: ``goTerms`` (GO-term occurrences, with multiplicity) and
    ``identifications`` (the raw Imprint runs).
    """
    workflow = Workflow(name)
    workflow.add_input("sampleIDs")
    workflow.add_output("goTerms")
    workflow.add_output("identifications")

    def get_peak_lists(sampleIDs):
        return scenario.pedro.samples(sampleIDs)

    workflow.add_processor(
        PythonProcessor(
            PEAK_LIST_RETRIEVAL,
            get_peak_lists,
            input_ports={"sampleIDs": 1},
            output_ports={"samples": 1},
        )
    )

    def identify(sample, parameters):
        del parameters  # carried for fidelity; Imprint holds its settings
        return scenario.imprint.identify(sample.peaks, run_id=sample.sample_id)

    workflow.add_processor(
        PythonProcessor(
            PROTEIN_IDENTIFICATION,
            identify,
            input_ports={"sample": 0, "parameters": 0},
            output_ports={"run": 0},
        )
    )
    workflow.add_processor(
        StringConstantProcessor(
            "ImprintParameters",
            f"tolerance={scenario.imprint.settings.tolerance_ppm}ppm",
        )
    )

    def collect_accessions(runs: List[ImprintRun]):
        return ImprintResultSet(runs).accessions()

    workflow.add_processor(
        PythonProcessor(
            COLLECT_ACCESSIONS,
            collect_accessions,
            input_ports={"runs": 1},
            output_ports={"accessions": 1},
        )
    )

    def retrieve_go_terms(accessions: List[str]):
        return scenario.go_terms_for(accessions)

    workflow.add_processor(
        PythonProcessor(
            GO_RETRIEVAL,
            retrieve_go_terms,
            input_ports={"accessions": 1},
            output_ports={"goTerms": 1},
        )
    )

    workflow.connect("", "sampleIDs", PEAK_LIST_RETRIEVAL, "sampleIDs")
    workflow.connect(PEAK_LIST_RETRIEVAL, "samples", PROTEIN_IDENTIFICATION, "sample")
    workflow.connect("ImprintParameters", "value", PROTEIN_IDENTIFICATION, "parameters")
    workflow.connect(PROTEIN_IDENTIFICATION, "run", COLLECT_ACCESSIONS, "runs")
    workflow.connect(COLLECT_ACCESSIONS, "accessions", GO_RETRIEVAL, "accessions")
    workflow.connect(GO_RETRIEVAL, "goTerms", "", "goTerms")
    workflow.connect(PROTEIN_IDENTIFICATION, "run", "", "identifications")
    return workflow


def go_term_frequencies(go_terms: List[str]) -> Dict[str, int]:
    """Occurrence counts of GO terms (the pareto-chart input of Sec. 1.1)."""
    counts: Dict[str, int] = {}
    for term in go_terms:
        counts[term] = counts.get(term, 0) + 1
    return counts
