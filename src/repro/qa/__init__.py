"""Domain-specific quality assertions and annotation functions.

These are the "user space" components of the framework (paper Sec. 5.1):
the three QAs of the running example — a Hit-Ratio + Mass-Coverage
score, a Hit-Ratio-only score, and a ready-to-use three-way classifier
at avg ± stddev — plus generic building blocks (threshold classifiers,
decision-tree QAs) and the annotation functions that extract evidence
from Imprint output, Uniprot evidence codes and journal impact factors.
"""

from repro.qa.pi_score import (
    HRScoreQA,
    UniversalPIScoreQA,
    UniversalPIScore2QA,
)
from repro.qa.classifier import PIScoreClassifierQA, ThresholdClassifierQA
from repro.qa.decision_tree import DecisionLeaf, DecisionNode, DecisionTreeQA
from repro.qa.annotators import (
    EvidenceCodeAnnotator,
    ImprintOutputAnnotator,
    JournalImpactAnnotator,
)
from repro.qa.learning import (
    LabeledExample,
    learn_decision_tree,
    learn_quality_assertion,
    tree_accuracy,
)

__all__ = [
    "DecisionLeaf",
    "DecisionNode",
    "DecisionTreeQA",
    "EvidenceCodeAnnotator",
    "HRScoreQA",
    "ImprintOutputAnnotator",
    "JournalImpactAnnotator",
    "LabeledExample",
    "learn_decision_tree",
    "learn_quality_assertion",
    "tree_accuracy",
    "PIScoreClassifierQA",
    "ThresholdClassifierQA",
    "UniversalPIScoreQA",
    "UniversalPIScore2QA",
]
