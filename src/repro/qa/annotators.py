"""Annotation functions for the proteomics use case.

``ImprintOutputAnnotator`` is the paper's ``q:Imprint-output-annotation``
operator: the evidence (HR, MC, masses, peptide counts, ELDP) "is
available as part of the Imprint output, therefore the annotation
function simply captures their values and stores them as annotations"
(Sec. 3).  The Uniprot annotators show the other pattern the paper
describes: evidence computed from external sources (curation evidence
codes; ISI journal impact factors) that is long-lived and worth
persisting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set

from repro.annotation.functions import AnnotationFunction
from repro.annotation.map import AnnotationMap
from repro.proteomics.results import ImprintResultSet
from repro.proteomics.uniprot import UniprotDatabase
from repro.rdf import Q, URIRef

#: Evidence-type URI per Imprint indicator key.
_IMPRINT_EVIDENCE = {
    Q.HitRatio: "hitRatio",
    Q.Coverage: "coverage",
    Q.Masses: "masses",
    Q.PeptidesCount: "peptidesCount",
    Q.ELDP: "eldp",
}


class ImprintOutputAnnotator(AnnotationFunction):
    """Captures the quality indicators attached to Imprint hit entries.

    Data-specific by design (paper Sec. 4.1: annotation operators "offer
    few opportunities for reuse besides their repeated application to
    homogeneous data sets"): it is constructed over one result set.
    """

    function_class = Q["Imprint-output-annotation"]
    provides = frozenset(_IMPRINT_EVIDENCE)

    def __init__(self, results: ImprintResultSet) -> None:
        self.results = results

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Extract the requested evidence for the given hit items."""

        amap = AnnotationMap()
        for item in items:
            amap.add_item(item)
            if item not in self.results:
                continue  # unknown item: evidence stays null
            indicators = self.results.indicators(item)
            for evidence_type in evidence_types:
                key = _IMPRINT_EVIDENCE.get(evidence_type)
                if key is not None and key in indicators:
                    amap.set_evidence(item, evidence_type, indicators[key])
        return amap


class EvidenceCodeAnnotator(AnnotationFunction):
    """Annotates hit entries with the curation-evidence reliability of
    their protein's Uniprot record (Lord et al.'s indicator)."""

    function_class = Q.EvidenceCodeAnnotation
    provides = frozenset({Q.EvidenceCode})

    def __init__(
        self, results: ImprintResultSet, uniprot: UniprotDatabase
    ) -> None:
        self.results = results
        self.uniprot = uniprot

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Extract the requested evidence for the given hit items."""

        amap = AnnotationMap()
        for item in items:
            amap.add_item(item)
            if Q.EvidenceCode not in evidence_types or item not in self.results:
                continue
            accession = self.results.accession(item)
            if accession in self.uniprot:
                entry = self.uniprot.get(accession)
                amap.set_evidence(
                    item, Q.EvidenceCode, entry.best_evidence_reliability()
                )
        return amap


class JournalImpactAnnotator(AnnotationFunction):
    """Annotates hit entries with the impact factor of the journal that
    described the protein (the paper's ISI impact-table example)."""

    function_class = Q.JournalImpactAnnotation
    provides = frozenset({Q.JournalImpactFactor})

    def __init__(
        self, results: ImprintResultSet, uniprot: UniprotDatabase
    ) -> None:
        self.results = results
        self.uniprot = uniprot

    def annotate(
        self,
        items: List[URIRef],
        evidence_types: Set[URIRef],
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Extract the requested evidence for the given hit items."""

        amap = AnnotationMap()
        for item in items:
            amap.add_item(item)
            if (
                Q.JournalImpactFactor not in evidence_types
                or item not in self.results
            ):
                continue
            accession = self.results.accession(item)
            if accession in self.uniprot:
                entry = self.uniprot.get(accession)
                amap.set_evidence(item, Q.JournalImpactFactor, entry.impact_factor)
        return amap
