"""Classification QAs.

``PIScoreClassifierQA`` is the paper's third example QA: "a ready-to-use
three-way classification (low, mid, high) based on the average and
standard deviation of the Hit Ratio and Mass Coverage score.  The
thresholds used for classification are (avg - stddev) and
(avg + stddev)" (Sec. 5.1, footnote 19).  Because the thresholds come
from the score distribution of the *collection*, this QA is inherently
collection-level.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.process.operators import QualityAssertionOperator
from repro.qa.pi_score import UniversalPIScoreQA, _require_variables
from repro.rdf import Q, URIRef


def mean_and_stddev(values: Sequence[float]) -> Tuple[float, float]:
    """Population mean and standard deviation (stddev 0 for n <= 1)."""
    n = len(values)
    if n == 0:
        raise ValueError("cannot compute statistics of an empty collection")
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(variance)


class PIScoreClassifierQA(QualityAssertionOperator):
    """Three-way (low / mid / high) classification of the HR+MC score."""

    def __init__(
        self,
        name: str = "PIScoreClassifier",
        tag_name: str = "ScoreClass",
        variables: Optional[Mapping[str, URIRef]] = None,
        hr_weight: float = 0.5,
        mc_weight: float = 0.5,
    ) -> None:
        if variables is None:
            variables = {"hitRatio": Q.HitRatio, "coverage": Q.Coverage}
        _require_variables(name, variables, ["hitRatio", "coverage"])
        super().__init__(
            name,
            assertion_class=Q.PIScoreClassifier,
            tag_name=tag_name,
            tag_syn_type=Q["class"],
            tag_sem_type=Q.PIScoreClassification,
            variables=variables,
        )
        self._scorer = UniversalPIScoreQA(
            name=f"{name}-score",
            variables=variables,
            hr_weight=hr_weight,
            mc_weight=mc_weight,
        )

    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Class labels per item (None where evidence is missing)."""

        scores = self._scorer.compute(items, vectors)
        present = [s for s in scores if s is not None]
        if not present:
            return [None] * len(items)
        average, stddev = mean_and_stddev(present)
        low_threshold = average - stddev
        high_threshold = average + stddev
        labels: List[Any] = []
        for score in scores:
            if score is None:
                labels.append(None)
            elif score > high_threshold:
                labels.append(Q.high)
            elif score < low_threshold:
                labels.append(Q.low)
            else:
                labels.append(Q.mid)
        return labels


class ThresholdClassifierQA(QualityAssertionOperator):
    """A generic classifier: score function + ordered threshold bands.

    ``bands`` is a list of (upper_bound, class_uri) pairs in ascending
    bound order; scores above every bound get ``top_class``.  The score
    function receives the item's evidence vector.
    """

    def __init__(
        self,
        name: str,
        tag_name: str,
        variables: Mapping[str, URIRef],
        score_fn: Callable[[Dict[str, Any]], Optional[float]],
        bands: Sequence[Tuple[float, URIRef]],
        top_class: URIRef,
        scheme: URIRef,
        assertion_class: URIRef = Q.PIScoreClassifier,
    ) -> None:
        if not bands:
            raise ValueError("at least one threshold band is required")
        bounds = [bound for bound, _ in bands]
        if bounds != sorted(bounds):
            raise ValueError("threshold bands must be in ascending bound order")
        super().__init__(
            name,
            assertion_class=assertion_class,
            tag_name=tag_name,
            tag_syn_type=Q["class"],
            tag_sem_type=scheme,
            variables=variables,
        )
        self.score_fn = score_fn
        self.bands = list(bands)
        self.top_class = top_class

    def classify(self, score: float) -> URIRef:
        """The class for a score, by ascending threshold bands."""
        for bound, cls in self.bands:
            if score <= bound:
                return cls
        return self.top_class

    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Class labels per item (None where evidence is missing)."""

        labels: List[Any] = []
        for vector in vectors:
            score = self.score_fn(vector)
            labels.append(None if score is None else self.classify(score))
        return labels
