"""Decision-tree quality assertions.

The paper stresses that acceptability criteria are "arbitrary decision
models, rather than ontology reasoning" and names complex decision
trees as the canonical heavy-weight QA (Sec. 4).  ``DecisionTreeQA``
evaluates a user-built tree over each item's evidence vector; trees can
be constructed programmatically or from a nested-dict description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.process.operators import QualityAssertionOperator
from repro.rdf import Q, URIRef

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class DecisionLeaf:
    """A terminal node producing the tag value (score, class URI, ...)."""

    value: Any

    def decide(self, vector: Mapping[str, Any]) -> Any:
        """Walk the tree for one evidence vector; returns the leaf value."""
        return self.value


@dataclass(frozen=True)
class DecisionNode:
    """An internal test: ``variable op threshold`` -> then / else branch.

    Items whose variable is missing take the ``missing`` branch
    (defaults to the else branch).
    """

    variable: str
    op: str
    threshold: Any
    then_branch: Union["DecisionNode", DecisionLeaf]
    else_branch: Union["DecisionNode", DecisionLeaf]
    missing: Optional[Union["DecisionNode", DecisionLeaf]] = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"unknown decision operator {self.op!r}; valid: {sorted(_OPS)}"
            )

    def decide(self, vector: Mapping[str, Any]) -> Any:
        """Walk the tree for one evidence vector; returns the leaf value."""
        node: Union[DecisionNode, DecisionLeaf] = self
        while isinstance(node, DecisionNode):
            value = vector.get(node.variable)
            if value is None:
                node = node.missing if node.missing is not None else node.else_branch
                continue
            node = (
                node.then_branch
                if _OPS[node.op](value, node.threshold)
                else node.else_branch
            )
        return node.value


def tree_from_dict(description: Mapping[str, Any]) -> Union[DecisionNode, DecisionLeaf]:
    """Build a tree from a nested description.

    Leaves: ``{"value": ...}``.  Nodes: ``{"variable": ..., "op": ...,
    "threshold": ..., "then": <node>, "else": <node>, "missing": <node>?}``.
    """
    if "value" in description:
        return DecisionLeaf(description["value"])
    try:
        return DecisionNode(
            variable=description["variable"],
            op=description["op"],
            threshold=description["threshold"],
            then_branch=tree_from_dict(description["then"]),
            else_branch=tree_from_dict(description["else"]),
            missing=(
                tree_from_dict(description["missing"])
                if "missing" in description
                else None
            ),
        )
    except KeyError as exc:
        raise ValueError(f"decision-tree description missing key {exc}") from exc


class DecisionTreeQA(QualityAssertionOperator):
    """A QA evaluating a decision tree per item."""

    def __init__(
        self,
        name: str,
        tag_name: str,
        variables: Mapping[str, URIRef],
        tree: Union[DecisionNode, DecisionLeaf, Mapping[str, Any]],
        tag_syn_type: Optional[URIRef] = None,
        tag_sem_type: Optional[URIRef] = None,
        assertion_class: URIRef = Q.QualityAssertion,
    ) -> None:
        if isinstance(tree, Mapping):
            tree = tree_from_dict(tree)
        super().__init__(
            name,
            assertion_class=assertion_class,
            tag_name=tag_name,
            tag_syn_type=tag_syn_type,
            tag_sem_type=tag_sem_type,
            variables=variables,
        )
        self.tree = tree

    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Tree verdicts per item."""

        return [self.tree.decide(vector) for vector in vectors]
