"""Learning decision models from example data.

Paper Sec. 7, current work (ii): "investigating the use of machine
learning techniques to derive decision models and quality functions
from example data sets."  This module implements that extension: a
CART-style decision-tree learner over evidence vectors that produces
exactly the :class:`~repro.qa.decision_tree.DecisionTreeQA` trees the
framework already executes, so a learned model plugs into quality views
like any hand-written QA.

The learner is deliberately simple and dependency-free: binary
threshold splits on numeric evidence, Gini impurity or entropy, depth
and minimum-leaf-size stopping, majority-vote leaves.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.qa.decision_tree import DecisionLeaf, DecisionNode, DecisionTreeQA
from repro.rdf import Q, URIRef


@dataclass(frozen=True)
class LabeledExample:
    """One training instance: an evidence vector and its quality label."""

    vector: Mapping[str, Any]
    label: Any


def gini_impurity(labels: Sequence[Any]) -> float:
    """Gini impurity of a label multiset (0 = pure)."""
    n = len(labels)
    if n == 0:
        return 0.0
    counts = Counter(labels)
    return 1.0 - sum((c / n) ** 2 for c in counts.values())


def entropy(labels: Sequence[Any]) -> float:
    """Shannon entropy of a label multiset in bits."""
    n = len(labels)
    if n == 0:
        return 0.0
    counts = Counter(labels)
    return -sum(
        (c / n) * math.log2(c / n) for c in counts.values() if c > 0
    )


_IMPURITY = {"gini": gini_impurity, "entropy": entropy}


def majority_label(examples: Sequence[LabeledExample]) -> Any:
    """Most common label, ties broken by string order for determinism."""
    counts = Counter(e.label for e in examples)
    best_count = max(counts.values())
    candidates = sorted(
        (label for label, c in counts.items() if c == best_count), key=str
    )
    return candidates[0]


def _candidate_thresholds(values: List[float]) -> List[float]:
    """Midpoints between consecutive distinct sorted values."""
    distinct = sorted(set(values))
    return [
        (a + b) / 2.0 for a, b in zip(distinct, distinct[1:])
    ]


@dataclass
class _Split:
    variable: str
    threshold: float
    gain: float
    left: List[LabeledExample] = field(default_factory=list)
    right: List[LabeledExample] = field(default_factory=list)


def _best_split(
    examples: Sequence[LabeledExample],
    variables: Sequence[str],
    impurity_fn,
) -> Optional[_Split]:
    parent_labels = [e.label for e in examples]
    parent_impurity = impurity_fn(parent_labels)
    if parent_impurity == 0.0:
        return None
    n = len(examples)
    best: Optional[_Split] = None
    for variable in variables:
        with_value = [
            e for e in examples
            if isinstance(e.vector.get(variable), (int, float))
            and not isinstance(e.vector.get(variable), bool)
        ]
        if len(with_value) < 2:
            continue
        missing = [e for e in examples if e not in with_value]
        values = [float(e.vector[variable]) for e in with_value]
        for threshold in _candidate_thresholds(values):
            # '>' goes to the then-branch, mirroring DecisionNode; missing
            # values follow the else branch (DecisionNode default).
            right = [
                e for e in with_value if float(e.vector[variable]) > threshold
            ]
            left = [
                e for e in with_value if float(e.vector[variable]) <= threshold
            ] + missing
            if not left or not right:
                continue
            weighted = (
                len(left) / n * impurity_fn([e.label for e in left])
                + len(right) / n * impurity_fn([e.label for e in right])
            )
            gain = parent_impurity - weighted
            if best is None or gain > best.gain + 1e-12:
                best = _Split(variable, threshold, gain, left, right)
    return best


def learn_decision_tree(
    examples: Sequence[LabeledExample],
    variables: Sequence[str],
    max_depth: int = 4,
    min_samples_leaf: int = 3,
    min_gain: float = 1e-4,
    impurity: str = "gini",
) -> Union[DecisionNode, DecisionLeaf]:
    """Induce a decision tree over the given evidence variables.

    Returns a tree in the framework's executable representation.
    Raises ``ValueError`` on an empty training set or unknown impurity.
    """
    if not examples:
        raise ValueError("cannot learn from an empty example set")
    try:
        impurity_fn = _IMPURITY[impurity]
    except KeyError:
        raise ValueError(
            f"unknown impurity {impurity!r}; valid: {sorted(_IMPURITY)}"
        ) from None
    if max_depth < 0:
        raise ValueError("max_depth must be >= 0")

    def grow(subset: Sequence[LabeledExample], depth: int):
        if (
            depth >= max_depth
            or len(subset) < 2 * min_samples_leaf
        ):
            return DecisionLeaf(majority_label(subset))
        split = _best_split(subset, variables, impurity_fn)
        if (
            split is None
            or split.gain < min_gain
            or len(split.left) < min_samples_leaf
            or len(split.right) < min_samples_leaf
        ):
            return DecisionLeaf(majority_label(subset))
        return DecisionNode(
            variable=split.variable,
            op=">",
            threshold=round(split.threshold, 6),
            then_branch=grow(split.right, depth + 1),
            else_branch=grow(split.left, depth + 1),
        )

    return grow(list(examples), 0)


def tree_depth(tree: Union[DecisionNode, DecisionLeaf]) -> int:
    """The longest root-to-leaf path length."""

    if isinstance(tree, DecisionLeaf):
        return 0
    return 1 + max(tree_depth(tree.then_branch), tree_depth(tree.else_branch))


def tree_accuracy(
    tree: Union[DecisionNode, DecisionLeaf],
    examples: Sequence[LabeledExample],
) -> float:
    """Fraction of examples the tree labels correctly."""
    if not examples:
        raise ValueError("cannot score on an empty example set")
    hits = sum(1 for e in examples if tree.decide(e.vector) == e.label)
    return hits / len(examples)


def learn_quality_assertion(
    name: str,
    tag_name: str,
    variables: Mapping[str, URIRef],
    examples: Sequence[LabeledExample],
    tag_syn_type: Optional[URIRef] = None,
    tag_sem_type: Optional[URIRef] = None,
    assertion_class: URIRef = Q.QualityAssertion,
    **learner_options: Any,
) -> DecisionTreeQA:
    """Train a tree on examples and wrap it as a deployable QA operator.

    ``variables`` maps the training vector's feature names to evidence
    types, exactly like any hand-written QA's variable bindings.
    """
    tree = learn_decision_tree(
        examples, list(variables), **learner_options
    )
    return DecisionTreeQA(
        name,
        tag_name,
        variables,
        tree,
        tag_syn_type=tag_syn_type,
        tag_sem_type=tag_sem_type,
        assertion_class=assertion_class,
    )
