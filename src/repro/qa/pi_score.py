"""Protein-identification scoring QAs (paper Sec. 5.1).

The example quality view declares three QAs; the two scoring ones are
implemented here.  Scores follow Stead et al.'s universal-metric idea:
normalised combinations of Hit Ratio, Mass Coverage and peptide counts,
scaled to [0, 100].  A QA tags each item with its score under the view's
``tagName`` (e.g. ``HR MC``), syntactic type ``q:score``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.ontology.iq_model import IQModel
from repro.process.operators import QualityAssertionOperator
from repro.rdf import Q, URIRef


def _require_variables(
    qa_name: str, variables: Mapping[str, URIRef], required: List[str]
) -> None:
    missing = [name for name in required if name not in variables]
    if missing:
        raise ValueError(
            f"quality assertion {qa_name!r} needs variable bindings for "
            f"{missing}; got {sorted(variables)}"
        )


class UniversalPIScoreQA(QualityAssertionOperator):
    """Score s(HR, MC): a weighted combination of Hit Ratio and Mass
    Coverage, the paper's first example QA.

    Items missing either evidence value receive no tag (null evidence
    propagates to the action's default group).
    """

    REQUIRED = ["hitRatio", "coverage"]

    def __init__(
        self,
        name: str = "HR_MC_score",
        tag_name: str = "HR MC",
        variables: Optional[Mapping[str, URIRef]] = None,
        hr_weight: float = 0.5,
        mc_weight: float = 0.5,
        assertion_class: URIRef = Q.UniversalPIScore,
    ) -> None:
        if variables is None:
            variables = {"hitRatio": Q.HitRatio, "coverage": Q.Coverage}
        _require_variables(name, variables, self.REQUIRED)
        total = hr_weight + mc_weight
        if total <= 0:
            raise ValueError("score weights must sum to a positive value")
        super().__init__(
            name,
            assertion_class=assertion_class,
            tag_name=tag_name,
            tag_syn_type=Q.score,
            variables=variables,
        )
        self.hr_weight = hr_weight / total
        self.mc_weight = mc_weight / total

    def score(self, hit_ratio: float, coverage: float) -> float:
        """The weighted HR/MC score, scaled to [0, 100]."""

        return 100.0 * (self.hr_weight * hit_ratio + self.mc_weight * coverage)

    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Scores per item (None where evidence is missing)."""

        values: List[Any] = []
        for vector in vectors:
            hit_ratio = vector.get("hitRatio")
            coverage = vector.get("coverage")
            if hit_ratio is None or coverage is None:
                values.append(None)
            else:
                values.append(round(self.score(hit_ratio, coverage), 4))
        return values


class UniversalPIScore2QA(UniversalPIScoreQA):
    """The ``q:UniversalPIScore2`` specialisation used in the paper's XML:
    HR + MC plus the matched-peptide count as a third input."""

    REQUIRED = ["hitRatio", "coverage", "peptidesCount"]

    def __init__(
        self,
        name: str = "HR MC score",
        tag_name: str = "HR MC",
        variables: Optional[Mapping[str, URIRef]] = None,
        hr_weight: float = 0.4,
        mc_weight: float = 0.4,
        peptides_weight: float = 0.2,
        peptides_saturation: int = 20,
    ) -> None:
        if variables is None:
            variables = {
                "hitRatio": Q.HitRatio,
                "coverage": Q.Coverage,
                "peptidesCount": Q.PeptidesCount,
            }
        _require_variables(name, variables, ["peptidesCount"])
        super().__init__(
            name=name,
            tag_name=tag_name,
            variables=variables,
            hr_weight=hr_weight,
            mc_weight=mc_weight,
            assertion_class=Q.UniversalPIScore2,
        )
        total = hr_weight + mc_weight + peptides_weight
        self.hr_weight = hr_weight / total
        self.mc_weight = mc_weight / total
        self.peptides_weight = peptides_weight / total
        if peptides_saturation <= 0:
            raise ValueError("peptides_saturation must be positive")
        self.peptides_saturation = peptides_saturation

    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Scores per item (None where evidence is missing)."""

        values: List[Any] = []
        for vector in vectors:
            hit_ratio = vector.get("hitRatio")
            coverage = vector.get("coverage")
            peptides = vector.get("peptidesCount")
            if hit_ratio is None or coverage is None or peptides is None:
                values.append(None)
                continue
            saturated = min(1.0, float(peptides) / self.peptides_saturation)
            score = 100.0 * (
                self.hr_weight * hit_ratio
                + self.mc_weight * coverage
                + self.peptides_weight * saturated
            )
            values.append(round(score, 4))
        return values


class HRScoreQA(QualityAssertionOperator):
    """The Hit-Ratio-only score: the paper's second example QA."""

    def __init__(
        self,
        name: str = "HR_score",
        tag_name: str = "HR",
        variables: Optional[Mapping[str, URIRef]] = None,
    ) -> None:
        if variables is None:
            variables = {"hitRatio": Q.HitRatio}
        _require_variables(name, variables, ["hitRatio"])
        super().__init__(
            name,
            assertion_class=Q.HRScore,
            tag_name=tag_name,
            tag_syn_type=Q.score,
            variables=variables,
        )

    def compute(
        self, items: List[URIRef], vectors: List[Dict[str, Any]]
    ) -> List[Any]:
        """Scores per item (None where evidence is missing)."""

        values: List[Any] = []
        for vector in vectors:
            hit_ratio = vector.get("hitRatio")
            values.append(
                None if hit_ratio is None else round(100.0 * hit_ratio, 4)
            )
        return values
