"""Quality views: declarative specifications of quality processes.

Paper Sec. 5.1: quality views are "concrete and machine-processable
specifications for instances of our general quality process pattern,
expressed in an XML syntax", defined purely over the abstract operator
model and therefore independent of both the input data and the target
environment.  This package provides the spec model, the XML reader and
writer, semantic validation against the IQ ontology, the compiler that
targets the workflow environment (Sec. 6.1), and the deployment
descriptors that embed compiled views in host workflows (Sec. 6.2).
"""

from repro.qv.spec import (
    ActionSpec,
    AnnotatorSpec,
    AssertionSpec,
    QualityViewSpec,
    SplitterGroupSpec,
    VariableSpec,
)
from repro.qv.xml_io import QVSyntaxError, parse_quality_view, quality_view_to_xml
from repro.qv.validator import QVValidationError, validate_quality_view
from repro.qv.compiler import QVCompiler, CompilationError, check_output_ports
from repro.qv.ir import (
    IRModule,
    canonical_condition,
    lower_view,
    view_fingerprint,
)
from repro.qv.passes import (
    PASS_NAMES,
    CompileOptions,
    PassManager,
    PassReport,
    default_passes,
)
from repro.qv.backend import emit_workflow
from repro.qv.deployment import (
    AdapterSpec,
    ConnectorSpec,
    DeploymentDescriptor,
    DeploymentError,
    embed_quality_workflow,
)
from repro.qv.process_target import ProcessTargetCompiler
from repro.qv.library import LibraryEntry, LibraryError, QualityViewLibrary
from repro.qv.diff import ViewDiff, diff_views, render_diff, same_compiled_view

__all__ = [
    "ActionSpec",
    "AdapterSpec",
    "AnnotatorSpec",
    "AssertionSpec",
    "CompilationError",
    "CompileOptions",
    "ConnectorSpec",
    "DeploymentDescriptor",
    "DeploymentError",
    "IRModule",
    "LibraryEntry",
    "LibraryError",
    "PASS_NAMES",
    "PassManager",
    "PassReport",
    "ProcessTargetCompiler",
    "QVCompiler",
    "QualityViewLibrary",
    "QVSyntaxError",
    "QVValidationError",
    "QualityViewSpec",
    "SplitterGroupSpec",
    "VariableSpec",
    "ViewDiff",
    "canonical_condition",
    "check_output_ports",
    "default_passes",
    "diff_views",
    "emit_workflow",
    "lower_view",
    "render_diff",
    "same_compiled_view",
    "embed_quality_workflow",
    "parse_quality_view",
    "quality_view_to_xml",
    "validate_quality_view",
]
