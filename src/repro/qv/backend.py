"""Workflow emission: the staged compiler's backend.

Turns a pass-rewritten :class:`~repro.qv.ir.IRModule` into an
executable :class:`~repro.workflow.model.Workflow`.  Emission follows
the reference pipeline's rule order (annotators, one DE, QAs,
consolidation, actions) so that with no pass firing the emitted
topology — processor names, port wiring, consolidation slots, output
ports — is identical to ``QVCompiler._compile_reference``.  Pass
results change the picture only locally:

* an :class:`~repro.qv.ir.IREnrichment` with a ``plan`` emits a
  :class:`BatchEnrichmentProcessor` walking the precomputed
  per-repository sweeps;
* a fused :class:`~repro.qv.ir.IRBundle` emits a
  :class:`FusedAssertionProcessor` — one service invocation, one
  output map per member, wired into ConsolidateAssertions at each
  member's original declaration slot;
* an :class:`~repro.qv.ir.IRGate` emits a :class:`FilterGateProcessor`
  after the producing QA; later bundles and the actions then read
  their data set from the gate, and gate-fed assertion processors get
  ``skip_on_empty`` (a QA service invoked with an empty data set would
  otherwise operate on the *whole* input map).

The emitted workflow carries a precomputed wavefront schedule
(:meth:`~repro.workflow.model.Workflow.ensure_schedule`) that the
parallel enactor consumes instead of re-deriving stages per run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.annotation.map import AnnotationMap
from repro.annotation.store import AnnotationStore
from repro.process.actions import FilterAction
from repro.qv.compiler import (
    CONSOLIDATE,
    DATA_ENRICHMENT,
    DEGRADED_TAG,
    ActionProcessor,
    AnnotatorProcessor,
    AssertionProcessor,
    ConsolidateProcessor,
    DataEnrichmentProcessor,
    sanitize,
)
from repro.qv.ir import IRAssertion, IRBundle, IRModule
from repro.rdf import URIRef
from repro.services.messages import DataSetMessage
from repro.workflow.model import Workflow
from repro.workflow.processors import ON_FAILURE_DEFAULT, Processor

__all__ = [
    "FILTER_GATE",
    "STAGE_ANNOTATE",
    "STAGE_ASSERT",
    "STAGE_ENRICH",
    "BatchEnrichmentProcessor",
    "FilterGateProcessor",
    "FusedAssertionProcessor",
    "emit_workflow",
    "shardable_processors",
    "stage_chain",
]

#: Compiler-assigned name of the pushed-down filter gate processor.
FILTER_GATE = "FilterGate"


class BatchEnrichmentProcessor(DataEnrichmentProcessor):
    """A DE executing the compile-time per-repository column plan.

    Grouping and sweep order in ``plan`` replicate what the reference
    processor derives on every firing, so results and repository
    hit/miss accounting are identical; ``sources`` is kept for
    introspection and structural compatibility.
    """

    def __init__(
        self,
        name: str,
        sources: Mapping[URIRef, AnnotationStore],
        plan: List[Tuple[AnnotationStore, Tuple[URIRef, ...]]],
    ) -> None:
        super().__init__(name, sources)
        self.plan = list(plan)

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        amap = AnnotationMap(items)
        for store, evidence_types in self.plan:
            store.enrich(amap, items, list(evidence_types))
        return {"annotationMap": amap}


class FusedAssertionProcessor(Processor):
    """Several QAs of one service, executed in a single invocation.

    The service receives the member operator configurations under the
    ``"operators"`` context key, pays one round trip, and chains the
    member operators over the same restricted map (QA operators read
    only evidence vectors, so earlier members' tags cannot influence
    later members).  The merged result is split back into one output
    map per member — base map plus that member's tag only — which is
    byte-identical to what the member's standalone processor would
    have produced.
    """

    def __init__(
        self,
        name: str,
        service,
        member_configs: List[Mapping[str, Any]],
        skip_on_empty: bool = False,
    ) -> None:
        super().__init__(
            name,
            input_ports={"dataSet": 1, "annotationMap": 1},
            output_ports={
                f"annotationMap{i}": 1 for i in range(len(member_configs))
            },
        )
        self.service = service
        self.member_configs = [dict(config) for config in member_configs]
        self.skip_on_empty = skip_on_empty

    @staticmethod
    def _restricted(items: List[URIRef], amap: AnnotationMap) -> AnnotationMap:
        """The map the service restricts to (its pre-tag base)."""
        if not items:
            return amap.copy()
        restricted = amap.subset(items)
        for item in items:
            restricted.add_item(item)
        return restricted

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        amap = inputs.get("annotationMap") or AnnotationMap()
        if not items and self.skip_on_empty:
            return {port: amap.subset([]) for port in self.output_ports}
        merged = self.invoke_service(
            self.service,
            DataSetMessage(items),
            amap,
            context={
                "operators": [dict(c) for c in self.member_configs],
            },
        )
        base = self._restricted(items, amap)
        outputs: Dict[str, Any] = {}
        for i, config in enumerate(self.member_configs):
            tag_name = config["tag_name"]
            member_map = base.copy()
            for item in merged.items():
                tag = merged.get_tag(item, tag_name)
                if tag is not None:
                    member_map.set_tag(
                        item,
                        tag_name,
                        tag.value,
                        syn_type=tag.syn_type,
                        sem_type=tag.sem_type,
                    )
            outputs[f"annotationMap{i}"] = member_map
        return outputs

    def degraded(self, inputs: Dict[str, Any], policy: str) -> Dict[str, Any]:
        """Per-member degradation, mirroring the standalone QA processor.

        Every member passes the input map through; under
        ``default_annotation`` each additionally tags the input items
        as ``q:degraded`` under its own tag name.  Note the coupling a
        fused plan introduces: one failed invocation degrades all
        members together.
        """
        amap = inputs.get("annotationMap")
        base = amap.copy() if isinstance(amap, AnnotationMap) else AnnotationMap()
        items = list(inputs.get("dataSet") or [])
        outputs: Dict[str, Any] = {}
        for i, config in enumerate(self.member_configs):
            member_map = base.copy()
            tag_name = config.get("tag_name")
            if policy == ON_FAILURE_DEFAULT and tag_name:
                for item in items:
                    member_map.set_tag(item, tag_name, DEGRADED_TAG)
            outputs[f"annotationMap{i}"] = member_map
        return outputs


class FilterGateProcessor(Processor):
    """The pushed-down filter: narrows the data set on an early verdict.

    Evaluates the hoisted conjunction through a regular
    :class:`~repro.process.actions.FilterAction` (identical environment
    construction and error behaviour to the downstream actions) and
    emits the surviving items in input order.  Deliberately has no
    ``service`` attribute: it makes no remote call, so
    ``apply_resilience`` leaves it alone.
    """

    def __init__(
        self,
        name: str,
        predicate: str,
        namespaces,
        variable_bindings: Mapping[str, URIRef],
    ) -> None:
        super().__init__(
            name,
            input_ports={"dataSet": 1, "annotationMap": 1},
            output_ports={"dataSet": 1},
        )
        self.predicate = predicate
        self.gate = FilterAction(name, predicate, namespaces=namespaces)
        self.variable_bindings = dict(variable_bindings)

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        amap = inputs.get("annotationMap") or AnnotationMap()
        outcome = self.gate.execute(items, amap, self.variable_bindings)
        return {"dataSet": outcome.items(FilterAction.ACCEPTED)}


# -- stage-chain emission (process execution backend) -----------------------
#
# The multi-process runtime splits a compiled quality workflow into a
# *shardable* prefix — processors whose per-item outputs are independent
# of the rest of the collection, safe to run over a hash partition of
# the data set — and a *residual* suffix the parent runs over the merged
# frontier (collection-scoped QAs, consolidation, actions).  Worker
# processes run the shardable prefix as a chain of streaming stages:
# annotate -> enrich -> assert/filter.

#: Worker-side stage names, in hand-off order.
STAGE_ANNOTATE = "annotate"
STAGE_ENRICH = "enrich"
STAGE_ASSERT = "assert"

STAGE_ORDER = (STAGE_ANNOTATE, STAGE_ENRICH, STAGE_ASSERT)


def _item_partitionable(processor: Processor) -> bool:
    """Whether one processor's semantics survive item partitioning.

    Annotators and data enrichment are per-item by construction (keyed
    repository writes/reads).  A QA is partitionable only when its
    service declares ``item_local`` verdicts; a fused bundle inherits
    the declaration of its (single) service.  The filter gate evaluates
    its predicate per item.  Everything else — collection-scoped QAs,
    consolidation, actions — must see the whole data set.
    """
    if isinstance(processor, (AnnotatorProcessor, DataEnrichmentProcessor)):
        return True
    if isinstance(processor, (AssertionProcessor, FusedAssertionProcessor)):
        return bool(getattr(processor.service, "item_local", False))
    if isinstance(processor, FilterGateProcessor):
        return True
    return False


def shardable_processors(workflow: Workflow) -> Tuple[str, ...]:
    """The workflow's shardable prefix, in topological order.

    A processor is shardable iff it is item-partitionable *and* every
    upstream processor (data and control links) is itself shardable —
    a value computed downstream of a collection-scoped stage may depend
    on the whole data set even if the processor's own operator is
    per-item.
    """
    shardable: set = set()
    order = workflow.topological_order()
    for name in order:
        processor = workflow.processors[name]
        if not _item_partitionable(processor):
            continue
        if any(dep not in shardable for dep in workflow.upstream_of(name)):
            continue
        shardable.add(name)
    return tuple(name for name in order if name in shardable)


def _stage_of(processor: Processor) -> str:
    if isinstance(processor, AnnotatorProcessor):
        return STAGE_ANNOTATE
    if isinstance(processor, DataEnrichmentProcessor):
        return STAGE_ENRICH
    return STAGE_ASSERT


def stage_chain(workflow: Workflow) -> Dict[str, Tuple[str, ...]]:
    """Shardable processors grouped into the worker's streaming stages.

    Returns ``{stage: (processor, ...)}`` with processors in topological
    order within each stage.  The grouping is a valid coarsening of the
    wavefront schedule for compiled quality workflows: annotators never
    depend on enrichment or assertions, and enrichment never depends on
    assertions — verified here so a structurally surprising workflow
    fails at planning time, not mid-stream.
    """
    shardable = shardable_processors(workflow)
    region = set(shardable)
    stages: Dict[str, List[str]] = {stage: [] for stage in STAGE_ORDER}
    rank = {stage: index for index, stage in enumerate(STAGE_ORDER)}
    for name in shardable:
        stage = _stage_of(workflow.processors[name])
        for dep in workflow.upstream_of(name):
            if dep in region and rank[_stage_of(workflow.processors[dep])] > rank[stage]:
                raise ValueError(
                    f"processor {name!r} ({stage}) depends on {dep!r} of a "
                    f"later stage; the workflow does not fit the "
                    f"annotate/enrich/assert chain"
                )
        stages[stage].append(name)
    return {stage: tuple(names) for stage, names in stages.items()}


def _member_port(bundle: IRBundle, member: IRAssertion) -> str:
    """The output port carrying one member's annotation map."""
    if not bundle.fused:
        return "annotationMap"
    return f"annotationMap{bundle.members.index(member)}"


def emit_workflow(ir: IRModule) -> Workflow:
    """Emit the executable workflow for a (possibly rewritten) module."""
    workflow = Workflow(f"qv:{ir.name}")
    workflow.add_input("dataSet")
    workflow.add_output("annotationMap")

    # Rule 1: annotators first.
    for annotator in ir.annotators:
        processor = AnnotatorProcessor(
            annotator.name,
            annotator.service,
            annotator.store,
            annotator.evidence_types,
            data_class=annotator.data_class,
        )
        workflow.add_processor(processor)
        workflow.connect("", "dataSet", processor.name, "dataSet")

    # Rule 2: the single DE (plan-driven when batching fired).
    if ir.enrichment.plan is not None:
        enrichment: DataEnrichmentProcessor = BatchEnrichmentProcessor(
            DATA_ENRICHMENT, ir.enrichment.columns, ir.enrichment.plan
        )
    else:
        enrichment = DataEnrichmentProcessor(
            DATA_ENRICHMENT, ir.enrichment.columns
        )
    workflow.add_processor(enrichment)
    workflow.connect("", "dataSet", DATA_ENRICHMENT, "dataSet")
    for annotator in ir.annotators:
        workflow.control(annotator.name, DATA_ENRICHMENT)

    gate = ir.gate
    producer_bundle: Optional[IRBundle] = None
    producer_member: Optional[IRAssertion] = None
    if gate is not None:
        producer_bundle, producer_member = next(
            (bundle, member)
            for bundle in ir.bundles
            for member in bundle.members
            if member.name == gate.producer
        )

    # Rule 3: QA bundles.  Gated bundles read their data set from the
    # gate, which is added below once its producer processor exists.
    emitted: List[Tuple[IRBundle, Processor, bool]] = []
    for bundle in ir.bundles:
        gated = gate is not None and bundle is not producer_bundle
        if bundle.fused:
            processor: Processor = FusedAssertionProcessor(
                bundle.name,
                bundle.service,
                [member.config() for member in bundle.members],
                skip_on_empty=gated,
            )
        else:
            member = bundle.members[0]
            processor = AssertionProcessor(
                member.name, member.service, member.config(),
                skip_on_empty=gated,
            )
        workflow.add_processor(processor)
        workflow.connect(
            DATA_ENRICHMENT, "annotationMap", processor.name, "annotationMap"
        )
        emitted.append((bundle, processor, gated))

    if gate is not None:
        producer_processor = next(
            processor
            for bundle, processor, _ in emitted
            if bundle is producer_bundle
        )
        gate_processor = FilterGateProcessor(
            FILTER_GATE, gate.predicate, ir.namespaces, ir.variable_bindings
        )
        workflow.add_processor(gate_processor)
        workflow.connect("", "dataSet", FILTER_GATE, "dataSet")
        workflow.connect(
            producer_processor.name,
            _member_port(producer_bundle, producer_member),
            FILTER_GATE,
            "annotationMap",
        )
    for bundle, processor, gated in emitted:
        if gated:
            workflow.connect(FILTER_GATE, "dataSet", processor.name, "dataSet")
        else:
            workflow.connect("", "dataSet", processor.name, "dataSet")

    # Rule 4: consolidation, wired by original declaration slot.
    members = ir.assertions()
    if members:
        consolidate = ConsolidateProcessor(CONSOLIDATE, len(members))
        workflow.add_processor(consolidate)
        port_of: Dict[str, Tuple[str, str]] = {}
        for bundle, processor, _ in emitted:
            for member in bundle.members:
                port_of[member.name] = (
                    processor.name,
                    _member_port(bundle, member),
                )
        for slot, member in enumerate(members):
            source_name, source_port = port_of[member.name]
            workflow.connect(source_name, source_port, CONSOLIDATE, f"map{slot}")
    else:
        consolidate = ConsolidateProcessor(CONSOLIDATE, 1)
        workflow.add_processor(consolidate)
        workflow.connect(DATA_ENRICHMENT, "annotationMap", CONSOLIDATE, "map0")
    workflow.connect(CONSOLIDATE, "annotationMap", "", "annotationMap")

    # Rule 5: actions last; gated plans feed them the surviving items.
    for action in ir.actions:
        processor = ActionProcessor(
            action.name, action.spec, ir.variable_bindings, ir.namespaces
        )
        workflow.add_processor(processor)
        if gate is not None:
            workflow.connect(FILTER_GATE, "dataSet", processor.name, "dataSet")
        else:
            workflow.connect("", "dataSet", processor.name, "dataSet")
        workflow.connect(
            CONSOLIDATE, "annotationMap", processor.name, "annotationMap"
        )
        for group, port in processor.group_ports.items():
            output = f"{sanitize(action.name)}_{port}"
            workflow.add_output(output)
            workflow.connect(processor.name, port, "", output)

    workflow.ensure_schedule()
    return workflow
