"""Compilation of quality views into executable quality workflows.

The compiler follows the rules of paper Sec. 6.1 exactly:

1. *Annotators are added first*; their data-set input comes from the
   workflow input, their output is empty — they only write to their
   repository.
2. By analysing annotator and QA declarations, the compiler determines
   the association between each evidence type and the repository where
   its value is found, adds *one single Data Enrichment operator*
   configured with that association, and installs *a control link from
   each annotator to the DE*.
3. The DE's output annotation map *feeds all QA processors* through the
   common service interface.
4. A ``ConsolidateAssertions`` task merges the per-QA maps into a
   consistent view of multiple assertions.
5. *Action processors are added next*, fed from the consolidated map;
   their group ports carry the surviving data back out.

The compiled workflow has one input, ``dataSet`` (the item URIs), and
outputs ``annotationMap`` plus one port per action group.

Two compilation pipelines share this module's processor classes:

* ``compile(spec, optimize=False)`` — the single-shot reference
  translation below, rule by rule;
* ``compile(spec)`` (the default) — the staged pipeline: frontend
  lowering to a typed IR (:mod:`repro.qv.ir`), rewrite passes
  (:mod:`repro.qv.passes`), and workflow emission
  (:mod:`repro.qv.backend`).  With no pass firing it emits the same
  topology as the reference; the differential suite pins byte-equal
  outputs between the two.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.annotation.manager import RepositoryManager
from repro.annotation.map import AnnotationMap
from repro.annotation.store import AnnotationStore
from repro.binding.model import BindingError
from repro.binding.registry import BindingRegistry
from repro.ontology.iq_model import IQModel
from repro.process.actions import DEFAULT_GROUP, FilterAction, SplitterAction
from repro.qv.spec import ActionSpec, QualityViewSpec
from repro.qv.validator import validate_quality_view
from repro.rdf import Q, URIRef
from repro.services.interface import AnnotationService, QualityAssertionService
from repro.services.messages import DataSetMessage
from repro.services.registry import ServiceRegistry
from repro.observability import get_registry
from repro.workflow.model import Workflow
from repro.workflow.processors import ON_FAILURE_DEFAULT, Processor

if TYPE_CHECKING:
    from repro.qv.passes.base import CompileOptions, PassReport

#: Compiler-assigned processor names (checked by the Fig. 6 benchmark).
DATA_ENRICHMENT = "DataEnrichment"
CONSOLIDATE = "ConsolidateAssertions"

#: Tag value marking an assertion degraded under ``default_annotation``
#: (the item's evidence was missing / its QA service kept failing).
DEGRADED_TAG = Q.degraded


class CompilationError(ValueError):
    """Raised when a view cannot be compiled for the target environment."""


def sanitize(name: str) -> str:
    """Turn an arbitrary name into a safe port identifier."""
    cleaned = re.sub(r"[^A-Za-z0-9_]+", "_", name).strip("_")
    return cleaned or "port"


def check_output_ports(spec: QualityViewSpec) -> None:
    """Reject sanitized port-name collisions before emission.

    :func:`sanitize` is many-to-one (``"top k!"`` and ``"top k?"`` both
    become ``top_k``), so two distinct action or group names can claim
    the same workflow output port.  Without this check the second
    silently shadows the first (group ports within one action) or dies
    with an unhelpful duplicate-output error (across actions).  Both
    compilation pipelines run this check.
    """
    claimed: Dict[str, Tuple[str, str]] = {}
    for action in spec.actions:
        if action.kind == "filter":
            groups = [FilterAction.ACCEPTED]
        else:
            groups = [g.group for g in action.groups] + [DEFAULT_GROUP]
        ports: Dict[str, str] = {}
        for group in groups:
            port = sanitize(group)
            clash = ports.get(port)
            if clash is not None and clash != group:
                raise CompilationError(
                    f"action {action.name!r}: groups {clash!r} and {group!r} "
                    f"both sanitize to port name {port!r}; rename one group"
                )
            ports[port] = group
            output = f"{sanitize(action.name)}_{port}"
            owner = claimed.get(output)
            if owner is not None and owner != (action.name, group):
                raise CompilationError(
                    f"actions {owner[0]!r} and {action.name!r} collide on "
                    f"workflow output port {output!r} (their names sanitize "
                    f"to the same identifier); rename one action"
                )
            claimed[output] = (action.name, group)


class AnnotatorProcessor(Processor):
    """A compiled annotation operator: computes evidence, writes the
    repository, produces no data output (control-linked to the DE)."""

    def __init__(
        self,
        name: str,
        service: AnnotationService,
        store: AnnotationStore,
        evidence_types: List[URIRef],
        data_class: Optional[URIRef] = None,
    ) -> None:
        super().__init__(name, input_ports={"dataSet": 1}, output_ports={})
        self.service = service
        self.store = store
        self.evidence_types = list(evidence_types)
        self.data_class = data_class

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        computed = self.invoke_service(
            self.service, DataSetMessage(items), AnnotationMap()
        )
        wanted = set(self.evidence_types)
        restricted = AnnotationMap()
        for item in computed.items():
            restricted.add_item(item)
            for evidence_type, value in computed.evidence_for(item).items():
                if evidence_type in wanted:
                    restricted.set_evidence(item, evidence_type, value)
        self.store.annotate_map(restricted, data_class=self.data_class)
        return {}


class DataEnrichmentProcessor(Processor):
    """The single compiled DE: reads (item, evidence) keys per repository."""

    def __init__(self, name: str, sources: Mapping[URIRef, AnnotationStore]) -> None:
        super().__init__(
            name, input_ports={"dataSet": 1}, output_ports={"annotationMap": 1}
        )
        self.sources = dict(sources)

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        amap = AnnotationMap(items)
        by_store: Dict[AnnotationStore, List[URIRef]] = {}
        for evidence_type, store in self.sources.items():
            by_store.setdefault(store, []).append(evidence_type)
        for store, evidence_types in by_store.items():
            store.enrich(amap, items, evidence_types)
        return {"annotationMap": amap}


class AssertionProcessor(Processor):
    """A compiled QA: invokes the bound service with the view's config.

    ``skip_on_empty`` is set by the optimizing backend on processors fed
    from a filter gate: an empty (fully filtered) data set then skips
    the service invocation entirely and contributes an empty map.  The
    reference pipeline never sets it — a QA service invoked with an
    empty data set operates on the whole input map, which is the wire
    contract this flag must not change for ungated processors.
    """

    def __init__(
        self,
        name: str,
        service: QualityAssertionService,
        config,
        skip_on_empty: bool = False,
    ) -> None:
        super().__init__(
            name,
            input_ports={"dataSet": 1, "annotationMap": 1},
            output_ports={"annotationMap": 1},
        )
        self.service = service
        self.config = dict(config)
        self.skip_on_empty = skip_on_empty

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        amap = inputs.get("annotationMap") or AnnotationMap()
        if not items and self.skip_on_empty:
            return {"annotationMap": amap.subset([])}
        result = self.invoke_service(
            self.service, DataSetMessage(items), amap, context=self.config
        )
        return {"annotationMap": result}

    def degraded(self, inputs: Dict[str, Any], policy: str) -> Dict[str, Any]:
        """Pass the input map through; optionally tag items as degraded.

        Under ``skip`` the QA simply contributes no tag (downstream
        conditions see the tag as absent); ``default_annotation``
        additionally tags every input item with ``q:degraded`` under
        the view's tag name, so actions and reports can distinguish
        "assertion skipped" from "assertion never configured".
        """
        outputs = super().degraded(inputs, policy)
        tag_name = self.config.get("tag_name")
        if policy == ON_FAILURE_DEFAULT and tag_name:
            amap = outputs["annotationMap"]
            for item in list(inputs.get("dataSet") or []):
                amap.set_tag(item, tag_name, DEGRADED_TAG)
        return outputs


class ConsolidateProcessor(Processor):
    """Merges the per-QA annotation maps into one consistent view."""

    def __init__(self, name: str, n_maps: int) -> None:
        if n_maps < 1:
            raise CompilationError("nothing to consolidate")
        super().__init__(
            name,
            input_ports={f"map{i}": 1 for i in range(n_maps)},
            output_ports={"annotationMap": 1},
        )
        self.n_maps = n_maps

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        merged = AnnotationMap()
        for i in range(self.n_maps):
            amap = inputs.get(f"map{i}")
            if amap is not None:
                merged.merge(amap)
        return {"annotationMap": merged}


class ActionProcessor(Processor):
    """A compiled action: routes items to one port per group."""

    def __init__(
        self,
        name: str,
        action_spec: ActionSpec,
        variable_bindings: Mapping[str, URIRef],
        namespaces,
    ) -> None:
        if action_spec.kind == "filter":
            self.action = FilterAction(
                action_spec.name, action_spec.condition or "", namespaces=namespaces
            )
            groups = [FilterAction.ACCEPTED]
        else:
            self.action = SplitterAction(
                action_spec.name,
                [(g.group, g.condition) for g in action_spec.groups],
                namespaces=namespaces,
            )
            groups = [g.group for g in action_spec.groups] + [DEFAULT_GROUP]
        self.group_ports: Dict[str, str] = {}
        for group in groups:
            port = sanitize(group)
            clash = next(
                (g for g, p in self.group_ports.items() if p == port), None
            )
            if clash is not None:
                raise CompilationError(
                    f"action {action_spec.name!r}: groups {clash!r} and "
                    f"{group!r} both sanitize to port name {port!r}; "
                    f"rename one group"
                )
            self.group_ports[group] = port
        output_ports = {port: 1 for port in self.group_ports.values()}
        output_ports["outcome"] = 1
        super().__init__(
            name,
            input_ports={"dataSet": 1, "annotationMap": 1},
            output_ports=output_ports,
        )
        self.variable_bindings = dict(variable_bindings)

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Execute this compiled step; see the class docstring."""

        items = list(inputs.get("dataSet") or [])
        amap = inputs.get("annotationMap") or AnnotationMap()
        outcome = self.action.execute(items, amap, self.variable_bindings)
        outputs: Dict[str, Any] = {"outcome": outcome}
        for group, port in self.group_ports.items():
            outputs[port] = outcome.items(group)
        return outputs


class QVCompiler:
    """Targets quality views at the workflow environment."""

    def __init__(
        self,
        iq_model: IQModel,
        services: ServiceRegistry,
        bindings: BindingRegistry,
        repositories: RepositoryManager,
    ) -> None:
        self.iq_model = iq_model
        self.services = services
        self.bindings = bindings
        self.repositories = repositories
        #: Optional fingerprint-keyed cache of compiled plans (any
        #: object with ``get_or_compile(fingerprint, thunk)``, e.g.
        #: :class:`repro.serving.plans.PlanCache`).  When installed,
        #: default-option optimizing compiles of signature-identical
        #: views share one emitted workflow — the serving layer keys
        #: on this so N tenants registering the same view cost one
        #: compilation.
        self.plan_cache: Optional[Any] = None

    # -- resolution ----------------------------------------------------------

    def _resolve_service(self, service_type: URIRef, service_name: str):
        """Binding registry first (the paper's binding step), then names."""
        try:
            endpoint = self.bindings.resolve_endpoint(service_type)
            return self.services.by_endpoint(endpoint)
        except (BindingError, KeyError):
            pass
        if service_name in self.services:
            return self.services.by_name(service_name)
        try:
            return self.services.resolve_concept(service_type)
        except KeyError:
            raise CompilationError(
                f"no binding or deployed service for operator type "
                f"{service_type} (service name {service_name!r})"
            ) from None

    def _store(self, repository_ref: str) -> AnnotationStore:
        try:
            return self.repositories.repository(repository_ref)
        except KeyError as exc:
            raise CompilationError(str(exc)) from exc

    # -- compilation ------------------------------------------------------------

    def compile(
        self,
        spec: QualityViewSpec,
        validate: bool = True,
        optimize: bool = True,
        options: Optional["CompileOptions"] = None,
    ) -> Workflow:
        """Compile a validated view into a quality workflow.

        ``optimize=True`` (the default) runs the staged pipeline —
        frontend lowering, rewrite passes, backend emission — and
        annotates the result with a wavefront schedule.
        ``optimize=False`` runs the single-shot reference translation;
        it accepts no ``options`` and serves as the differential
        baseline for the optimizing pipeline.
        """
        if not optimize:
            if options is not None:
                raise CompilationError(
                    "compilation options require optimize=True "
                    "(the reference pipeline takes none)"
                )
            return self._compile_reference(spec, validate=validate)
        if self.plan_cache is not None and options is None and validate:
            # Only the default-option, validated pipeline is cacheable:
            # the fingerprint covers the view signature, not compile
            # options, so non-default options always compile fresh.
            from repro.qv.ir import view_fingerprint

            return self.plan_cache.get_or_compile(
                view_fingerprint(spec),
                lambda: self.compile_with_report(spec, validate=True)[0],
            )
        workflow, _report = self.compile_with_report(
            spec, validate=validate, options=options
        )
        return workflow

    def compile_with_report(
        self,
        spec: QualityViewSpec,
        validate: bool = True,
        options: Optional["CompileOptions"] = None,
    ) -> "Tuple[Workflow, PassReport]":
        """Run the staged pipeline; also return the per-pass report.

        The report carries the frontend's verification notes and, for
        every optimization pass, whether it fired, its wall-clock cost
        and its IR deltas — ``python -m repro compile --explain``
        renders it.
        """
        from repro.qv.backend import emit_workflow
        from repro.qv.ir import lower_view
        from repro.qv.passes import PassManager, default_passes
        from repro.qv.passes.base import CompileOptions

        opts = options if options is not None else CompileOptions()
        ir = lower_view(
            spec, self, validate=validate,
            observed_outputs=opts.observed_outputs,
        )
        report = PassManager(default_passes(opts)).run(ir)
        workflow = emit_workflow(ir)
        self._stamp(workflow, spec, mode="optimized")
        return workflow, report

    def _stamp(self, workflow: Workflow, spec: QualityViewSpec, mode: str) -> None:
        """Record provenance on the emitted workflow + count the run."""
        from repro.qv.ir import view_fingerprint

        workflow.source_fingerprint = view_fingerprint(spec)
        workflow.compile_mode = mode
        get_registry().counter(
            "repro_qv_compile_runs_total",
            "Quality-view compilations by pipeline mode.",
            labels=("mode",),
        ).labels(mode=mode).inc()

    def _compile_reference(
        self, spec: QualityViewSpec, validate: bool = True
    ) -> Workflow:
        """The paper's rule-by-rule translation (differential baseline)."""

        check_output_ports(spec)
        canonical: Dict[URIRef, URIRef] = {}
        if validate:
            report = validate_quality_view(
                spec,
                self.iq_model,
                known_repositories=set(self.repositories.names()),
            )
            report.raise_if_failed()
            canonical = report.canonicalised

        def canon(evidence: URIRef) -> URIRef:
            return canonical.get(evidence, evidence)

        workflow = Workflow(f"qv:{spec.name}")
        workflow.add_input("dataSet")
        workflow.add_output("annotationMap")

        # Rule 1: annotators first.
        annotator_names: List[str] = []
        for annotator in spec.annotators:
            service = self._resolve_service(
                annotator.service_type, annotator.service_name
            )
            if not isinstance(service, AnnotationService):
                raise CompilationError(
                    f"operator {annotator.service_name!r} resolved to "
                    f"{type(service).__name__}; expected an annotation service"
                )
            processor = AnnotatorProcessor(
                annotator.service_name,
                service,
                self._store(annotator.repository_ref),
                [canon(e) for e in annotator.evidence_types()],
                data_class=self.iq_model.DataEntity,
            )
            workflow.add_processor(processor)
            workflow.connect("", "dataSet", processor.name, "dataSet")
            annotator_names.append(processor.name)

        # Rule 2: one DE, configured with the evidence -> repository map.
        sources: Dict[URIRef, AnnotationStore] = {}
        for assertion in spec.assertions:
            for variable in assertion.variables:
                evidence = canon(variable.evidence)
                sources[evidence] = self._store(variable.repository_ref)
        for annotator in spec.annotators:
            for variable in annotator.variables:
                evidence = canon(variable.evidence)
                sources.setdefault(evidence, self._store(variable.repository_ref))
        enrichment = DataEnrichmentProcessor(DATA_ENRICHMENT, sources)
        workflow.add_processor(enrichment)
        workflow.connect("", "dataSet", DATA_ENRICHMENT, "dataSet")
        for annotator_name in annotator_names:
            workflow.control(annotator_name, DATA_ENRICHMENT)

        # Rule 3: the DE output feeds all QA processors.
        assertion_names: List[str] = []
        for assertion in spec.assertions:
            service = self._resolve_service(
                assertion.service_type, assertion.service_name
            )
            if not isinstance(service, QualityAssertionService):
                raise CompilationError(
                    f"operator {assertion.service_name!r} resolved to "
                    f"{type(service).__name__}; expected a QA service"
                )
            config = {
                "name": assertion.service_name,
                "tag_name": assertion.tag_name,
                "variables": {
                    v.name: canon(v.evidence) for v in assertion.variables
                },
            }
            processor = AssertionProcessor(assertion.service_name, service, config)
            workflow.add_processor(processor)
            workflow.connect("", "dataSet", processor.name, "dataSet")
            workflow.connect(
                DATA_ENRICHMENT, "annotationMap", processor.name, "annotationMap"
            )
            assertion_names.append(processor.name)

        # Rule 4: consolidate the assertions.
        if assertion_names:
            consolidate = ConsolidateProcessor(CONSOLIDATE, len(assertion_names))
            workflow.add_processor(consolidate)
            for index, name in enumerate(assertion_names):
                workflow.connect(name, "annotationMap", CONSOLIDATE, f"map{index}")
        else:
            consolidate = ConsolidateProcessor(CONSOLIDATE, 1)
            workflow.add_processor(consolidate)
            workflow.connect(DATA_ENRICHMENT, "annotationMap", CONSOLIDATE, "map0")
        workflow.connect(CONSOLIDATE, "annotationMap", "", "annotationMap")

        # Rule 5: actions last, fed from the consolidated map.
        bindings = {
            name: canon(evidence)
            for name, evidence in spec.variable_bindings().items()
        }
        for action_spec in spec.actions:
            processor = ActionProcessor(
                action_spec.name, action_spec, bindings, spec.namespaces
            )
            workflow.add_processor(processor)
            workflow.connect("", "dataSet", processor.name, "dataSet")
            workflow.connect(
                CONSOLIDATE, "annotationMap", processor.name, "annotationMap"
            )
            for group, port in processor.group_ports.items():
                output = f"{sanitize(action_spec.name)}_{port}"
                workflow.add_output(output)
                workflow.connect(processor.name, port, "", output)
        self._stamp(workflow, spec, mode="reference")
        return workflow
