"""Deployment descriptors: embedding quality workflows in host workflows.

Paper Sec. 6.2: embedding needs "(i) a set of adapters that surround the
embedded quality flows, and (ii) the connections among host and embedded
processors, which may occur through the adapters", declared in a
succinct XML syntax.  ``embed_quality_workflow`` merges a compiled
quality workflow into a copy of the host, adds the declared adapter
processors, cuts the host links the quality flow replaces, and installs
the connectors.
"""

from __future__ import annotations

import copy
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.workflow.model import DataLink, Port, Workflow, WorkflowError
from repro.workflow.processors import AdapterProcessor, Processor


class DeploymentError(ValueError):
    """Raised on invalid deployment descriptors."""


@dataclass(frozen=True)
class AdapterSpec:
    """A registered adapter processor to add to the embedded workflow."""

    name: str
    adapter: Processor


@dataclass(frozen=True)
class ConnectorSpec:
    """A data link to install between host/quality/adapter processors.

    Port references use ``processor.port``; an empty processor addresses
    the workflow's own ports.
    """

    source: Port
    sink: Port


@dataclass
class DeploymentDescriptor:
    """Everything needed to embed one quality workflow in one host."""

    name: str
    adapters: List[AdapterSpec] = field(default_factory=list)
    connectors: List[ConnectorSpec] = field(default_factory=list)
    #: Host data links the embedding replaces (source, sink) ports.
    cut_links: List[Tuple[Port, Port]] = field(default_factory=list)
    #: Prefix applied to embedded quality processors to avoid collisions.
    prefix: str = ""

    def connect(
        self, source: str, source_port: str, sink: str, sink_port: str
    ) -> "DeploymentDescriptor":
        """Declare a connector; returns self for chaining."""

        self.connectors.append(
            ConnectorSpec(Port(source, source_port), Port(sink, sink_port))
        )
        return self

    def cut(
        self, source: str, source_port: str, sink: str, sink_port: str
    ) -> "DeploymentDescriptor":
        """Declare a host link to remove; returns self for chaining."""

        self.cut_links.append((Port(source, source_port), Port(sink, sink_port)))
        return self

    def add_adapter(self, adapter: Processor) -> "DeploymentDescriptor":
        """Register an adapter processor; returns self."""

        self.adapters.append(AdapterSpec(adapter.name, adapter))
        return self

    # -- the succinct XML syntax -------------------------------------------

    def to_xml(self) -> str:
        """The descriptor in its succinct XML syntax."""

        root = ET.Element("deployment", {"name": self.name})
        for adapter in self.adapters:
            ET.SubElement(root, "adapter", {"name": adapter.name})
        for source, sink in self.cut_links:
            ET.SubElement(root, "cut", {"source": str(source), "sink": str(sink)})
        for connector in self.connectors:
            ET.SubElement(
                root,
                "connector",
                {"source": str(connector.source), "sink": str(connector.sink)},
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(
        cls, text: str, adapter_registry: Optional[Dict[str, Processor]] = None
    ) -> "DeploymentDescriptor":
        """Parse descriptor XML; adapters resolve from a name registry."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise DeploymentError(f"malformed deployment XML: {exc}") from exc
        descriptor = cls(name=root.get("name") or "deployment")
        registry = adapter_registry or {}
        for element in root:
            if element.tag == "adapter":
                name = element.get("name") or ""
                if name not in registry:
                    raise DeploymentError(
                        f"adapter {name!r} is not registered; "
                        f"known: {sorted(registry)}"
                    )
                descriptor.adapters.append(AdapterSpec(name, registry[name]))
            elif element.tag == "cut":
                descriptor.cut_links.append(
                    (
                        _parse_port(element.get("source") or ""),
                        _parse_port(element.get("sink") or ""),
                    )
                )
            elif element.tag == "connector":
                descriptor.connectors.append(
                    ConnectorSpec(
                        _parse_port(element.get("source") or ""),
                        _parse_port(element.get("sink") or ""),
                    )
                )
            else:
                raise DeploymentError(f"unexpected element <{element.tag}>")
        return descriptor


def input_sinks(quality: Workflow, input_name: str) -> List[Port]:
    """The processor ports a quality-workflow input feeds.

    Embedding drops workflow-level links, so the descriptor must rewire
    every one of these sinks to the host-side source (usually an
    adapter output); this helper enumerates them.
    """
    return [
        link.sink
        for link in quality.data_links
        if not link.source.processor and link.source.port == input_name
    ]


def output_source(quality: Workflow, output_name: str) -> Port:
    """The internal processor port feeding a quality-workflow output."""
    for link in quality.data_links:
        if not link.sink.processor and link.sink.port == output_name:
            return link.source
    raise DeploymentError(
        f"quality workflow has no output named {output_name!r}"
    )


def _parse_port(text: str) -> Port:
    if "." in text:
        processor, _, port = text.rpartition(".")
        return Port(processor, port)
    return Port("", text)


def embed_quality_workflow(
    host: Workflow,
    quality: Workflow,
    descriptor: DeploymentDescriptor,
    name: Optional[str] = None,
) -> Workflow:
    """Build the embedded workflow (the paper's Fig. 6 construction).

    The host is copied, the quality workflow's processors are merged in
    (under the descriptor's prefix), the replaced host links are cut,
    adapters are added, and the declared connectors are installed.
    Connector references to quality processors use their *original*
    (unprefixed) names; the prefix is applied automatically.
    """
    embedded = Workflow(name or f"{host.name}+{quality.name}")
    embedded.inputs = list(host.inputs)
    embedded.outputs = list(host.outputs)
    for processor_name, processor in host.processors.items():
        embedded.processors[processor_name] = processor
    embedded.data_links = list(host.data_links)
    embedded.control_links = list(host.control_links)

    # cut the host links the quality flow replaces
    for source, sink in descriptor.cut_links:
        before = len(embedded.data_links)
        embedded.data_links = [
            link
            for link in embedded.data_links
            if not (link.source == source and link.sink == sink)
        ]
        if len(embedded.data_links) == before:
            raise DeploymentError(
                f"cut link {source} -> {sink} does not exist in the host"
            )

    renamed = embedded.merge(quality, prefix=descriptor.prefix)

    for adapter in descriptor.adapters:
        embedded.add_processor(adapter.adapter)

    def resolve(port: Port) -> Port:
        if port.processor in renamed:
            return Port(renamed[port.processor], port.port)
        return port

    for connector in descriptor.connectors:
        embedded.link(resolve(connector.source), resolve(connector.sink))

    embedded.validate()
    return embedded
