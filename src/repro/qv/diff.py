"""Structural diffing of quality views.

Peers exchanging views through the library (Sec. 7 item iv) need to see
what changed between versions before adopting one: which operators were
added or removed, which variable bindings moved, and — most often —
how the action conditions were edited.  ``diff_views`` computes a
structured diff; ``render_diff`` prints it.

Comparisons run over the compiler frontend's *canonical signatures*
(:mod:`repro.qv.ir`): condition text is normalised through the
parse/unparse round trip and operator blocks compare by content, not
formatting — so a diff is stable under whitespace edits and under the
processor reordering an optimizing compilation may introduce.  For
already-compiled workflows, :func:`same_compiled_view` answers whether
two workflows (however differently optimized) came from the same view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.qv.ir import (
    action_signature,
    annotator_signature,
    assertion_signature,
)
from repro.qv.spec import QualityViewSpec
from repro.workflow.model import Workflow


@dataclass
class ViewDiff:
    """Every structural difference between two views."""

    added_annotators: List[str] = field(default_factory=list)
    removed_annotators: List[str] = field(default_factory=list)
    changed_annotators: List[str] = field(default_factory=list)
    added_assertions: List[str] = field(default_factory=list)
    removed_assertions: List[str] = field(default_factory=list)
    changed_assertions: List[str] = field(default_factory=list)
    added_actions: List[str] = field(default_factory=list)
    removed_actions: List[str] = field(default_factory=list)
    #: action name -> (old condition(s), new condition(s))
    changed_conditions: Dict[str, Tuple[List[str], List[str]]] = field(
        default_factory=dict
    )

    def is_empty(self) -> bool:
        """True when the two views are structurally identical."""
        return not any(
            (
                self.added_annotators,
                self.removed_annotators,
                self.changed_annotators,
                self.added_assertions,
                self.removed_assertions,
                self.changed_assertions,
                self.added_actions,
                self.removed_actions,
                self.changed_conditions,
            )
        )


def same_compiled_view(a: Workflow, b: Workflow) -> bool:
    """Whether two compiled workflows came from the same quality view.

    Both compilation pipelines stamp the source view's canonical
    fingerprint (:func:`repro.qv.ir.view_fingerprint`) on the emitted
    workflow, so an optimized and a reference compilation of one view
    compare equal here even though their processor graphs differ.
    Hand-built workflows (no fingerprint) never compare equal.
    """
    return (
        a.source_fingerprint is not None
        and a.source_fingerprint == b.source_fingerprint
    )


def diff_views(old: QualityViewSpec, new: QualityViewSpec) -> ViewDiff:
    """The structural differences from ``old`` to ``new``."""
    diff = ViewDiff()

    old_annotators = {a.service_name: a for a in old.annotators}
    new_annotators = {a.service_name: a for a in new.annotators}
    diff.added_annotators = sorted(set(new_annotators) - set(old_annotators))
    diff.removed_annotators = sorted(set(old_annotators) - set(new_annotators))
    for name in sorted(set(old_annotators) & set(new_annotators)):
        if annotator_signature(old_annotators[name]) != annotator_signature(
            new_annotators[name]
        ):
            diff.changed_annotators.append(name)

    old_assertions = {a.service_name: a for a in old.assertions}
    new_assertions = {a.service_name: a for a in new.assertions}
    diff.added_assertions = sorted(set(new_assertions) - set(old_assertions))
    diff.removed_assertions = sorted(set(old_assertions) - set(new_assertions))
    for name in sorted(set(old_assertions) & set(new_assertions)):
        if assertion_signature(old_assertions[name]) != assertion_signature(
            new_assertions[name]
        ):
            diff.changed_assertions.append(name)

    old_actions = {a.name: a for a in old.actions}
    new_actions = {a.name: a for a in new.actions}
    diff.added_actions = sorted(set(new_actions) - set(old_actions))
    diff.removed_actions = sorted(set(old_actions) - set(new_actions))
    for name in sorted(set(old_actions) & set(new_actions)):
        # Signatures canonicalise the condition text, so pure
        # formatting edits (whitespace, redundant parentheses) do not
        # register; the reported texts stay as written.
        if action_signature(old_actions[name]) != action_signature(
            new_actions[name]
        ):
            diff.changed_conditions[name] = (
                old_actions[name].conditions(),
                new_actions[name].conditions(),
            )
    return diff


def render_diff(diff: ViewDiff) -> str:
    """A unified-diff-flavoured plain-text rendering."""
    if diff.is_empty():
        return "views are structurally identical\n"
    lines: List[str] = []
    for label, added, removed, changed in (
        ("annotator", diff.added_annotators, diff.removed_annotators,
         diff.changed_annotators),
        ("assertion", diff.added_assertions, diff.removed_assertions,
         diff.changed_assertions),
        ("action", diff.added_actions, diff.removed_actions, []),
    ):
        for name in added:
            lines.append(f"+ {label} {name!r}")
        for name in removed:
            lines.append(f"- {label} {name!r}")
        for name in changed:
            lines.append(f"~ {label} {name!r} (configuration changed)")
    for action, (old_conditions, new_conditions) in sorted(
        diff.changed_conditions.items()
    ):
        lines.append(f"~ action {action!r} conditions:")
        for condition in old_conditions:
            lines.append(f"  - {condition}")
        for condition in new_conditions:
            lines.append(f"  + {condition}")
    return "\n".join(lines) + "\n"
