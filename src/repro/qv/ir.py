"""Typed intermediate representation of quality views.

The staged compiler's middle layer: the *frontend* (:func:`lower_view`)
resolves a :class:`~repro.qv.spec.QualityViewSpec` against a concrete
framework — services, repositories, evidence canonicalisation — into an
:class:`IRModule`, absorbing the semantic checks of
:mod:`repro.qv.validator` as its verification step.  Rewrite passes
(:mod:`repro.qv.passes`) mutate the module; the backend
(:mod:`repro.qv.backend`) emits the executable workflow.

The IR mirrors the paper's operator model, not the workflow graph:
annotators, one enrichment step (with an explicit per-repository column
plan), *bundles* of quality assertions (a bundle with several members
is one batched service invocation), an optional filter gate, and
actions.  Keeping the declaration order of assertions — every member
records its original ``index`` — is what lets the backend wire
ConsolidateAssertions exactly as the reference pipeline does, so an
optimized compilation merges per-QA maps in the same order and stays
byte-identical on the output annotation map.

This module also defines the *canonical signatures* used by
:mod:`repro.qv.diff`: pure functions over specs (no framework needed)
that normalise condition text through the parser/unparser round trip,
so diffs are stable under formatting changes and pass-induced
reordering of the emitted processors.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.annotation.store import AnnotationStore
from repro.process.conditions import ConditionError, parse_condition, unparse
from repro.qv.compiler import CompilationError, check_output_ports
from repro.qv.spec import (
    ActionSpec,
    AnnotatorSpec,
    AssertionSpec,
    QualityViewSpec,
)
from repro.qv.validator import validate_quality_view
from repro.rdf import NamespaceManager, URIRef
from repro.services.interface import AnnotationService, QualityAssertionService

__all__ = [
    "IRAction",
    "IRAnnotator",
    "IRAssertion",
    "IRBundle",
    "IREnrichment",
    "IRGate",
    "IRModule",
    "action_signature",
    "annotator_signature",
    "assertion_signature",
    "canonical_condition",
    "lower_view",
    "view_fingerprint",
    "view_signature",
]


# -- IR nodes ----------------------------------------------------------------


@dataclass
class IRAnnotator:
    """One resolved annotation step (paper rule 1)."""

    name: str
    service: AnnotationService
    service_type: URIRef
    store: AnnotationStore
    evidence_types: List[URIRef]
    data_class: Optional[URIRef] = None


@dataclass
class IRAssertion:
    """One resolved quality assertion; ``index`` is its declaration
    position (the ConsolidateAssertions merge slot it must keep)."""

    index: int
    name: str
    service: QualityAssertionService
    service_type: URIRef
    tag_name: str
    variables: Dict[str, URIRef]

    def config(self) -> Dict[str, Any]:
        """The service-invocation context the view configures."""
        return {
            "name": self.name,
            "tag_name": self.tag_name,
            "variables": dict(self.variables),
        }


@dataclass
class IRBundle:
    """Assertions sharing one service invocation.

    The frontend emits singleton bundles; the QA-fusion pass merges
    bundles whose members resolved to the *same* deployed service
    instance.  A fused bundle still produces one output map per member,
    so downstream wiring (and the serialized annotation map) cannot
    tell fusion happened.
    """

    members: List[IRAssertion]

    @property
    def service(self) -> QualityAssertionService:
        return self.members[0].service

    @property
    def fused(self) -> bool:
        return len(self.members) > 1

    @property
    def name(self) -> str:
        return " + ".join(member.name for member in self.members)


@dataclass
class IREnrichment:
    """The single Data Enrichment step (paper rule 2).

    ``columns`` keeps the reference pipeline's insertion order
    (assertion-declared evidence first, then annotator-declared) — the
    order evidence appears in serialized maps.  ``plan`` is the
    compile-time batching plan: one ``lookup_batch`` sweep per
    (repository, evidence type), grouped per repository.
    """

    columns: Dict[URIRef, AnnotationStore]
    plan: Optional[List[Tuple[AnnotationStore, Tuple[URIRef, ...]]]] = None


@dataclass
class IRGate:
    """A pushed-down filter predicate (emitted between QA stages).

    ``producer`` names the assertion whose tag the predicate reads;
    the gate consumes that assertion's output map plus the workflow
    data set and emits the surviving items, which later bundles and the
    actions consume instead of the full data set.
    """

    producer: str
    tag_name: str
    predicate: str


@dataclass
class IRAction:
    """One action (filter or splitter), still in spec form."""

    spec: ActionSpec

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class IRModule:
    """A lowered quality view, ready for passes and emission."""

    spec: QualityViewSpec
    name: str
    annotators: List[IRAnnotator]
    enrichment: IREnrichment
    bundles: List[IRBundle]
    actions: List[IRAction]
    variable_bindings: Dict[str, URIRef]
    namespaces: NamespaceManager
    #: ``None`` means every workflow output is observed (the default
    #: contract: byte-equal everything).  A frozen set restricts the
    #: guarantee to the named outputs, unlocking passes that may change
    #: unobserved outputs (filter pushdown, aggressive pruning).
    observed_outputs: Optional[FrozenSet[str]] = None
    gate: Optional[IRGate] = None
    frontend_notes: List[str] = field(default_factory=list)

    def assertions(self) -> List[IRAssertion]:
        """Every assertion, in original declaration order."""
        members = [m for bundle in self.bundles for m in bundle.members]
        return sorted(members, key=lambda member: member.index)

    def observes(self, output: str) -> bool:
        """Whether the compilation contract covers a workflow output."""
        return self.observed_outputs is None or output in self.observed_outputs

    def summary(self) -> str:
        """One line for progress notes and ``--explain`` headers."""
        fused = sum(1 for bundle in self.bundles if bundle.fused)
        return (
            f"{len(self.annotators)} annotator(s), "
            f"{len(self.enrichment.columns)} enrichment column(s), "
            f"{len(self.bundles)} QA bundle(s) ({fused} fused), "
            f"{len(self.actions)} action(s)"
            + (", 1 filter gate" if self.gate else "")
        )


# -- frontend ----------------------------------------------------------------


def lower_view(
    spec: QualityViewSpec,
    compiler,
    validate: bool = True,
    observed_outputs: Optional[FrozenSet[str]] = None,
) -> IRModule:
    """Lower a spec to IR against a :class:`~repro.qv.compiler.QVCompiler`.

    Verification (the absorbed validator), sanitized-port collision
    checks, service/repository resolution and evidence canonicalisation
    all happen here, so every pass and the backend operate on resolved,
    well-formed IR.
    """
    notes: List[str] = []
    canonical: Dict[URIRef, URIRef] = {}
    if validate:
        started = time.perf_counter()
        report = validate_quality_view(
            spec,
            compiler.iq_model,
            known_repositories=set(compiler.repositories.names()),
        )
        report.raise_if_failed()
        canonical = report.canonicalised
        notes.append(
            f"verified against the IQ model in "
            f"{(time.perf_counter() - started) * 1e3:.1f} ms: "
            f"{len(report.warnings)} warning(s), "
            f"{len(canonical)} evidence URI(s) canonicalised"
        )
    check_output_ports(spec)

    def canon(evidence: URIRef) -> URIRef:
        return canonical.get(evidence, evidence)

    annotators: List[IRAnnotator] = []
    for annotator in spec.annotators:
        service = compiler._resolve_service(
            annotator.service_type, annotator.service_name
        )
        if not isinstance(service, AnnotationService):
            raise CompilationError(
                f"operator {annotator.service_name!r} resolved to "
                f"{type(service).__name__}; expected an annotation service"
            )
        annotators.append(
            IRAnnotator(
                annotator.service_name,
                service,
                annotator.service_type,
                compiler._store(annotator.repository_ref),
                [canon(e) for e in annotator.evidence_types()],
                data_class=compiler.iq_model.DataEntity,
            )
        )

    columns: Dict[URIRef, AnnotationStore] = {}
    for assertion in spec.assertions:
        for variable in assertion.variables:
            columns[canon(variable.evidence)] = compiler._store(
                variable.repository_ref
            )
    for annotator in spec.annotators:
        for variable in annotator.variables:
            columns.setdefault(
                canon(variable.evidence), compiler._store(variable.repository_ref)
            )

    bundles: List[IRBundle] = []
    seen_names: Dict[str, int] = {}
    for index, assertion in enumerate(spec.assertions):
        if assertion.service_name in seen_names:
            raise CompilationError(
                f"two quality assertions share the name "
                f"{assertion.service_name!r}; processor names must be unique"
            )
        seen_names[assertion.service_name] = index
        service = compiler._resolve_service(
            assertion.service_type, assertion.service_name
        )
        if not isinstance(service, QualityAssertionService):
            raise CompilationError(
                f"operator {assertion.service_name!r} resolved to "
                f"{type(service).__name__}; expected a QA service"
            )
        bundles.append(
            IRBundle(
                [
                    IRAssertion(
                        index,
                        assertion.service_name,
                        service,
                        assertion.service_type,
                        assertion.tag_name,
                        {v.name: canon(v.evidence) for v in assertion.variables},
                    )
                ]
            )
        )

    bindings = {
        name: canon(evidence)
        for name, evidence in spec.variable_bindings().items()
    }
    return IRModule(
        spec=spec,
        name=spec.name,
        annotators=annotators,
        enrichment=IREnrichment(columns=columns),
        bundles=bundles,
        actions=[IRAction(action) for action in spec.actions],
        variable_bindings=bindings,
        namespaces=spec.namespaces,
        observed_outputs=observed_outputs,
        frontend_notes=notes,
    )


# -- canonical signatures (consumed by repro.qv.diff) ------------------------


def canonical_condition(text: str) -> str:
    """Condition text normalised through the parse/unparse round trip.

    Formatting-only edits (whitespace, redundant parentheses) map to
    the same canonical form; unparseable text falls back to
    whitespace-collapsed comparison so diffing never raises.
    """
    try:
        return unparse(parse_condition(text))
    except ConditionError:
        return " ".join(text.split())


def annotator_signature(annotator: AnnotatorSpec) -> tuple:
    """Order-independent content signature of an annotator block."""
    return (
        "annotator",
        str(annotator.service_type),
        tuple(
            sorted(
                (v.name, str(v.evidence), v.repository_ref)
                for v in annotator.variables
            )
        ),
        annotator.repository_ref,
        annotator.persistent,
    )


def assertion_signature(assertion: AssertionSpec) -> tuple:
    """Content signature of a quality-assertion block."""
    return (
        "assertion",
        str(assertion.service_type),
        assertion.tag_name,
        str(assertion.tag_syn_type) if assertion.tag_syn_type else "",
        str(assertion.tag_sem_type) if assertion.tag_sem_type else "",
        tuple(
            sorted(
                (v.name, str(v.evidence), v.repository_ref)
                for v in assertion.variables
            )
        ),
    )


def action_signature(action: ActionSpec) -> tuple:
    """Content signature of an action, with canonicalised conditions.

    Splitter group order is kept — groups are matched first to last,
    so reordering them is a semantic change, not a formatting one.
    """
    if action.kind == "filter":
        groups: Tuple[tuple, ...] = (
            ("", canonical_condition(action.condition or "")),
        )
    else:
        groups = tuple(
            (g.group, canonical_condition(g.condition)) for g in action.groups
        )
    return ("action", action.kind, groups)


def view_signature(spec: QualityViewSpec) -> tuple:
    """The whole view's canonical structure.

    Annotators and actions sort by name (their relative order carries
    no semantics); assertions keep declaration order, which fixes the
    consolidation merge order.
    """
    return (
        "qv",
        spec.name,
        tuple(
            sorted(
                (a.service_name, annotator_signature(a))
                for a in spec.annotators
            )
        ),
        tuple(
            (a.service_name, assertion_signature(a)) for a in spec.assertions
        ),
        tuple(sorted((a.name, action_signature(a)) for a in spec.actions)),
    )


def view_fingerprint(spec: QualityViewSpec) -> str:
    """A stable hex digest of :func:`view_signature`.

    Both compilation pipelines stamp it on the emitted workflow
    (``workflow.source_fingerprint``), so tooling can recognise two
    differently-optimized workflows as compilations of the same view.
    """
    return hashlib.sha256(repr(view_signature(spec)).encode()).hexdigest()
