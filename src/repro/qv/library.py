"""A library of shareable quality views.

Paper Sec. 7, current work (iv): "providing user-friendly interfaces
for the reuse of quality components [and] views defined by peers within
a scientific community."  The library stores versioned quality-view
specifications, indexes them by the IQ concepts they use (evidence
types, assertion classes, addressed dimensions) so peers can search by
need, and round-trips through a plain directory of XML files for
exchange.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ontology.iq_model import IQModel
from repro.qv.spec import QualityViewSpec
from repro.qv.validator import validate_quality_view
from repro.qv.xml_io import parse_quality_view, quality_view_to_xml
from repro.rdf import URIRef


class LibraryError(KeyError):
    """Raised on missing or conflicting library entries."""


@dataclass(frozen=True)
class LibraryEntry:
    """One published view version."""

    name: str
    version: int
    spec: QualityViewSpec
    author: str = ""
    description: str = ""

    @property
    def key(self) -> Tuple[str, int]:
        """(name, version) identity of this entry."""

        return (self.name, self.version)


class QualityViewLibrary:
    """Versioned, searchable storage of quality views."""

    def __init__(self, iq_model: Optional[IQModel] = None) -> None:
        self.iq_model = iq_model
        self._entries: Dict[str, List[LibraryEntry]] = {}

    # -- publishing --------------------------------------------------------

    def publish(
        self,
        spec: QualityViewSpec,
        author: str = "",
        description: str = "",
        validate: bool = True,
    ) -> LibraryEntry:
        """Add a view; each publish of the same name bumps the version."""
        if validate and self.iq_model is not None:
            report = validate_quality_view(spec, self.iq_model)
            report.raise_if_failed()
        versions = self._entries.setdefault(spec.name, [])
        entry = LibraryEntry(
            name=spec.name,
            version=len(versions) + 1,
            spec=spec,
            author=author,
            description=description,
        )
        versions.append(entry)
        return entry

    def publish_xml(self, xml: str, author: str = "", description: str = ""):
        """Parse XML and publish it as a new version."""
        return self.publish(
            parse_quality_view(xml), author=author, description=description
        )

    # -- retrieval ------------------------------------------------------------

    def get(self, name: str, version: Optional[int] = None) -> LibraryEntry:
        """An entry by name (latest version unless one is given)."""

        versions = self._entries.get(name)
        if not versions:
            raise LibraryError(f"no quality view named {name!r} in the library")
        if version is None:
            return versions[-1]
        for entry in versions:
            if entry.version == version:
                return entry
        raise LibraryError(
            f"quality view {name!r} has no version {version}; "
            f"latest is {versions[-1].version}"
        )

    def names(self) -> List[str]:
        """Every published view name, sorted."""
        return sorted(self._entries)

    def versions_of(self, name: str) -> List[int]:
        """The version numbers of one view."""
        return [entry.version for entry in self._entries.get(name, [])]

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- search --------------------------------------------------------------

    def find_by_evidence(self, evidence_type: URIRef) -> List[LibraryEntry]:
        """Latest versions of views consuming or producing the evidence."""
        found = []
        for name in self.names():
            entry = self.get(name)
            used = entry.spec.required_evidence() | entry.spec.provided_evidence()
            if evidence_type in used or any(
                e.fragment().lower() == evidence_type.fragment().lower()
                for e in used
            ):
                found.append(entry)
        return found

    def find_by_assertion(self, assertion_class: URIRef) -> List[LibraryEntry]:
        """Latest views using a QA class (or a subclass of it)."""

        found = []
        for name in self.names():
            entry = self.get(name)
            classes = {a.service_type for a in entry.spec.assertions}
            if assertion_class in classes:
                found.append(entry)
            elif self.iq_model is not None and any(
                self.iq_model.ontology.is_subclass(cls, assertion_class)
                for cls in classes
            ):
                found.append(entry)
        return found

    def find_by_dimension(self, dimension: URIRef) -> List[LibraryEntry]:
        """Views whose QA classes address an IQ dimension (via the model)."""
        if self.iq_model is None:
            return []
        graph = self.iq_model.ontology.graph
        found = []
        for name in self.names():
            entry = self.get(name)
            for assertion in entry.spec.assertions:
                dims = set(
                    graph.objects(
                        assertion.service_type,
                        self.iq_model.addresses_dimension,
                    )
                )
                for cls in self.iq_model.ontology.superclasses(
                    assertion.service_type
                ):
                    dims.update(
                        graph.objects(cls, self.iq_model.addresses_dimension)
                    )
                if dimension in dims:
                    found.append(entry)
                    break
        return found

    def diff(
        self,
        name: str,
        old_version: Optional[int] = None,
        new_version: Optional[int] = None,
    ):
        """Structural diff between two versions of a view.

        Defaults to previous-vs-latest.  Returns a
        :class:`~repro.qv.diff.ViewDiff`.
        """
        from repro.qv.diff import diff_views

        latest = self.get(name).version
        if new_version is None:
            new_version = latest
        if old_version is None:
            old_version = max(1, new_version - 1)
        return diff_views(
            self.get(name, old_version).spec, self.get(name, new_version).spec
        )

    # -- exchange ---------------------------------------------------------------

    def export_to(self, directory: str) -> List[str]:
        """Write every latest version as ``<name>.qv.xml``; returns paths."""
        target = pathlib.Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = []
        for name in self.names():
            entry = self.get(name)
            safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name)
            path = target / f"{safe}.qv.xml"
            path.write_text(quality_view_to_xml(entry.spec))
            written.append(str(path))
        return written

    def import_from(self, directory: str, author: str = "") -> List[LibraryEntry]:
        """Publish every ``*.qv.xml`` file found in a directory."""
        source = pathlib.Path(directory)
        imported = []
        for path in sorted(source.glob("*.qv.xml")):
            imported.append(
                self.publish_xml(path.read_text(), author=author)
            )
        return imported
