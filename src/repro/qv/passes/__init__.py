"""The optimization-pass catalogue of the staged quality-view compiler.

Default pipeline order (see :func:`default_passes`):

1. ``evidence-pruning``  — observed-gated; drops unconsumed columns
   and transient-store annotators nothing reads.
2. ``qa-fusion``         — default-safe; one invocation for QAs
   sharing a deployed service instance.
3. ``filter-pushdown``   — observed-gated; gates the data set on an
   early QA verdict shared by every filter.
4. ``enrichment-batching`` — default-safe; precomputes the
   per-repository ``lookup_batch`` column plan.

Pruning runs first so fusion/pushdown see the surviving assertions;
pushdown runs after fusion so the gate wires to the fused producer
port; batching runs last so it plans only the surviving columns.

To add a pass: subclass :class:`~repro.qv.passes.base.Pass` in a new
module here, set ``name``/``description``, implement ``run(ir)``
returning human-readable notes (empty list = did not fire), and insert
it into :func:`default_passes` and :data:`PASS_NAMES`.
"""

from __future__ import annotations

from typing import List

from repro.qv.passes.base import (
    CompileOptions,
    Pass,
    PassManager,
    PassReport,
    PassRun,
    record_invocations_saved,
    record_processors_eliminated,
)
from repro.qv.passes.enrichment_batching import EnrichmentBatchingPass
from repro.qv.passes.evidence_pruning import EvidencePruningPass
from repro.qv.passes.filter_pushdown import FilterPushdownPass
from repro.qv.passes.qa_fusion import QAFusionPass

__all__ = [
    "CompileOptions",
    "EnrichmentBatchingPass",
    "EvidencePruningPass",
    "FilterPushdownPass",
    "PASS_NAMES",
    "Pass",
    "PassManager",
    "PassReport",
    "PassRun",
    "QAFusionPass",
    "default_passes",
    "record_invocations_saved",
    "record_processors_eliminated",
]

#: Every registered pass name, in default pipeline order.
PASS_NAMES = (
    "evidence-pruning",
    "qa-fusion",
    "filter-pushdown",
    "enrichment-batching",
)


def default_passes(options: CompileOptions) -> List[Pass]:
    """The default pipeline, minus ``options.disabled_passes``."""
    unknown = set(options.disabled_passes) - set(PASS_NAMES)
    if unknown:
        from repro.qv.compiler import CompilationError

        raise CompilationError(
            f"unknown pass name(s) {sorted(unknown)!r}; "
            f"registered passes: {list(PASS_NAMES)!r}"
        )
    pipeline: List[Pass] = [
        EvidencePruningPass(options),
        QAFusionPass(),
        FilterPushdownPass(options),
        EnrichmentBatchingPass(),
    ]
    return [p for p in pipeline if p.name not in options.disabled_passes]
