"""The pass manager: ordered, individually-toggleable IR rewrites.

Every optimization is a :class:`Pass` over :class:`repro.qv.ir.IRModule`
returning its IR deltas as human-readable notes (an empty list means
the pass did not fire).  The :class:`PassManager` runs them in order,
times each one, and publishes the ``repro_qv_compile_*`` metric
families; the resulting :class:`PassReport` backs
``python -m repro compile --explain``.

Pass contracts:

* a pass in the **default** pipeline must be fully output-preserving —
  every workflow output, including the serialized ``annotationMap``,
  stays byte-identical to the reference compilation;
* a pass gated on :attr:`CompileOptions.observed_outputs` may change
  outputs the caller declared unobserved (``observed_outputs=None``
  means *all* outputs are observed, so such passes stay off).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence

from repro.observability import get_registry

if TYPE_CHECKING:
    from repro.qv.ir import IRModule

__all__ = [
    "CompileOptions",
    "Pass",
    "PassManager",
    "PassReport",
    "PassRun",
    "record_invocations_saved",
    "record_processors_eliminated",
]


@dataclass(frozen=True)
class CompileOptions:
    """Caller-facing knobs of the optimizing pipeline.

    ``disabled_passes`` switches individual passes off by name;
    ``observed_outputs`` names the workflow outputs the caller actually
    consumes (``None`` = all of them).  Declaring ``annotationMap``
    unobserved is what arms filter pushdown and aggressive evidence
    pruning — the passes that trade full-map fidelity for fewer
    service invocations.
    """

    disabled_passes: FrozenSet[str] = frozenset()
    observed_outputs: Optional[FrozenSet[str]] = None

    def observes(self, output: str) -> bool:
        """Whether the compilation contract covers a workflow output."""
        return self.observed_outputs is None or output in self.observed_outputs


class Pass(abc.ABC):
    """One rewrite over the IR; subclasses set ``name``/``description``."""

    #: Stable identifier (used by ``--disable-pass`` and metric labels).
    name: str = ""
    #: One line for the pass catalogue and ``--explain``.
    description: str = ""

    @abc.abstractmethod
    def run(self, ir: "IRModule") -> List[str]:
        """Rewrite ``ir`` in place; return notes (empty = did not fire)."""


@dataclass
class PassRun:
    """One pass execution: did it fire, how long, what changed."""

    name: str
    description: str
    changed: bool
    seconds: float
    notes: List[str] = field(default_factory=list)


@dataclass
class PassReport:
    """The full pipeline record behind ``compile --explain``."""

    frontend_notes: List[str] = field(default_factory=list)
    runs: List[PassRun] = field(default_factory=list)

    def fired(self) -> List[str]:
        """Names of the passes that changed the IR."""
        return [run.name for run in self.runs if run.changed]

    def render(self) -> str:
        """A plain-text rendering of the pipeline and its IR deltas."""
        lines: List[str] = ["frontend:"]
        for note in self.frontend_notes or ["(verification skipped)"]:
            lines.append(f"  {note}")
        lines.append("passes:")
        for run in self.runs:
            status = "fired" if run.changed else "no change"
            lines.append(
                f"  {run.name:<22} {status:<10} {run.seconds * 1e3:7.2f} ms"
                f"  - {run.description}"
            )
            for note in run.notes:
                lines.append(f"    * {note}")
        return "\n".join(lines) + "\n"


def record_processors_eliminated(pass_name: str, count: int) -> None:
    """Count workflow processors a pass removed from the emitted plan."""
    if count <= 0:
        return
    get_registry().counter(
        "repro_qv_compile_processors_eliminated_total",
        "Workflow processors removed by compiler passes.",
        labels=("pass_name",),
    ).labels(pass_name=pass_name).inc(count)


def record_invocations_saved(pass_name: str, count: int) -> None:
    """Count service invocations a pass saves per enactment (static)."""
    if count <= 0:
        return
    get_registry().counter(
        "repro_qv_compile_invocations_saved_total",
        "Per-enactment service invocations eliminated by compiler passes.",
        labels=("pass_name",),
    ).labels(pass_name=pass_name).inc(count)


class PassManager:
    """Runs a pass pipeline over an IR module, timing and reporting."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes = list(passes)

    def run(self, ir: "IRModule") -> PassReport:
        report = PassReport(frontend_notes=list(ir.frontend_notes))
        timer = get_registry().histogram(
            "repro_qv_compile_pass_seconds",
            "Wall-clock cost of each compiler pass.",
            labels=("pass_name",),
        )
        for pass_ in self.passes:
            started = time.perf_counter()
            notes = pass_.run(ir)
            seconds = time.perf_counter() - started
            timer.labels(pass_name=pass_.name).observe(seconds)
            report.runs.append(
                PassRun(
                    name=pass_.name,
                    description=pass_.description,
                    changed=bool(notes),
                    seconds=seconds,
                    notes=list(notes),
                )
            )
        return report
