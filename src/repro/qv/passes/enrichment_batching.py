"""Enrichment batching: a compile-time per-repository column plan.

The reference Data Enrichment processor re-derives its repository
grouping on every firing.  This pass precomputes the plan — one
``lookup_batch`` sweep per (repository, evidence type), grouped per
repository in first-appearance order, evidence types in column
(declaration) order within each repository — so the backend can emit a
:class:`~repro.qv.backend.BatchEnrichmentProcessor` that walks the
fixed plan directly.  Grouping and sweep order match the reference
processor exactly, so hit/miss accounting and evidence insertion order
(hence serialized maps) are unchanged; the pass is default-pipeline
safe and its value is the explicit, explainable plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.annotation.store import AnnotationStore
from repro.qv.passes.base import Pass
from repro.rdf import URIRef

if TYPE_CHECKING:
    from repro.qv.ir import IRModule


class EnrichmentBatchingPass(Pass):
    name = "enrichment-batching"
    description = (
        "precompute per-repository lookup_batch sweeps for the "
        "enrichment step"
    )

    def run(self, ir: "IRModule") -> List[str]:
        if not ir.enrichment.columns:
            return []
        order: List[int] = []
        stores: Dict[int, AnnotationStore] = {}
        grouped: Dict[int, List[URIRef]] = {}
        for evidence, store in ir.enrichment.columns.items():
            key = id(store)
            if key not in grouped:
                order.append(key)
                stores[key] = store
                grouped[key] = []
            grouped[key].append(evidence)
        plan: List[Tuple[AnnotationStore, Tuple[URIRef, ...]]] = [
            (stores[key], tuple(grouped[key])) for key in order
        ]
        ir.enrichment.plan = plan
        batched = sum(1 for _, types in plan if len(types) > 1)
        note = (
            f"planned {len(plan)} repository sweep(s) over "
            f"{len(ir.enrichment.columns)} evidence column(s)"
        )
        if batched:
            note += f"; {batched} sweep(s) batch multiple evidence types"
        return [note]
