"""Evidence pruning: drop annotators/DE columns nothing consumes.

Fires only when ``annotationMap`` is *unobserved*: every enrichment
column and every annotator-computed evidence value is visible in the
serialized map, so under the default contract (byte-equal everything)
nothing may be pruned.  When the caller declares it only consumes the
action group ports, a column that no QA variable reads and no action
condition references cannot influence routing — its repository sweep
is dropped; an annotator whose evidence is entirely unconsumed *and*
whose repository is transient (per-execution scope, so skipping the
write has no effect beyond this run) is removed altogether, saving its
service invocation.

Persistent-repository annotators are always kept: their writes are
durable side effects the caller may read after the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.process.conditions import (
    ConditionError,
    parse_condition,
    referenced_names,
)
from repro.qv.passes.base import (
    CompileOptions,
    Pass,
    record_invocations_saved,
    record_processors_eliminated,
)
from repro.rdf import URIRef

if TYPE_CHECKING:
    from repro.qv.ir import IRModule


class EvidencePruningPass(Pass):
    name = "evidence-pruning"
    description = (
        "drop annotators and enrichment columns whose evidence no QA "
        "or action condition consumes (annotationMap unobserved only)"
    )

    def __init__(self, options: CompileOptions) -> None:
        self.options = options

    def run(self, ir: "IRModule") -> List[str]:
        notes: List[str] = []
        if self.options.observes("annotationMap"):
            return notes

        read_by_qa: Set[URIRef] = set()
        for assertion in ir.assertions():
            read_by_qa.update(assertion.variables.values())
        condition_names: Set[str] = set()
        for action in ir.actions:
            for text in action.spec.conditions():
                try:
                    condition_names |= referenced_names(parse_condition(text))
                except ConditionError:
                    # Unparseable condition (validation was skipped):
                    # we cannot prove anything unconsumed, so keep all.
                    return []

        def consumed(evidence: URIRef) -> bool:
            if evidence in read_by_qa:
                return True
            visible = {
                name
                for name, bound in ir.variable_bindings.items()
                if bound == evidence
            }
            visible.add(evidence.fragment())
            return bool(visible & condition_names)

        for evidence in list(ir.enrichment.columns):
            if consumed(evidence):
                continue
            del ir.enrichment.columns[evidence]
            notes.append(
                f"dropped enrichment column {evidence.fragment()} "
                f"(no QA or condition reads it)"
            )

        kept = []
        eliminated = 0
        for annotator in ir.annotators:
            if annotator.store.persistent or any(
                consumed(e) for e in annotator.evidence_types
            ):
                kept.append(annotator)
                continue
            eliminated += 1
            notes.append(
                f"pruned annotator {annotator.name!r} (its transient "
                f"evidence "
                f"{sorted(e.fragment() for e in annotator.evidence_types)} "
                f"is never consumed)"
            )
        if eliminated:
            ir.annotators[:] = kept
            record_processors_eliminated(self.name, eliminated)
            record_invocations_saved(self.name, eliminated)
        return notes
