"""Filter pushdown: gate the data set on an early QA verdict.

When every action is a filter and all their conditions share a
top-level conjunct that reads exactly one name — and that name is a
quality-assertion tag — the verdict is already known once the
producing QA has run.  The pass records an :class:`~repro.qv.ir.IRGate`
and the backend inserts a gate processor right after the producer:
later QA bundles and the actions then see only the surviving items,
saving per-item classification work on items the filters would discard
anyway.

Soundness conditions (all checked, any miss = pass does not fire):

* ``annotationMap`` must be unobserved — gated QAs tag only survivors,
  so the full map loses tags for filtered items (group outputs are
  unaffected: actions re-evaluate their complete original condition,
  and the pushed conjunct is idempotent on survivors);
* every assertion outside the producer's bundle must be backed by an
  ``item_local`` service — one whose verdict for an item does not
  depend on the rest of the collection — because it now scores a
  narrowed collection;
* the shared conjunct's one referenced name resolves to a tag (tags
  shadow evidence in the evaluation environment of both the gate and
  the reference actions, so both read the same value);
* tag names are unique across assertions (guaranteed by validation,
  re-checked here for ``validate=False`` compilations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.process.conditions import (
    ConditionError,
    conjoin,
    parse_condition,
    referenced_names,
    split_conjuncts,
    unparse,
)
from repro.qv.passes.base import CompileOptions, Pass

if TYPE_CHECKING:
    from repro.qv.ir import IRModule


class FilterPushdownPass(Pass):
    name = "filter-pushdown"
    description = (
        "hoist a shared single-tag filter conjunct above later QA "
        "stages (annotationMap unobserved only)"
    )

    def __init__(self, options: CompileOptions) -> None:
        self.options = options

    def run(self, ir: "IRModule") -> List[str]:
        if self.options.observes("annotationMap"):
            return []
        if ir.gate is not None or not ir.actions or len(ir.bundles) < 2:
            return []
        if any(action.spec.kind != "filter" for action in ir.actions):
            return []
        try:
            parsed = [
                parse_condition(action.spec.condition or "")
                for action in ir.actions
            ]
        except ConditionError:
            return []

        conjunct_sets = [split_conjuncts(node) for node in parsed]
        shared = [
            conjunct
            for conjunct in conjunct_sets[0]
            if all(conjunct in rest for rest in conjunct_sets[1:])
        ]

        members = [m for bundle in ir.bundles for m in bundle.members]
        tags = {member.tag_name: member for member in members}
        if len(tags) != len(members):  # duplicate tags: validate=False path
            return []
        by_tag: Dict[str, list] = {}
        for conjunct in shared:
            names = referenced_names(conjunct)
            if len(names) == 1:
                (name,) = names
                if name in tags:
                    by_tag.setdefault(name, []).append(conjunct)
        if not by_tag:
            return []

        # Gate on the earliest-declared candidate tag: it maximises the
        # number of QA stages running after (and thus narrowed by) it.
        tag_name = min(by_tag, key=lambda tag: tags[tag].index)
        producer = tags[tag_name]
        producer_bundle = next(
            bundle for bundle in ir.bundles if producer in bundle.members
        )
        gated_members = [
            member
            for bundle in ir.bundles
            if bundle is not producer_bundle
            for member in bundle.members
        ]
        if not gated_members:
            return []
        for member in gated_members:
            if not getattr(member.service, "item_local", False):
                return []

        from repro.qv.ir import IRGate

        predicate = unparse(conjoin(by_tag[tag_name]))
        ir.gate = IRGate(
            producer=producer.name, tag_name=tag_name, predicate=predicate
        )
        return [
            f"gated the data set on {predicate!r} right after QA "
            f"{producer.name!r}",
            f"{len(gated_members)} later assertion(s) and "
            f"{len(ir.actions)} action(s) now see only surviving items",
        ]
