"""QA fusion: one batched invocation for QAs sharing a service.

Two assertions that resolved to the *same deployed service instance*
(typically via the binding registry: same ``serviceType``, different
assertion names) are merged into one bundle.  The backend emits a
single processor making one service invocation that builds and applies
every member operator over the same restricted map — evidence vectors
are identical to the member-by-member runs, so each member's tags come
out unchanged — and exposes one output map *per member*, wired into
ConsolidateAssertions at each member's original declaration slot.  The
serialized annotation map is therefore byte-identical to the reference
compilation; only the invocation count (and the per-call round-trip
latency) drops.

Fusion is output-preserving, so it runs in the default pipeline.  The
one observable coupling is failure granularity: a fault in the fused
invocation degrades all members together where the reference plan
could degrade one — recovered (retried) faults are unaffected, which
is what the chaos differential pins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.qv.passes.base import (
    Pass,
    record_invocations_saved,
    record_processors_eliminated,
)

if TYPE_CHECKING:
    from repro.qv.ir import IRBundle, IRModule


class QAFusionPass(Pass):
    name = "qa-fusion"
    description = (
        "merge QAs sharing a deployed classification service into one "
        "batched invocation"
    )

    def run(self, ir: "IRModule") -> List[str]:
        by_service: Dict[int, "IRBundle"] = {}
        merged: List["IRBundle"] = []
        for bundle in ir.bundles:
            target = by_service.get(id(bundle.service))
            if target is None:
                by_service[id(bundle.service)] = bundle
                merged.append(bundle)
            else:
                target.members.extend(bundle.members)
        notes: List[str] = []
        saved = 0
        for bundle in merged:
            if bundle.fused:
                saved += len(bundle.members) - 1
                names = ", ".join(repr(m.name) for m in bundle.members)
                notes.append(
                    f"fused {names} into one invocation of service "
                    f"{bundle.service.name!r}"
                )
        if saved:
            ir.bundles[:] = merged
            record_processors_eliminated(self.name, saved)
            record_invocations_saved(self.name, saved)
        return notes
