"""An alternative compilation target: the direct process interpreter.

Paper Sec. 5.1: views are "defined purely in terms of our abstract
model, i.e., the specification is not tied to any implementation of the
operator set.  This leaves us free to target the view to different data
management environments" — and Sec. 7 lists "a more general mapping
from quality views to formal workflow models" as current work.

This module demonstrates that generality: the same
:class:`~repro.qv.spec.QualityViewSpec` compiles to a
:class:`~repro.process.pattern.QualityProcess` executed by the direct
interpreter, with no workflow engine involved.  The test-suite uses it
for differential testing — both targets must route identical items to
identical groups.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.annotation.manager import RepositoryManager
from repro.annotation.store import AnnotationStore
from repro.binding.model import BindingError
from repro.binding.registry import BindingRegistry
from repro.ontology.iq_model import IQModel
from repro.process.actions import FilterAction, SplitterAction
from repro.process.operators import (
    AnnotationOperator,
    DataEnrichmentOperator,
)
from repro.process.pattern import QualityProcess
from repro.qv.compiler import CompilationError
from repro.qv.spec import QualityViewSpec
from repro.qv.validator import validate_quality_view
from repro.rdf import URIRef
from repro.services.interface import AnnotationService, QualityAssertionService
from repro.services.registry import ServiceRegistry


class ProcessTargetCompiler:
    """Compiles quality views for the stand-alone process interpreter."""

    def __init__(
        self,
        iq_model: IQModel,
        services: ServiceRegistry,
        bindings: BindingRegistry,
        repositories: RepositoryManager,
    ) -> None:
        self.iq_model = iq_model
        self.services = services
        self.bindings = bindings
        self.repositories = repositories

    def _resolve_service(self, service_type: URIRef, service_name: str):
        try:
            endpoint = self.bindings.resolve_endpoint(service_type)
            return self.services.by_endpoint(endpoint)
        except (BindingError, KeyError):
            pass
        if service_name in self.services:
            return self.services.by_name(service_name)
        try:
            return self.services.resolve_concept(service_type)
        except KeyError:
            raise CompilationError(
                f"no binding or deployed service for operator type "
                f"{service_type} (service name {service_name!r})"
            ) from None

    def _store(self, repository_ref: str) -> AnnotationStore:
        try:
            return self.repositories.repository(repository_ref)
        except KeyError as exc:
            raise CompilationError(str(exc)) from exc

    def compile(
        self, spec: QualityViewSpec, validate: bool = True
    ) -> QualityProcess:
        """Compile a validated view into a QualityProcess."""

        canonical: Dict[URIRef, URIRef] = {}
        if validate:
            report = validate_quality_view(
                spec,
                self.iq_model,
                known_repositories=set(self.repositories.names()),
            )
            report.raise_if_failed()
            canonical = report.canonicalised

        def canon(evidence: URIRef) -> URIRef:
            return canonical.get(evidence, evidence)

        annotators: List[AnnotationOperator] = []
        for annotator_spec in spec.annotators:
            service = self._resolve_service(
                annotator_spec.service_type, annotator_spec.service_name
            )
            if not isinstance(service, AnnotationService):
                raise CompilationError(
                    f"operator {annotator_spec.service_name!r} resolved to "
                    f"{type(service).__name__}; expected an annotation service"
                )
            annotators.append(
                AnnotationOperator(
                    annotator_spec.service_name,
                    service.function,
                    self._store(annotator_spec.repository_ref),
                    [canon(e) for e in annotator_spec.evidence_types()],
                    persistent=annotator_spec.persistent,
                    data_class=self.iq_model.DataEntity,
                )
            )

        sources: Dict[URIRef, AnnotationStore] = {}
        for assertion_spec in spec.assertions:
            for variable in assertion_spec.variables:
                sources[canon(variable.evidence)] = self._store(
                    variable.repository_ref
                )
        for annotator_spec in spec.annotators:
            for variable in annotator_spec.variables:
                sources.setdefault(
                    canon(variable.evidence),
                    self._store(variable.repository_ref),
                )
        enrichment = DataEnrichmentOperator("DataEnrichment", sources)

        assertions = []
        for assertion_spec in spec.assertions:
            service = self._resolve_service(
                assertion_spec.service_type, assertion_spec.service_name
            )
            if not isinstance(service, QualityAssertionService):
                raise CompilationError(
                    f"operator {assertion_spec.service_name!r} resolved to "
                    f"{type(service).__name__}; expected a QA service"
                )
            assertions.append(
                service.build_operator(
                    name=assertion_spec.service_name,
                    tag_name=assertion_spec.tag_name,
                    variables={
                        v.name: canon(v.evidence)
                        for v in assertion_spec.variables
                    },
                )
            )

        actions = []
        for action_spec in spec.actions:
            if action_spec.kind == "filter":
                actions.append(
                    FilterAction(
                        action_spec.name,
                        action_spec.condition or "",
                        namespaces=spec.namespaces,
                    )
                )
            else:
                actions.append(
                    SplitterAction(
                        action_spec.name,
                        [(g.group, g.condition) for g in action_spec.groups],
                        namespaces=spec.namespaces,
                    )
                )

        extra_bindings: Dict[str, URIRef] = {}
        for annotator_spec in spec.annotators:
            for variable in annotator_spec.variables:
                extra_bindings[variable.name] = canon(variable.evidence)
        return QualityProcess(
            spec.name,
            annotators=annotators,
            enrichment=enrichment,
            assertions=assertions,
            actions=actions,
            extra_bindings=extra_bindings,
        )
