"""Quality-view specification objects.

A spec mirrors the XML syntax one-to-one: annotator declarations,
quality-assertion declarations (each with variable bindings fetched
from named repositories), and action sections with filter/splitter
conditions.  Specs never reference input data sets — "views are
designed to be independent of the specific input data" (Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.rdf import NamespaceManager, Q, URIRef


@dataclass(frozen=True)
class VariableSpec:
    """One ``<var>`` declaration: evidence type, local name, source repo."""

    evidence: URIRef
    variable_name: Optional[str] = None
    repository_ref: str = "cache"
    persistent: bool = True

    @property
    def name(self) -> str:
        """The name conditions and QAs use (defaults to the URI fragment)."""
        return self.variable_name or self.evidence.fragment()


@dataclass(frozen=True)
class AnnotatorSpec:
    """An ``<Annotator>`` section."""

    service_name: str
    service_type: URIRef
    variables: Tuple[VariableSpec, ...]
    repository_ref: str = "cache"
    persistent: bool = False

    def evidence_types(self) -> List[URIRef]:
        """The evidence types this block declares."""
        return [v.evidence for v in self.variables]


@dataclass(frozen=True)
class AssertionSpec:
    """A ``<QualityAssertion>`` section."""

    service_name: str
    service_type: URIRef
    tag_name: str
    tag_syn_type: Optional[URIRef] = None
    tag_sem_type: Optional[URIRef] = None
    variables: Tuple[VariableSpec, ...] = ()

    def variable_bindings(self) -> Dict[str, URIRef]:
        """variable name -> evidence type for this assertion."""
        return {v.name: v.evidence for v in self.variables}

    def evidence_types(self) -> List[URIRef]:
        """The evidence types this block declares."""
        return [v.evidence for v in self.variables]


@dataclass(frozen=True)
class SplitterGroupSpec:
    """One named condition group of a splitter action."""

    group: str
    condition: str


@dataclass(frozen=True)
class ActionSpec:
    """An ``<action>`` section: either a filter or a splitter."""

    name: str
    kind: str  # "filter" | "splitter"
    condition: Optional[str] = None  # filter
    groups: Tuple[SplitterGroupSpec, ...] = ()  # splitter

    def __post_init__(self) -> None:
        if self.kind not in ("filter", "splitter"):
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.kind == "filter" and not self.condition:
            raise ValueError(f"filter action {self.name!r} needs a condition")
        if self.kind == "splitter" and not self.groups:
            raise ValueError(f"splitter action {self.name!r} needs groups")

    def conditions(self) -> List[str]:
        """The action's condition strings (one for a filter)."""
        if self.kind == "filter":
            return [self.condition or ""]
        return [g.condition for g in self.groups]


@dataclass
class QualityViewSpec:
    """A complete quality view."""

    name: str
    annotators: List[AnnotatorSpec] = field(default_factory=list)
    assertions: List[AssertionSpec] = field(default_factory=list)
    actions: List[ActionSpec] = field(default_factory=list)
    namespaces: NamespaceManager = field(default_factory=NamespaceManager)

    def required_evidence(self) -> Set[URIRef]:
        """Evidence types the view's QAs read."""
        needed: Set[URIRef] = set()
        for assertion in self.assertions:
            needed.update(assertion.evidence_types())
        return needed

    def provided_evidence(self) -> Set[URIRef]:
        """Evidence types the view's annotators write."""
        provided: Set[URIRef] = set()
        for annotator in self.annotators:
            provided.update(annotator.evidence_types())
        return provided

    def repository_for(self, evidence: URIRef) -> Optional[str]:
        """Which repository holds values of an evidence type.

        Assertion-side declarations win (they say where to *read*);
        otherwise the annotator that writes the type names the repo.
        """
        for assertion in self.assertions:
            for variable in assertion.variables:
                if variable.evidence == evidence:
                    return variable.repository_ref
        for annotator in self.annotators:
            for variable in annotator.variables:
                if variable.evidence == evidence:
                    return variable.repository_ref
        return None

    def tag_names(self) -> List[str]:
        """The tag names the view's assertions produce."""
        return [assertion.tag_name for assertion in self.assertions]

    def variable_bindings(self) -> Dict[str, URIRef]:
        """Names conditions may reference, mapped to evidence types.

        Includes annotator-declared evidence variables (conditions are
        "predicates on the values of QAs and of the evidence", Sec. 4);
        assertion-side names win on clashes.
        """
        bindings: Dict[str, URIRef] = {}
        for annotator in self.annotators:
            for variable in annotator.variables:
                bindings[variable.name] = variable.evidence
        for assertion in self.assertions:
            bindings.update(assertion.variable_bindings())
        return bindings

    def __repr__(self) -> str:
        return (
            f"<QualityViewSpec {self.name!r}: {len(self.annotators)} annotators, "
            f"{len(self.assertions)} assertions, {len(self.actions)} actions>"
        )
