"""Semantic validation of quality views against the IQ model.

Checks (paper Secs. 4.1 and 5.1):

* annotator service types are ``q:AnnotationFunction`` subclasses, QA
  service types are ``q:QualityAssertion`` subclasses;
* every declared evidence type is a ``q:QualityEvidence`` subclass
  (evidence QNames are matched case-insensitively against declared
  classes, because the paper's own fragments mix ``q:coverage`` and
  ``q:Coverage``);
* QA tag semantic types are classification models, and tag syntactic
  types are ``q:score`` or ``q:class``;
* every evidence type a QA reads is provided by some annotator in the
  view or is expected pre-computed in a named repository (a warning
  either way the caller can inspect);
* action conditions parse, and every name they reference is a tag or a
  declared variable of the view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ontology.iq_model import IQModel
from repro.process.conditions import ConditionError, parse_condition
from repro.process.conditions.ast import referenced_names
from repro.qv.spec import (
    AssertionSpec,
    AnnotatorSpec,
    QualityViewSpec,
    VariableSpec,
)
from repro.rdf import Q, URIRef


class QVValidationError(ValueError):
    """A quality view violates the IQ model or its own declarations."""


@dataclass
class ValidationReport:
    """Validation outcome: hard errors plus advisory warnings."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: Evidence-type canonicalisation applied (raw URI -> declared class).
    canonicalised: Dict[URIRef, URIRef] = field(default_factory=dict)

    def ok(self) -> bool:
        """True when no hard errors were found."""

        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise QVValidationError listing every error."""

        if self.errors:
            raise QVValidationError(
                "quality view failed validation:\n- " + "\n- ".join(self.errors)
            )


def _canonical_evidence(
    evidence: URIRef, iq_model: IQModel, report: ValidationReport
) -> Optional[URIRef]:
    """Resolve an evidence URI, tolerating case differences in fragments."""
    if iq_model.is_evidence_type(evidence):
        return evidence
    wanted = evidence.fragment().lower()
    base = str(evidence)[: len(str(evidence)) - len(evidence.fragment())]
    for declared in iq_model.evidence_classes():
        if (
            declared.fragment().lower() == wanted
            and str(declared).startswith(base)
        ):
            report.canonicalised[evidence] = declared
            return declared
    return None


def validate_quality_view(
    spec: QualityViewSpec,
    iq_model: IQModel,
    known_repositories: Optional[Set[str]] = None,
) -> ValidationReport:
    """Validate a view; returns a report (``raise_if_failed`` to enforce)."""
    report = ValidationReport()
    ontology = iq_model.ontology

    def check_repository(repository: str, context: str) -> None:
        if known_repositories is not None and repository not in known_repositories:
            report.errors.append(
                f"{context} references unknown repository {repository!r}"
            )

    def check_variables(
        variables, context: str, provided: Optional[Set[URIRef]] = None
    ) -> None:
        for variable in variables:
            canonical = _canonical_evidence(variable.evidence, iq_model, report)
            if canonical is None:
                report.errors.append(
                    f"{context}: {variable.evidence} is not a declared "
                    f"q:QualityEvidence subclass"
                )
            check_repository(variable.repository_ref, context)

    # Names visible to action conditions: QA tags, QA variable names,
    # and annotator-declared evidence variables — the paper's
    # "predicates on the values of QAs and of the evidence".
    visible_names: Set[str] = set()

    # annotators
    for annotator in spec.annotators:
        context = f"annotator {annotator.service_name!r}"
        if not iq_model.is_annotation_function(annotator.service_type):
            report.errors.append(
                f"{context}: service type {annotator.service_type} is not an "
                f"AnnotationFunction subclass"
            )
        if not annotator.variables:
            report.errors.append(f"{context}: declares no evidence variables")
        check_variables(annotator.variables, context)
        check_repository(annotator.repository_ref, context)
        visible_names.update(v.name for v in annotator.variables)

    # assertions
    for assertion in spec.assertions:
        context = f"quality assertion {assertion.service_name!r}"
        if not iq_model.is_assertion_type(assertion.service_type):
            report.errors.append(
                f"{context}: service type {assertion.service_type} is not a "
                f"QualityAssertion subclass"
            )
        if assertion.tag_syn_type is not None and assertion.tag_syn_type not in (
            iq_model.score_type,
            iq_model.class_type,
        ):
            report.errors.append(
                f"{context}: tagSynType must be q:score or q:class, "
                f"got {assertion.tag_syn_type}"
            )
        if assertion.tag_sem_type is not None and not iq_model.is_classification_model(
            assertion.tag_sem_type
        ):
            report.errors.append(
                f"{context}: tagSemType {assertion.tag_sem_type} is not a "
                f"ClassificationModel subclass"
            )
        check_variables(assertion.variables, context)
        visible_names.add(assertion.tag_name)
        visible_names.update(v.name for v in assertion.variables)
        # declared evidence requirements of the QA class (q:basedOnEvidence)
        declared = iq_model.required_evidence(assertion.service_type)
        bound = set()
        for variable in assertion.variables:
            canonical = report.canonicalised.get(
                variable.evidence, variable.evidence
            )
            bound.add(canonical)
        missing = declared - bound
        if missing:
            report.warnings.append(
                f"{context}: IQ model declares evidence "
                f"{sorted(u.fragment() for u in missing)} for "
                f"{assertion.service_type.fragment()} but the view does not "
                f"bind it"
            )

    if not spec.assertions:
        report.warnings.append("the view declares no quality assertions")

    # evidence availability: QA reads vs annotator writes
    provided = {
        report.canonicalised.get(e, e) for e in spec.provided_evidence()
    }
    for assertion in spec.assertions:
        for variable in assertion.variables:
            canonical = report.canonicalised.get(
                variable.evidence, variable.evidence
            )
            if canonical not in provided:
                report.warnings.append(
                    f"evidence {canonical.fragment()} read by "
                    f"{assertion.service_name!r} is not produced by any "
                    f"annotator in this view; it must already exist in "
                    f"repository {variable.repository_ref!r}"
                )

    # duplicate tag names across assertions would silently overwrite
    tags = spec.tag_names()
    duplicates = {t for t in tags if tags.count(t) > 1}
    if duplicates:
        report.errors.append(
            f"duplicate tag names across assertions: {sorted(duplicates)}"
        )

    # actions
    if not spec.actions:
        report.warnings.append("the view declares no actions")
    for action in spec.actions:
        for condition_text in action.conditions():
            context = f"action {action.name!r}"
            try:
                node = parse_condition(condition_text)
            except ConditionError as exc:
                report.errors.append(f"{context}: {exc}")
                continue
            unknown = referenced_names(node) - visible_names
            if unknown:
                report.errors.append(
                    f"{context}: condition references unknown names "
                    f"{sorted(unknown)} (visible: {sorted(visible_names)})"
                )
    return report
