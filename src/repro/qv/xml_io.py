"""Reader and writer for the quality-view XML syntax of Sec. 5.1.

The reader is tolerant of the attribute spellings that appear in the
paper itself (``serviceName`` vs ``servicename``, ``tagSynType`` vs
``tagsyntype``): attribute lookup is case-insensitive.  QNames in
attributes and conditions resolve against ``<namespace>`` declarations
plus the built-in ``q:`` binding.

Example (the paper's running example, abridged):

    <QualityView name="protein-id-quality">
      <Annotator serviceName="ImprintOutputAnnotator"
                 serviceType="q:Imprint-output-annotation">
        <variables repositoryRef="cache" persistent="false">
          <var evidence="q:Coverage"/>
          <var evidence="q:Masses"/>
        </variables>
      </Annotator>
      <QualityAssertion serviceName="HR MC score"
                        serviceType="q:UniversalPIScore2"
                        tagName="HR MC" tagSynType="q:score">
        <variables repositoryRef="cache">
          <var variableName="coverage" evidence="q:Coverage"/>
        </variables>
      </QualityAssertion>
      <action name="filter top k score">
        <filter>
          <condition>ScoreClass in q:high, q:mid and HR MC &gt; 20</condition>
        </filter>
      </action>
    </QualityView>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from repro.qv.spec import (
    ActionSpec,
    AnnotatorSpec,
    AssertionSpec,
    QualityViewSpec,
    SplitterGroupSpec,
    VariableSpec,
)
from repro.rdf import NamespaceManager, URIRef


class QVSyntaxError(ValueError):
    """Raised on malformed quality-view XML."""


def _attr(element: ET.Element, name: str) -> Optional[str]:
    """Case-insensitive attribute lookup."""
    lowered = name.lower()
    for key, value in element.attrib.items():
        if key.lower() == lowered:
            return value
    return None


def _require_attr(element: ET.Element, name: str, context: str) -> str:
    value = _attr(element, name)
    if value is None:
        raise QVSyntaxError(f"{context}: missing attribute {name!r}")
    return value


def _bool_attr(element: ET.Element, name: str, default: bool) -> bool:
    value = _attr(element, name)
    if value is None:
        return default
    if value.lower() in ("true", "1", "yes"):
        return True
    if value.lower() in ("false", "0", "no"):
        return False
    raise QVSyntaxError(f"invalid boolean attribute {name}={value!r}")


def _resolve(nsm: NamespaceManager, text: str, context: str) -> URIRef:
    text = text.strip()
    if text.startswith("http://") or text.startswith("urn:"):
        return URIRef(text)
    try:
        return nsm.expand(text)
    except ValueError as exc:
        raise QVSyntaxError(f"{context}: {exc}") from exc


def _parse_variables(
    parent: ET.Element, nsm: NamespaceManager, context: str
) -> Tuple[List[VariableSpec], str, bool]:
    """Parse a <variables> block; returns (vars, repositoryRef, persistent)."""
    block = None
    for child in parent:
        if child.tag.lower() == "variables":
            if block is not None:
                raise QVSyntaxError(f"{context}: multiple <variables> blocks")
            block = child
    if block is None:
        return [], "cache", True
    repository = _attr(block, "repositoryRef") or "cache"
    persistent = _bool_attr(block, "persistent", True)
    variables: List[VariableSpec] = []
    for var in block:
        if var.tag.lower() != "var":
            raise QVSyntaxError(
                f"{context}: unexpected element <{var.tag}> inside <variables>"
            )
        evidence = _require_attr(var, "evidence", context)
        variables.append(
            VariableSpec(
                evidence=_resolve(nsm, evidence, context),
                variable_name=_attr(var, "variableName"),
                repository_ref=_attr(var, "repositoryRef") or repository,
                persistent=persistent,
            )
        )
    return variables, repository, persistent


def _parse_annotator(element: ET.Element, nsm: NamespaceManager) -> AnnotatorSpec:
    name = _require_attr(element, "serviceName", "<Annotator>")
    context = f"<Annotator {name!r}>"
    service_type = _resolve(
        nsm, _require_attr(element, "serviceType", context), context
    )
    variables, repository, persistent = _parse_variables(element, nsm, context)
    if not variables:
        raise QVSyntaxError(f"{context}: annotators must declare variables")
    return AnnotatorSpec(
        service_name=name,
        service_type=service_type,
        variables=tuple(variables),
        repository_ref=repository,
        persistent=persistent,
    )


def _parse_assertion(element: ET.Element, nsm: NamespaceManager) -> AssertionSpec:
    name = _require_attr(element, "serviceName", "<QualityAssertion>")
    context = f"<QualityAssertion {name!r}>"
    service_type = _resolve(
        nsm, _require_attr(element, "serviceType", context), context
    )
    tag_name = _require_attr(element, "tagName", context)
    syn = _attr(element, "tagSynType")
    sem = _attr(element, "tagSemType")
    variables, _, __ = _parse_variables(element, nsm, context)
    return AssertionSpec(
        service_name=name,
        service_type=service_type,
        tag_name=tag_name,
        tag_syn_type=_resolve(nsm, syn, context) if syn else None,
        tag_sem_type=_resolve(nsm, sem, context) if sem else None,
        variables=tuple(variables),
    )


def _condition_text(element: ET.Element, context: str) -> str:
    condition = element.find("condition")
    if condition is None or condition.text is None or not condition.text.strip():
        raise QVSyntaxError(f"{context}: missing or empty <condition>")
    return condition.text.strip()


def _parse_action(element: ET.Element) -> ActionSpec:
    name = _require_attr(element, "name", "<action>")
    context = f"<action {name!r}>"
    body = [child for child in element if child.tag.lower() in ("filter", "splitter")]
    if len(body) != 1:
        raise QVSyntaxError(
            f"{context}: expected exactly one <filter> or <splitter>"
        )
    inner = body[0]
    if inner.tag.lower() == "filter":
        return ActionSpec(
            name=name, kind="filter", condition=_condition_text(inner, context)
        )
    groups: List[SplitterGroupSpec] = []
    for group in inner:
        if group.tag.lower() != "group":
            raise QVSyntaxError(
                f"{context}: unexpected element <{group.tag}> inside <splitter>"
            )
        group_name = _require_attr(group, "name", context)
        groups.append(
            SplitterGroupSpec(
                group=group_name,
                condition=_condition_text(group, f"{context} group {group_name!r}"),
            )
        )
    return ActionSpec(name=name, kind="splitter", groups=tuple(groups))


def parse_quality_view(text: str) -> QualityViewSpec:
    """Parse quality-view XML into a :class:`QualityViewSpec`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise QVSyntaxError(f"malformed quality-view XML: {exc}") from exc
    if root.tag != "QualityView":
        raise QVSyntaxError(f"expected <QualityView> root, got <{root.tag}>")
    nsm = NamespaceManager()
    for ns in root.findall("namespace"):
        prefix = _require_attr(ns, "prefix", "<namespace>")
        uri = _require_attr(ns, "uri", "<namespace>")
        nsm.bind(prefix, uri)
    spec = QualityViewSpec(
        name=_attr(root, "name") or "quality-view", namespaces=nsm
    )
    for element in root:
        tag = element.tag
        if tag == "namespace":
            continue
        if tag == "Annotator":
            spec.annotators.append(_parse_annotator(element, nsm))
        elif tag == "QualityAssertion":
            spec.assertions.append(_parse_assertion(element, nsm))
        elif tag == "action":
            spec.actions.append(_parse_action(element))
        else:
            raise QVSyntaxError(f"unexpected element <{tag}> in <QualityView>")
    return spec


def quality_view_to_xml(spec: QualityViewSpec) -> str:
    """Serialise a spec back to the XML syntax (round-trippable)."""
    root = ET.Element("QualityView", {"name": spec.name})
    for annotator in spec.annotators:
        element = ET.SubElement(
            root,
            "Annotator",
            {
                "serviceName": annotator.service_name,
                "serviceType": str(annotator.service_type),
            },
        )
        block = ET.SubElement(
            element,
            "variables",
            {
                "repositoryRef": annotator.repository_ref,
                "persistent": "true" if annotator.persistent else "false",
            },
        )
        for variable in annotator.variables:
            attrs = {"evidence": str(variable.evidence)}
            if variable.variable_name:
                attrs["variableName"] = variable.variable_name
            ET.SubElement(block, "var", attrs)
    for assertion in spec.assertions:
        attrs = {
            "serviceName": assertion.service_name,
            "serviceType": str(assertion.service_type),
            "tagName": assertion.tag_name,
        }
        if assertion.tag_syn_type is not None:
            attrs["tagSynType"] = str(assertion.tag_syn_type)
        if assertion.tag_sem_type is not None:
            attrs["tagSemType"] = str(assertion.tag_sem_type)
        element = ET.SubElement(root, "QualityAssertion", attrs)
        if assertion.variables:
            repository = assertion.variables[0].repository_ref
            block = ET.SubElement(
                element, "variables", {"repositoryRef": repository}
            )
            for variable in assertion.variables:
                var_attrs = {"evidence": str(variable.evidence)}
                if variable.variable_name:
                    var_attrs["variableName"] = variable.variable_name
                if variable.repository_ref != repository:
                    var_attrs["repositoryRef"] = variable.repository_ref
                ET.SubElement(block, "var", var_attrs)
    for action in spec.actions:
        element = ET.SubElement(root, "action", {"name": action.name})
        if action.kind == "filter":
            inner = ET.SubElement(element, "filter")
            condition = ET.SubElement(inner, "condition")
            condition.text = action.condition
        else:
            inner = ET.SubElement(element, "splitter")
            for group in action.groups:
                group_el = ET.SubElement(inner, "group", {"name": group.group})
                condition = ET.SubElement(group_el, "condition")
                condition.text = group.condition
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
