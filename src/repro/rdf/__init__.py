"""RDF substrate: terms, triples, indexed graphs, namespaces, SPARQL.

The Qurator framework stores all quality annotations as RDF statements
(paper Sec. 3, Fig. 2).  This package is a self-contained RDF stack: an
indexed in-memory triple store, N-Triples/Turtle serialisation, LSID
identifiers for life-science data, and a SPARQL query engine used by the
annotation repositories.
"""

from repro.rdf.term import BNode, Literal, Node, URIRef, Variable
from repro.rdf.triple import Triple
from repro.rdf.graph import Graph
from repro.rdf.namespace import (
    DC,
    NamespaceManager,
    Namespace,
    OWL,
    Q,
    QB,
    RDF,
    RDFS,
    XSD,
)
from repro.rdf.lsid import LSID, LSIDError

__all__ = [
    "BNode",
    "DC",
    "Graph",
    "LSID",
    "LSIDError",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "Node",
    "OWL",
    "Q",
    "QB",
    "RDF",
    "RDFS",
    "Triple",
    "URIRef",
    "Variable",
    "XSD",
]
