"""A dictionary-encoded, indexed triple store over pluggable backends.

Every term is interned once into a per-store dictionary (``Node`` →
dense integer id) and the three permutation indices (SPO, POS, OSP)
hold those small integers instead of full term objects, so any triple
pattern with at least one bound position resolves without a full scan
and index probes hash machine ints rather than composite terms.  This
is the storage layer under the annotation repositories (paper Sec. 5);
the SPARQL engine in ``repro.rdf.sparql`` evaluates queries over it,
keeping the store swappable as the paper requires.

Since PR 7 the state itself lives in a *storage backend*
(:mod:`repro.storage`): :class:`~repro.storage.backend.MemoryBackend`
holds exactly the structures this module used to keep inline,
:class:`~repro.storage.disk.DiskBackend` adds a write-ahead log and
snapshot segments so a store survives restart, and
:class:`~repro.storage.paged.PagedBackend` keeps the indices in
memory-mapped sorted runs so the store can outgrow the heap.  Every
*read* goes through the backend's :class:`~repro.storage.probe
.IndexProbe` (``self._probe``) — point membership, pattern scans,
cardinality estimates — so the graph and the SPARQL planner
(``repro.rdf.sparql.plan``) never touch index internals; the term
dictionary (``_term_ids``/``_term_list``) stays aliased because every
backend exposes it mapping-shaped (paged backends lazily).
``REPRO_STORAGE_BACKEND`` selects what a bare ``Graph()`` runs on
(see ``repro.storage``).

Alongside the indices the backend maintains per-predicate cardinality
statistics (triple count, distinct subjects, distinct objects) updated
incrementally on every add/remove; the query planner reads them to
choose a join order once per query instead of re-sorting patterns per
solution.

Concurrency contract
--------------------

Index *mutation* (``add``/``remove``/``clear``) is serialized by a
per-graph re-entrant lock (mirroring the ``_bnode_lock`` that already
guards blank-node id allocation in ``repro.rdf.term``), so concurrent
writers — e.g. parallel annotators of the execution runtime filling
one shared repository — can never corrupt the indices, the term
dictionary, or the statistics.  Pattern reads (``triples``, and
everything built on it: ``__iter__``, ``subjects``/``objects``,
SPARQL, serialisation) materialise their matches *under the same
lock*, so every read is a consistent snapshot: a concurrent add is
observed entirely or not at all, and iteration never races a
mutation.  Planned SPARQL execution likewise holds the lock for the
whole (materialising) evaluation.  This is what lets the execution
runtime share one transient repository session across concurrent
quality-view jobs — one job's data-enrichment reads while another
job's annotator writes.  Point ``__contains__`` checks on a fully
bound triple read a single index cell and take no lock.  Backends are
externally synchronized: every backend call happens under this lock.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Iterator, Optional, Set, Tuple, Union

from repro.rdf.namespace import NamespaceManager
from repro.rdf.term import Node
from repro.rdf.triple import Object, Predicate, Subject, Triple, validate_triple
from repro.storage.backend import (
    MemoryBackend,
    PredicateStats,
    StorageBackend,
    copy_state,
)

__all__ = ["Graph", "PredicateStats", "TriplePattern"]

TriplePattern = Tuple[Optional[Node], Optional[Node], Optional[Node]]


def _default_backend() -> StorageBackend:
    mode = os.environ.get("REPRO_STORAGE_BACKEND", "memory").strip()
    if mode in ("", "memory"):
        return MemoryBackend()
    from repro.storage import backend_from_env

    return backend_from_env()


class Graph:
    """A set of RDF triples with pattern-matching access paths."""

    def __init__(
        self,
        identifier: Optional[str] = None,
        *,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self.identifier = identifier
        self.backend = backend if backend is not None else _default_backend()
        # Aliases the SPARQL planner snapshots directly; the backend
        # mutates these structures in place and never rebinds them.
        # Ids are never recycled (removal keeps the dictionary entry),
        # so a decoded id is always valid without holding the lock.
        self._term_ids = self.backend.term_ids
        self._term_list = self.backend.term_list
        self._pred_stats = self.backend.pred_stats
        # Every index read — pattern scans, point membership,
        # cardinality estimates — goes through the probe protocol, so
        # the graph never assumes how a backend stores its indices.
        self._probe = self.backend.probe()
        # Serializes index updates; see the module docstring for the
        # exact guarantees readers get.
        self._write_lock = threading.RLock()
        self.namespace_manager = NamespaceManager()

    @property
    def _size(self) -> int:
        return self.backend.size

    # -- dictionary encoding ----------------------------------------------

    def _intern(self, term: Node) -> int:
        """Id of a term, creating one (caller holds the write lock)."""
        return self.backend.intern(term)

    def _encode(self, term: Node) -> Optional[int]:
        """Id of a term if it has ever been interned, else ``None``."""
        return self._term_ids.get(term)

    # -- mutation ---------------------------------------------------------

    def add(self, *args: object) -> "Graph":
        """Add a triple; accepts ``add(s, p, o)`` or ``add(Triple(...))``."""
        if len(args) == 1 and isinstance(args[0], (Triple, tuple)):
            s, p, o = args[0]  # type: ignore[misc]
        elif len(args) == 3:
            s, p, o = args
        else:
            raise TypeError("add() takes a Triple or three terms")
        s, p, o = validate_triple(s, p, o)
        backend = self.backend
        with self._write_lock:
            backend.insert(
                backend.intern(s), backend.intern(p), backend.intern(o)
            )
            backend.commit()
        return self

    def add_all(self, triples: Iterable[Union[Triple, tuple]]) -> "Graph":
        """Bulk-add every triple of an iterable; returns self.

        The whole batch is validated and encoded under one lock
        acquisition instead of going triple-by-triple through
        :meth:`add`, and the cardinality statistics are merged once at
        the end rather than updated per triple (``insert_batch``).
        """
        # Materialise first: iterating another Graph must snapshot it
        # (its own lock) before we start holding ours.
        batch = [validate_triple(*t) for t in triples]
        if not batch:
            return self
        backend = self.backend
        with self._write_lock:
            intern = backend.intern
            backend.insert_batch(
                (intern(s), intern(p), intern(o)) for s, p, o in batch
            )
            backend.commit()
        return self

    def remove(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
    ) -> int:
        """Remove all triples matching the pattern; returns count removed."""
        backend = self.backend
        with self._write_lock:
            matched = list(self._match_encoded((subject, predicate, obj)))
            for sid, pid, oid in matched:
                backend.delete(sid, pid, oid)
            backend.commit()
        return len(matched)

    def clear(self) -> None:
        """Remove every triple (the term dictionary is kept)."""
        with self._write_lock:
            self.backend.clear()
            self.backend.commit()

    # -- durability -------------------------------------------------------

    def flush(self) -> None:
        """Force buffered mutations to stable storage (durable backends)."""
        with self._write_lock:
            self.backend.flush()

    def close(self) -> None:
        """Flush and release backend resources; idempotent."""
        with self._write_lock:
            self.backend.close()

    def __enter__(self) -> "Graph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- query ------------------------------------------------------------

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Triples matching a pattern of bound terms and ``None``.

        The matches are materialised under the graph lock, so the
        returned iterator is a consistent snapshot even while other
        threads mutate the graph (see the module docstring).
        """
        with self._write_lock:
            terms = self._term_list
            return iter(
                [
                    Triple(terms[sid], terms[pid], terms[oid])
                    for sid, pid, oid in self._match_encoded(pattern)
                ]
            )

    def _match_encoded(
        self, pattern: TriplePattern
    ) -> Iterator[Tuple[int, int, int]]:
        """Encoded id triples matching a term pattern (lock held)."""
        s, p, o = pattern
        sid = pid = oid = None
        if s is not None:
            sid = self._term_ids.get(s)
            if sid is None:
                return
        if p is not None:
            pid = self._term_ids.get(p)
            if pid is None:
                return
        if o is not None:
            oid = self._term_ids.get(o)
            if oid is None:
                return
        yield from self._match_ids(sid, pid, oid)

    def _match_ids(
        self, sid: Optional[int], pid: Optional[int], oid: Optional[int]
    ) -> Iterator[Tuple[int, int, int]]:
        """Encoded matches for an id pattern (``None`` = wildcard)."""
        return self._probe.scan(sid, pid, oid)

    def __contains__(self, pattern: Union[Triple, TriplePattern]) -> bool:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            ids = self._term_ids
            sid, pid, oid = ids.get(s), ids.get(p), ids.get(o)
            if sid is None or pid is None or oid is None:
                return False
            return self._probe.contains(sid, pid, oid)
        return next(self.triples((s, p, o)), None) is not None

    def subjects(
        self, predicate: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Subject]:
        """Distinct subjects matching (predicate, object)."""
        seen: Set[Node] = set()
        for s, _, __ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s  # type: ignore[misc]

    def predicates(
        self, subject: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Predicate]:
        """Distinct predicates matching (subject, object)."""
        seen: Set[Node] = set()
        for _, p, __ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p  # type: ignore[misc]

    def objects(
        self, subject: Optional[Node] = None, predicate: Optional[Node] = None
    ) -> Iterator[Object]:
        """Distinct objects matching (subject, predicate)."""
        seen: Set[Node] = set()
        for _, __, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o  # type: ignore[misc]

    def value(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
        default: Optional[Node] = None,
    ) -> Optional[Node]:
        """Return the single term completing the pattern, or ``default``.

        Exactly one of the three positions must be ``None``; raises
        ``ValueError`` if more than one term matches.
        """
        free = [subject, predicate, obj].count(None)
        if free != 1:
            raise ValueError("value() requires exactly one unbound position")
        matches = list(self.triples((subject, predicate, obj)))
        if not matches:
            return default
        if len(matches) > 1:
            raise ValueError(
                f"pattern ({subject}, {predicate}, {obj}) matched "
                f"{len(matches)} triples; expected one"
            )
        s, p, o = matches[0]
        if subject is None:
            return s
        if predicate is None:
            return p
        return o

    # -- planner statistics -------------------------------------------------

    def predicate_stats(self, predicate: Node) -> PredicateStats:
        """Cardinality statistics of one predicate (zeros if absent)."""
        with self._write_lock:
            pid = self._term_ids.get(predicate)
            if pid is None:
                return PredicateStats()
            stats = self._pred_stats.get(pid)
            return stats.copy() if stats is not None else PredicateStats()

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return self.backend.size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self.backend.size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(t in other for t in self)

    __hash__ = None  # type: ignore[assignment]

    # -- set operations ----------------------------------------------------

    def __add__(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.identifier = None
        result.add_all(other)
        return result

    def __sub__(self, other: "Graph") -> "Graph":
        result = Graph(backend=MemoryBackend())
        result.add_all(t for t in self if t not in other)
        return result

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = Graph(backend=MemoryBackend())
        result.add_all(t for t in small if t in large)
        return result

    def copy(self) -> "Graph":
        """An independent, memory-backed copy of the graph.

        Copies the term dictionary, the three indices and the
        statistics structurally — a bulk index build, not a
        triple-by-triple re-insertion.  The statistics are copied
        explicitly (never recounted), so ``predicate_stats()`` of the
        copy is identical to the source's by construction; copying a
        durable graph yields a plain in-memory one.
        """
        result = Graph(self.identifier, backend=MemoryBackend())
        with self._write_lock:
            copy_state(self.backend, result.backend)
        return result

    # -- convenience -------------------------------------------------------

    def bind(self, prefix: str, namespace: str) -> None:
        """Bind a prefix for serialisation."""
        self.namespace_manager.bind(prefix, namespace)

    def query(
        self,
        sparql: str,
        *,
        use_planner: bool = True,
        use_cache: bool = True,
    ):
        """Evaluate a SPARQL query string over this graph.

        By default the query is compiled by the one-shot planner
        (``repro.rdf.sparql.plan``) through the process-wide prepared-
        query cache, so repeat evaluations of the same text skip the
        lexer/parser entirely.  ``use_planner=False`` routes through
        the naive reference evaluator (differential tests, benchmark
        baselines); ``use_cache=False`` forces recompilation.

        Imported lazily to keep the storage layer free of parser
        dependencies; returns the engine's result object.  Each
        evaluation (compile or parse included) is timed onto the
        ``repro_rdf_sparql_query_seconds`` histogram.
        """
        import time

        from repro.observability import get_registry

        started = time.perf_counter()
        try:
            if use_planner:
                from repro.rdf.sparql.plan import compile_query

                return compile_query(sparql, use_cache=use_cache).execute(self)
            from repro.rdf.sparql import evaluate

            return evaluate(self, sparql)
        finally:
            registry = get_registry()
            registry.counter(
                "repro_rdf_sparql_queries_total",
                "SPARQL evaluations over any graph.",
            ).inc()
            registry.counter(
                "repro_rdf_plan_executions_total",
                "Graph.query() evaluations by execution path.",
                labels=("planner",),
            ).labels(planner="on" if use_planner else "off").inc()
            registry.histogram(
                "repro_rdf_sparql_query_seconds",
                "Wall-clock seconds of one SPARQL evaluation "
                "(parse included).",
            ).observe(time.perf_counter() - started)

    def serialize(self, format: str = "ntriples") -> str:
        """Render the graph in a named format (ntriples/turtle)."""

        from repro.rdf.serializer import serialize_graph

        return serialize_graph(self, format)

    def parse(self, text: str, format: str = "ntriples") -> "Graph":
        """Parse serialised RDF into this graph; returns self."""

        from repro.rdf.serializer import parse_into_graph

        parse_into_graph(self, text, format)
        return self

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name} ({self.backend.size} triples)>"
