"""A dictionary-encoded, indexed in-memory triple store.

Every term is interned once into a per-graph dictionary (``Node`` →
dense integer id) and the three permutation indices (SPO, POS, OSP)
hold those small integers instead of full term objects, so any triple
pattern with at least one bound position resolves without a full scan
and index probes hash machine ints rather than composite terms.  This
is the storage layer under the annotation repositories (paper Sec. 5);
the SPARQL engine in ``repro.rdf.sparql`` evaluates queries over it,
keeping the store swappable as the paper requires.

Alongside the indices the graph maintains per-predicate cardinality
statistics (triple count, distinct subjects, distinct objects) updated
incrementally on every add/remove; the query planner in
``repro.rdf.sparql.plan`` reads them to choose a join order once per
query instead of re-sorting patterns per solution.

Concurrency contract
--------------------

Index *mutation* (``add``/``remove``/``clear``) is serialized by a
per-graph re-entrant lock (mirroring the ``_bnode_lock`` that already
guards blank-node id allocation in ``repro.rdf.term``), so concurrent
writers — e.g. parallel annotators of the execution runtime filling
one shared repository — can never corrupt the indices, the term
dictionary, or the statistics.  Pattern reads (``triples``, and
everything built on it: ``__iter__``, ``subjects``/``objects``,
SPARQL, serialisation) materialise their matches *under the same
lock*, so every read is a consistent snapshot: a concurrent add is
observed entirely or not at all, and iteration never races a
mutation.  Planned SPARQL execution likewise holds the lock for the
whole (materialising) evaluation.  This is what lets the execution
runtime share one transient repository session across concurrent
quality-view jobs — one job's data-enrichment reads while another
job's annotator writes.  Point ``__contains__`` checks on a fully
bound triple read a single index cell and take no lock.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.rdf.namespace import NamespaceManager
from repro.rdf.term import BNode, Literal, Node, URIRef
from repro.rdf.triple import Object, Predicate, Subject, Triple, validate_triple

#: An index level: first-position id -> second-position id -> third ids.
_Index = Dict[int, Dict[int, Set[int]]]

TriplePattern = Tuple[Optional[Node], Optional[Node], Optional[Node]]


class PredicateStats:
    """Incremental cardinalities of one predicate (planner input)."""

    __slots__ = ("triples", "subjects", "objects")

    def __init__(self, triples: int = 0, subjects: int = 0, objects: int = 0):
        self.triples = triples
        self.subjects = subjects
        self.objects = objects

    def copy(self) -> "PredicateStats":
        return PredicateStats(self.triples, self.subjects, self.objects)

    def __repr__(self) -> str:
        return (
            f"PredicateStats(triples={self.triples}, "
            f"subjects={self.subjects}, objects={self.objects})"
        )


class Graph:
    """A set of RDF triples with pattern-matching access paths."""

    def __init__(self, identifier: Optional[str] = None) -> None:
        self.identifier = identifier
        # Term dictionary: every distinct term gets a dense integer id.
        # Ids are never recycled (removal keeps the dictionary entry),
        # so a decoded id is always valid without holding the lock.
        self._term_ids: Dict[Node, int] = {}
        self._term_list: List[Node] = []
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._pred_stats: Dict[int, PredicateStats] = {}
        self._size = 0
        # Serializes index updates; see the module docstring for the
        # exact guarantees readers get.
        self._write_lock = threading.RLock()
        self.namespace_manager = NamespaceManager()

    # -- dictionary encoding ----------------------------------------------

    def _intern(self, term: Node) -> int:
        """Id of a term, creating one (caller holds the write lock)."""
        tid = self._term_ids.get(term)
        if tid is None:
            tid = len(self._term_list)
            self._term_ids[term] = tid
            self._term_list.append(term)
        return tid

    def _encode(self, term: Node) -> Optional[int]:
        """Id of a term if it has ever been interned, else ``None``."""
        return self._term_ids.get(term)

    # -- mutation ---------------------------------------------------------

    def _insert_encoded(self, sid: int, pid: int, oid: int) -> bool:
        """Insert one encoded triple; returns True if it was new.

        Caller holds the write lock.  Maintains the per-predicate
        cardinality statistics incrementally.
        """
        by_p = self._spo.get(sid)
        if by_p is not None:
            objects = by_p.get(pid)
            if objects is not None and oid in objects:
                return False
        stats = self._pred_stats.get(pid)
        if stats is None:
            stats = self._pred_stats[pid] = PredicateStats()
        if by_p is None or pid not in by_p:
            stats.subjects += 1
        by_o = self._pos.get(pid)
        if by_o is None:
            self._pos[pid] = by_o = {}
        if oid not in by_o:
            stats.objects += 1
        stats.triples += 1
        if by_p is None:
            self._spo[sid] = by_p = {}
        by_p.setdefault(pid, set()).add(oid)
        by_o.setdefault(oid, set()).add(sid)
        self._osp.setdefault(oid, {}).setdefault(sid, set()).add(pid)
        self._size += 1
        return True

    def _delete_encoded(self, sid: int, pid: int, oid: int) -> None:
        """Remove one present encoded triple (caller holds the lock)."""
        by_p = self._spo[sid]
        objects = by_p[pid]
        objects.discard(oid)
        stats = self._pred_stats[pid]
        stats.triples -= 1
        if not objects:
            del by_p[pid]
            stats.subjects -= 1
            if not by_p:
                del self._spo[sid]
        by_o = self._pos[pid]
        subjects = by_o[oid]
        subjects.discard(sid)
        if not subjects:
            del by_o[oid]
            stats.objects -= 1
            if not by_o:
                del self._pos[pid]
        if stats.triples == 0:
            del self._pred_stats[pid]
        by_s = self._osp[oid]
        preds = by_s[sid]
        preds.discard(pid)
        if not preds:
            del by_s[sid]
            if not by_s:
                del self._osp[oid]
        self._size -= 1

    def add(self, *args: object) -> "Graph":
        """Add a triple; accepts ``add(s, p, o)`` or ``add(Triple(...))``."""
        if len(args) == 1 and isinstance(args[0], (Triple, tuple)):
            s, p, o = args[0]  # type: ignore[misc]
        elif len(args) == 3:
            s, p, o = args
        else:
            raise TypeError("add() takes a Triple or three terms")
        s, p, o = validate_triple(s, p, o)
        with self._write_lock:
            self._insert_encoded(
                self._intern(s), self._intern(p), self._intern(o)
            )
        return self

    def add_all(self, triples: Iterable[Union[Triple, tuple]]) -> "Graph":
        """Bulk-add every triple of an iterable; returns self.

        The whole batch is validated and encoded under one lock
        acquisition instead of going triple-by-triple through
        :meth:`add`, and the cardinality statistics are merged once at
        the end rather than updated per triple.
        """
        # Materialise first: iterating another Graph must snapshot it
        # (its own lock) before we start holding ours.
        batch = [validate_triple(*t) for t in triples]
        if not batch:
            return self
        with self._write_lock:
            intern = self._intern
            spo, pos, osp = self._spo, self._pos, self._osp
            added: Dict[int, List[int]] = {}  # pid -> [triples, subj, obj]
            count = 0
            for s, p, o in batch:
                sid, pid, oid = intern(s), intern(p), intern(o)
                by_p = spo.get(sid)
                if by_p is None:
                    spo[sid] = by_p = {}
                objects = by_p.get(pid)
                if objects is None:
                    by_p[pid] = objects = set()
                    new_subject = True
                else:
                    if oid in objects:
                        continue
                    new_subject = False
                by_o = pos.get(pid)
                if by_o is None:
                    pos[pid] = by_o = {}
                new_object = oid not in by_o
                objects.add(oid)
                by_o.setdefault(oid, set()).add(sid)
                osp.setdefault(oid, {}).setdefault(sid, set()).add(pid)
                delta = added.get(pid)
                if delta is None:
                    delta = added[pid] = [0, 0, 0]
                delta[0] += 1
                if new_subject:
                    delta[1] += 1
                if new_object:
                    delta[2] += 1
                count += 1
            # one statistics merge for the whole batch
            for pid, (n_triples, n_subjects, n_objects) in added.items():
                stats = self._pred_stats.get(pid)
                if stats is None:
                    stats = self._pred_stats[pid] = PredicateStats()
                stats.triples += n_triples
                stats.subjects += n_subjects
                stats.objects += n_objects
            self._size += count
        return self

    def remove(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
    ) -> int:
        """Remove all triples matching the pattern; returns count removed."""
        with self._write_lock:
            matched = list(self._match_encoded((subject, predicate, obj)))
            for sid, pid, oid in matched:
                self._delete_encoded(sid, pid, oid)
        return len(matched)

    def clear(self) -> None:
        """Remove every triple (the term dictionary is kept)."""
        with self._write_lock:
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
            self._pred_stats.clear()
            self._size = 0

    # -- query ------------------------------------------------------------

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Triples matching a pattern of bound terms and ``None``.

        The matches are materialised under the graph lock, so the
        returned iterator is a consistent snapshot even while other
        threads mutate the graph (see the module docstring).
        """
        with self._write_lock:
            terms = self._term_list
            return iter(
                [
                    Triple(terms[sid], terms[pid], terms[oid])
                    for sid, pid, oid in self._match_encoded(pattern)
                ]
            )

    def _match_encoded(
        self, pattern: TriplePattern
    ) -> Iterator[Tuple[int, int, int]]:
        """Encoded id triples matching a term pattern (lock held)."""
        s, p, o = pattern
        sid = pid = oid = None
        if s is not None:
            sid = self._term_ids.get(s)
            if sid is None:
                return
        if p is not None:
            pid = self._term_ids.get(p)
            if pid is None:
                return
        if o is not None:
            oid = self._term_ids.get(o)
            if oid is None:
                return
        yield from self._match_ids(sid, pid, oid)

    def _match_ids(
        self, sid: Optional[int], pid: Optional[int], oid: Optional[int]
    ) -> Iterator[Tuple[int, int, int]]:
        """Encoded matches for an id pattern (``None`` = wildcard)."""
        if sid is not None:
            by_p = self._spo.get(sid)
            if by_p is None:
                return
            if pid is not None:
                objects = by_p.get(pid)
                if objects is None:
                    return
                if oid is not None:
                    if oid in objects:
                        yield (sid, pid, oid)
                    return
                for obj in objects:
                    yield (sid, pid, obj)
                return
            for pred, objects in by_p.items():
                if oid is not None:
                    if oid in objects:
                        yield (sid, pred, oid)
                else:
                    for obj in objects:
                        yield (sid, pred, obj)
            return
        if pid is not None:
            by_o = self._pos.get(pid)
            if by_o is None:
                return
            if oid is not None:
                for subj in by_o.get(oid, ()):
                    yield (subj, pid, oid)
                return
            for obj, subjects in by_o.items():
                for subj in subjects:
                    yield (subj, pid, obj)
            return
        if oid is not None:
            by_s = self._osp.get(oid)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, oid)
            return
        for subj, by_p in self._spo.items():
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def __contains__(self, pattern: Union[Triple, TriplePattern]) -> bool:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            ids = self._term_ids
            sid, pid, oid = ids.get(s), ids.get(p), ids.get(o)
            if sid is None or pid is None or oid is None:
                return False
            return oid in self._spo.get(sid, {}).get(pid, ())
        return next(self.triples((s, p, o)), None) is not None

    def subjects(
        self, predicate: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Subject]:
        """Distinct subjects matching (predicate, object)."""
        seen: Set[Node] = set()
        for s, _, __ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s  # type: ignore[misc]

    def predicates(
        self, subject: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Predicate]:
        """Distinct predicates matching (subject, object)."""
        seen: Set[Node] = set()
        for _, p, __ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p  # type: ignore[misc]

    def objects(
        self, subject: Optional[Node] = None, predicate: Optional[Node] = None
    ) -> Iterator[Object]:
        """Distinct objects matching (subject, predicate)."""
        seen: Set[Node] = set()
        for _, __, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o  # type: ignore[misc]

    def value(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
        default: Optional[Node] = None,
    ) -> Optional[Node]:
        """Return the single term completing the pattern, or ``default``.

        Exactly one of the three positions must be ``None``; raises
        ``ValueError`` if more than one term matches.
        """
        free = [subject, predicate, obj].count(None)
        if free != 1:
            raise ValueError("value() requires exactly one unbound position")
        matches = list(self.triples((subject, predicate, obj)))
        if not matches:
            return default
        if len(matches) > 1:
            raise ValueError(
                f"pattern ({subject}, {predicate}, {obj}) matched "
                f"{len(matches)} triples; expected one"
            )
        s, p, o = matches[0]
        if subject is None:
            return s
        if predicate is None:
            return p
        return o

    # -- planner statistics -------------------------------------------------

    def predicate_stats(self, predicate: Node) -> PredicateStats:
        """Cardinality statistics of one predicate (zeros if absent)."""
        with self._write_lock:
            pid = self._term_ids.get(predicate)
            if pid is None:
                return PredicateStats()
            stats = self._pred_stats.get(pid)
            return stats.copy() if stats is not None else PredicateStats()

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(t in other for t in self)

    __hash__ = None  # type: ignore[assignment]

    # -- set operations ----------------------------------------------------

    def __add__(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.identifier = None
        result.add_all(other)
        return result

    def __sub__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.add_all(t for t in self if t not in other)
        return result

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = Graph()
        result.add_all(t for t in small if t in large)
        return result

    def copy(self) -> "Graph":
        """An independent copy of the graph.

        Copies the term dictionary, the three indices and the
        statistics structurally — a bulk index build, not a
        triple-by-triple re-insertion.
        """
        result = Graph(self.identifier)
        with self._write_lock:
            result._term_ids = dict(self._term_ids)
            result._term_list = list(self._term_list)
            result._spo = {
                a: {b: set(c) for b, c in by_b.items()}
                for a, by_b in self._spo.items()
            }
            result._pos = {
                a: {b: set(c) for b, c in by_b.items()}
                for a, by_b in self._pos.items()
            }
            result._osp = {
                a: {b: set(c) for b, c in by_b.items()}
                for a, by_b in self._osp.items()
            }
            result._pred_stats = {
                pid: stats.copy() for pid, stats in self._pred_stats.items()
            }
            result._size = self._size
        return result

    # -- convenience -------------------------------------------------------

    def bind(self, prefix: str, namespace: str) -> None:
        """Bind a prefix for serialisation."""
        self.namespace_manager.bind(prefix, namespace)

    def query(
        self,
        sparql: str,
        *,
        use_planner: bool = True,
        use_cache: bool = True,
    ):
        """Evaluate a SPARQL query string over this graph.

        By default the query is compiled by the one-shot planner
        (``repro.rdf.sparql.plan``) through the process-wide prepared-
        query cache, so repeat evaluations of the same text skip the
        lexer/parser entirely.  ``use_planner=False`` routes through
        the naive reference evaluator (differential tests, benchmark
        baselines); ``use_cache=False`` forces recompilation.

        Imported lazily to keep the storage layer free of parser
        dependencies; returns the engine's result object.  Each
        evaluation (compile or parse included) is timed onto the
        ``repro_rdf_sparql_query_seconds`` histogram.
        """
        import time

        from repro.observability import get_registry

        started = time.perf_counter()
        try:
            if use_planner:
                from repro.rdf.sparql.plan import compile_query

                return compile_query(sparql, use_cache=use_cache).execute(self)
            from repro.rdf.sparql import evaluate

            return evaluate(self, sparql)
        finally:
            registry = get_registry()
            registry.counter(
                "repro_rdf_sparql_queries_total",
                "SPARQL evaluations over any graph.",
            ).inc()
            registry.counter(
                "repro_rdf_plan_executions_total",
                "Graph.query() evaluations by execution path.",
                labels=("planner",),
            ).labels(planner="on" if use_planner else "off").inc()
            registry.histogram(
                "repro_rdf_sparql_query_seconds",
                "Wall-clock seconds of one SPARQL evaluation "
                "(parse included).",
            ).observe(time.perf_counter() - started)

    def serialize(self, format: str = "ntriples") -> str:
        """Render the graph in a named format (ntriples/turtle)."""

        from repro.rdf.serializer import serialize_graph

        return serialize_graph(self, format)

    def parse(self, text: str, format: str = "ntriples") -> "Graph":
        """Parse serialised RDF into this graph; returns self."""

        from repro.rdf.serializer import parse_into_graph

        parse_into_graph(self, text, format)
        return self

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name} ({self._size} triples)>"
