"""An indexed in-memory triple store.

The graph maintains three permutation indices (SPO, POS, OSP) so that
any triple pattern with at least one bound position resolves without a
full scan.  This is the storage layer under the annotation repositories
(paper Sec. 5); the SPARQL engine in ``repro.rdf.sparql`` evaluates
queries over it, keeping the store swappable as the paper requires.

Concurrency contract
--------------------

Index *mutation* (``add``/``remove``/``clear``) is serialized by a
per-graph re-entrant lock (mirroring the ``_bnode_lock`` that already
guards blank-node id allocation in ``repro.rdf.term``), so concurrent
writers — e.g. parallel annotators of the execution runtime filling
one shared repository — can never corrupt the three indices or the
size counter.  Pattern reads (``triples``, and everything built on it:
``__iter__``, ``subjects``/``objects``, SPARQL, serialisation)
materialise their matches *under the same lock*, so every read is a
consistent snapshot: a concurrent add is observed entirely or not at
all, and iteration never races a mutation.  This is what lets the
execution runtime share one transient repository session across
concurrent quality-view jobs — one job's data-enrichment reads while
another job's annotator writes.  Point ``__contains__`` checks on a
fully bound triple read a single index cell and take no lock.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

from repro.rdf.namespace import NamespaceManager
from repro.rdf.term import BNode, Literal, Node, URIRef
from repro.rdf.triple import Object, Predicate, Subject, Triple, validate_triple

_Index = Dict[Node, Dict[Node, Set[Node]]]

TriplePattern = Tuple[Optional[Node], Optional[Node], Optional[Node]]


def _index_add(index: _Index, a: Node, b: Node, c: Node) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: Node, b: Node, c: Node) -> None:
    level_b = index.get(a)
    if level_b is None:
        return
    level_c = level_b.get(b)
    if level_c is None:
        return
    level_c.discard(c)
    if not level_c:
        del level_b[b]
        if not level_b:
            del index[a]


class Graph:
    """A set of RDF triples with pattern-matching access paths."""

    def __init__(self, identifier: Optional[str] = None) -> None:
        self.identifier = identifier
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        # Serializes index updates; see the module docstring for the
        # exact guarantees readers get.
        self._write_lock = threading.RLock()
        self.namespace_manager = NamespaceManager()

    # -- mutation ---------------------------------------------------------

    def add(self, *args: object) -> "Graph":
        """Add a triple; accepts ``add(s, p, o)`` or ``add(Triple(...))``."""
        if len(args) == 1 and isinstance(args[0], (Triple, tuple)):
            s, p, o = args[0]  # type: ignore[misc]
        elif len(args) == 3:
            s, p, o = args
        else:
            raise TypeError("add() takes a Triple or three terms")
        s, p, o = validate_triple(s, p, o)
        with self._write_lock:
            if o not in self._spo.get(s, {}).get(p, ()):
                _index_add(self._spo, s, p, o)
                _index_add(self._pos, p, o, s)
                _index_add(self._osp, o, s, p)
                self._size += 1
        return self

    def add_all(self, triples: Iterable[Union[Triple, tuple]]) -> "Graph":
        """Add every triple of an iterable; returns self."""
        for triple in triples:
            self.add(triple)
        return self

    def remove(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
    ) -> int:
        """Remove all triples matching the pattern; returns count removed."""
        with self._write_lock:
            matched = list(self.triples((subject, predicate, obj)))
            for s, p, o in matched:
                _index_remove(self._spo, s, p, o)
                _index_remove(self._pos, p, o, s)
                _index_remove(self._osp, o, s, p)
            self._size -= len(matched)
        return len(matched)

    def clear(self) -> None:
        """Remove every triple."""
        with self._write_lock:
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
            self._size = 0

    # -- query ------------------------------------------------------------

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Triples matching a pattern of bound terms and ``None``.

        The matches are materialised under the graph lock, so the
        returned iterator is a consistent snapshot even while other
        threads mutate the graph (see the module docstring).
        """
        with self._write_lock:
            return iter(list(self._match(pattern)))

    def _match(self, pattern: TriplePattern) -> Iterator[Triple]:
        s, p, o = pattern
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objects = by_p.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            for pred, objects in by_p.items():
                if o is not None:
                    if o in objects:
                        yield Triple(s, pred, o)
                else:
                    for obj in objects:
                        yield Triple(s, pred, obj)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                for subj in by_o.get(o, ()):
                    yield Triple(subj, p, o)
                return
            for obj, subjects in by_o.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        for subj, by_p in self._spo.items():
            for pred, objects in by_p.items():
                for obj in objects:
                    yield Triple(subj, pred, obj)

    def __contains__(self, pattern: Union[Triple, TriplePattern]) -> bool:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            return o in self._spo.get(s, {}).get(p, ())
        return next(self.triples((s, p, o)), None) is not None

    def subjects(
        self, predicate: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Subject]:
        """Distinct subjects matching (predicate, object)."""
        seen: Set[Node] = set()
        for s, _, __ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s  # type: ignore[misc]

    def predicates(
        self, subject: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Predicate]:
        """Distinct predicates matching (subject, object)."""
        seen: Set[Node] = set()
        for _, p, __ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p  # type: ignore[misc]

    def objects(
        self, subject: Optional[Node] = None, predicate: Optional[Node] = None
    ) -> Iterator[Object]:
        """Distinct objects matching (subject, predicate)."""
        seen: Set[Node] = set()
        for _, __, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o  # type: ignore[misc]

    def value(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
        default: Optional[Node] = None,
    ) -> Optional[Node]:
        """Return the single term completing the pattern, or ``default``.

        Exactly one of the three positions must be ``None``; raises
        ``ValueError`` if more than one term matches.
        """
        free = [subject, predicate, obj].count(None)
        if free != 1:
            raise ValueError("value() requires exactly one unbound position")
        matches = list(self.triples((subject, predicate, obj)))
        if not matches:
            return default
        if len(matches) > 1:
            raise ValueError(
                f"pattern ({subject}, {predicate}, {obj}) matched "
                f"{len(matches)} triples; expected one"
            )
        s, p, o = matches[0]
        if subject is None:
            return s
        if predicate is None:
            return p
        return o

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(t in other for t in self)

    __hash__ = None  # type: ignore[assignment]

    # -- set operations ----------------------------------------------------

    def __add__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.add_all(self)
        result.add_all(other)
        return result

    def __sub__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.add_all(t for t in self if t not in other)
        return result

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = Graph()
        result.add_all(t for t in small if t in large)
        return result

    def copy(self) -> "Graph":
        """An independent copy of the graph."""
        result = Graph(self.identifier)
        result.add_all(self)
        return result

    # -- convenience -------------------------------------------------------

    def bind(self, prefix: str, namespace: str) -> None:
        """Bind a prefix for serialisation."""
        self.namespace_manager.bind(prefix, namespace)

    def query(self, sparql: str):
        """Evaluate a SPARQL query string over this graph.

        Imported lazily to keep the storage layer free of parser
        dependencies; returns the engine's result object.  Each
        evaluation (parse included) is timed onto the
        ``repro_rdf_sparql_query_seconds`` histogram.
        """
        import time

        from repro.observability import get_registry
        from repro.rdf.sparql import evaluate

        started = time.perf_counter()
        try:
            return evaluate(self, sparql)
        finally:
            registry = get_registry()
            registry.counter(
                "repro_rdf_sparql_queries_total",
                "SPARQL evaluations over any graph.",
            ).inc()
            registry.histogram(
                "repro_rdf_sparql_query_seconds",
                "Wall-clock seconds of one SPARQL evaluation "
                "(parse included).",
            ).observe(time.perf_counter() - started)

    def serialize(self, format: str = "ntriples") -> str:
        """Render the graph in a named format (ntriples/turtle)."""

        from repro.rdf.serializer import serialize_graph

        return serialize_graph(self, format)

    def parse(self, text: str, format: str = "ntriples") -> "Graph":
        """Parse serialised RDF into this graph; returns self."""

        from repro.rdf.serializer import parse_into_graph

        parse_into_graph(self, text, format)
        return self

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name} ({self._size} triples)>"
