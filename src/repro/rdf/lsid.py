"""Life Science Identifiers (LSID, OMG dtc/04-05-01).

The paper (Sec. 3) wraps native data identifiers — e.g. Uniprot
accession numbers such as ``P30089`` — as LSID URNs so that data items
can be referenced as RDF resources:

    urn:lsid:uniprot.org:uniprot:P30089

This module implements the URN syntax, parsing, and the wrapping of
accession numbers for the naming authorities used in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rdf.term import URIRef

_SCHEME = "urn:lsid:"


class LSIDError(ValueError):
    """Raised for malformed LSID URNs."""


@dataclass(frozen=True)
class LSID:
    """A parsed LSID: authority, namespace, object id, optional revision."""

    authority: str
    namespace: str
    object_id: str
    revision: Optional[str] = None

    def __post_init__(self) -> None:
        for field_name in ("authority", "namespace", "object_id"):
            value = getattr(self, field_name)
            if not value:
                raise LSIDError(f"LSID {field_name} must be non-empty")
            if ":" in value:
                raise LSIDError(f"LSID {field_name} must not contain ':': {value!r}")

    def __str__(self) -> str:
        base = f"{_SCHEME}{self.authority}:{self.namespace}:{self.object_id}"
        if self.revision is not None:
            return f"{base}:{self.revision}"
        return base

    def to_uri(self) -> URIRef:
        """The LSID as a URIRef."""

        return URIRef(str(self))

    @classmethod
    def parse(cls, text: str) -> "LSID":
        """Parse an LSID URN; LSIDError on malformed input."""

        text = str(text)
        if not text.lower().startswith(_SCHEME):
            raise LSIDError(f"not an LSID URN: {text!r}")
        body = text[len(_SCHEME):]
        parts = body.split(":")
        if len(parts) == 3:
            return cls(parts[0], parts[1], parts[2])
        if len(parts) == 4:
            return cls(parts[0], parts[1], parts[2], parts[3])
        raise LSIDError(f"LSID must have 3 or 4 colon-separated parts: {text!r}")

    @classmethod
    def is_lsid(cls, text: str) -> bool:
        """True when the text parses as an LSID."""

        try:
            cls.parse(text)
        except LSIDError:
            return False
        return True


#: Naming authorities used throughout the reproduction.
UNIPROT_AUTHORITY = "uniprot.org"
PEDRO_AUTHORITY = "pedro.man.ac.uk"
IMPRINT_AUTHORITY = "imprint.man.ac.uk"
GO_AUTHORITY = "geneontology.org"


def uniprot_lsid(accession: str) -> URIRef:
    """Wrap a Uniprot accession number (e.g. ``P30089``) as an LSID URI."""
    return LSID(UNIPROT_AUTHORITY, "uniprot", accession).to_uri()


def pedro_lsid(sample_id: str) -> URIRef:
    """Wrap a PEDRo sample identifier as an LSID URI."""
    return LSID(PEDRO_AUTHORITY, "pedro", sample_id).to_uri()


def imprint_hit_lsid(run_id: str, hit_index: int) -> URIRef:
    """Identify one hit entry of one Imprint run as an LSID URI."""
    return LSID(IMPRINT_AUTHORITY, "hit", f"{run_id}.{hit_index}").to_uri()


def go_lsid(term_id: str) -> URIRef:
    """Wrap a GO term identifier (e.g. ``GO:0004872``) as an LSID URI.

    Colons are not legal inside LSID components, so the canonical
    ``GO:NNNNNNN`` form is stored with the prefix stripped.
    """
    clean = term_id.replace("GO:", "")
    return LSID(GO_AUTHORITY, "go", clean).to_uri()


def accession_of(uri: URIRef) -> str:
    """Recover the native identifier wrapped inside an LSID URI."""
    return LSID.parse(str(uri)).object_id
