"""Namespaces and prefix management for URI construction and rendering."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.rdf.term import URIRef


class Namespace(str):
    """A URI prefix from which member URIs are derived by attribute access.

    >>> Q = Namespace("http://qurator.org/iq#")
    >>> Q.HitRatio
    URIRef('http://qurator.org/iq#HitRatio')
    """

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("__"):
            raise AttributeError(name)
        return URIRef(str(self) + name)

    def __getitem__(self, name: str) -> URIRef:
        return URIRef(str(self) + name)

    def term(self, name: str) -> URIRef:
        """The member URI for a local name."""

        return URIRef(str(self) + name)

    def __contains__(self, uri: object) -> bool:
        return isinstance(uri, str) and str(uri).startswith(str(self))


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DC = Namespace("http://purl.org/dc/elements/1.1/")

#: The Qurator IQ-model namespace; ``q:`` in the paper's examples.
Q = Namespace("http://qurator.org/iq#")

#: The Qurator binding-model namespace.
QB = Namespace("http://qurator.org/binding#")

_DEFAULT_BINDINGS: Dict[str, str] = {
    "rdf": str(RDF),
    "rdfs": str(RDFS),
    "owl": str(OWL),
    "xsd": str(XSD),
    "dc": str(DC),
    "q": str(Q),
    "qb": str(QB),
}


class NamespaceManager:
    """A bidirectional prefix <-> namespace registry.

    Used by serialisers to compact URIs and by parsers (SPARQL, the QV
    language) to expand prefixed names such as ``q:HitRatio``.
    """

    def __init__(self, defaults: bool = True) -> None:
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if defaults:
            for prefix, namespace in _DEFAULT_BINDINGS.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        """Associate a prefix with a namespace."""

        namespace = str(namespace)
        if not replace and prefix in self._prefix_to_ns:
            if self._prefix_to_ns[prefix] != namespace:
                raise ValueError(f"prefix {prefix!r} is already bound")
            return
        old = self._prefix_to_ns.get(prefix)
        if old is not None:
            self._ns_to_prefix.pop(old, None)
        self._prefix_to_ns[prefix] = namespace
        self._ns_to_prefix[namespace] = prefix

    def expand(self, qname: str) -> URIRef:
        """Expand a prefixed name (``q:HitRatio``) to a full URI."""
        prefix, sep, local = qname.partition(":")
        if not sep:
            raise ValueError(f"not a prefixed name: {qname!r}")
        try:
            namespace = self._prefix_to_ns[prefix]
        except KeyError:
            raise ValueError(f"unknown namespace prefix {prefix!r}") from None
        return URIRef(namespace + local)

    def compact(self, uri: URIRef) -> Optional[str]:
        """Compact a URI to a prefixed name if a binding matches."""
        text = str(uri)
        best: Optional[Tuple[str, str]] = None
        for namespace, prefix in self._ns_to_prefix.items():
            if text.startswith(namespace):
                if best is None or len(namespace) > len(best[0]):
                    best = (namespace, prefix)
        if best is None:
            return None
        namespace, prefix = best
        local = text[len(namespace):]
        if not local or any(ch in local for ch in "/#:"):
            return None
        return f"{prefix}:{local}"

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        """Every (prefix, namespace) pair, sorted."""

        yield from sorted(self._prefix_to_ns.items())

    def namespace_for(self, prefix: str) -> Optional[str]:
        """The namespace bound to a prefix, or None."""

        return self._prefix_to_ns.get(prefix)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns
