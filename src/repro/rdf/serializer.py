"""Graph serialisation: N-Triples (read/write) and Turtle (write).

N-Triples is the interchange format used by the annotation repositories
for persistence; Turtle output is provided for human inspection of the
IQ model and annotation graphs.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from repro.rdf.term import BNode, Literal, Node, URIRef
from repro.rdf.triple import Triple


class SerializationError(ValueError):
    """Raised on malformed serialised RDF input."""


# -- N-Triples writing -----------------------------------------------------


def to_ntriples(graph) -> str:
    """The graph as sorted N-Triples text."""

    lines = sorted(triple.n3() for triple in graph)
    return "\n".join(lines) + ("\n" if lines else "")


# -- N-Triples parsing -----------------------------------------------------

_IRI_RE = re.compile(r"<([^<>\"\s]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'
    r"(?:\^\^<([^<>\s]*)>|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?"
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _ESCAPES:
                out.append(_ESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
            if pair == "\\U" and i + 10 <= len(text):
                out.append(chr(int(text[i + 2 : i + 10], 16)))
                i += 10
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _parse_term(text: str, pos: int, line_no: int) -> Tuple[Node, int]:
    while pos < len(text) and text[pos] in " \t":
        pos += 1
    if pos >= len(text):
        raise SerializationError(f"line {line_no}: unexpected end of line")
    ch = text[pos]
    if ch == "<":
        match = _IRI_RE.match(text, pos)
        if not match:
            raise SerializationError(f"line {line_no}: malformed IRI")
        return URIRef(match.group(1)), match.end()
    if ch == "_":
        match = _BNODE_RE.match(text, pos)
        if not match:
            raise SerializationError(f"line {line_no}: malformed blank node")
        return BNode(match.group(1)), match.end()
    if ch == '"':
        match = _LITERAL_RE.match(text, pos)
        if not match:
            raise SerializationError(f"line {line_no}: malformed literal")
        lexical = _unescape(match.group(1))
        datatype = match.group(2)
        lang = match.group(3)
        return Literal(lexical, datatype=datatype, lang=lang), match.end()
    raise SerializationError(f"line {line_no}: unexpected character {ch!r}")


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Yield the triples of an N-Triples document."""

    # Split on '\n' only: splitlines() would also break on \x0b/
    # etc., which may legitimately appear escaped inside literals.
    return parse_ntriples_lines(text.split("\n"))


def parse_ntriples_lines(lines) -> Iterator[Triple]:
    """Yield triples from an iterable of N-Triples lines.

    The streaming entry point: the bulk loader feeds file objects
    through here without materialising the document as one string.
    """

    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        subject, pos = _parse_term(line, 0, line_no)
        predicate, pos = _parse_term(line, pos, line_no)
        obj, pos = _parse_term(line, pos, line_no)
        rest = line[pos:].strip()
        if rest != ".":
            raise SerializationError(
                f"line {line_no}: expected terminating '.', got {rest!r}"
            )
        if not isinstance(predicate, URIRef):
            raise SerializationError(f"line {line_no}: predicate must be an IRI")
        if isinstance(subject, Literal):
            raise SerializationError(f"line {line_no}: subject cannot be a literal")
        yield Triple(subject, predicate, obj)  # type: ignore[arg-type]


# -- Turtle writing ---------------------------------------------------------


def _turtle_term(term: Node, nsm) -> str:
    if isinstance(term, URIRef):
        compact = nsm.compact(term)
        return compact if compact else term.n3()
    if isinstance(term, Literal):
        if term.datatype is not None:
            compact = nsm.compact(term.datatype)
            if compact and not term.is_numeric():
                base = term.n3().split("^^")[0]
                return f"{base}^^{compact}"
            if term.is_numeric():
                return term.lexical
        return term.n3()
    return term.n3()


def to_turtle(graph) -> str:
    """The graph as Turtle with subject grouping and prefixes."""

    nsm = graph.namespace_manager
    lines: List[str] = []
    used_prefixes = set()
    by_subject = {}
    for triple in graph:
        by_subject.setdefault(triple.subject, []).append(triple)
    body: List[str] = []
    for subject in sorted(by_subject, key=str):
        triples = sorted(by_subject[subject], key=lambda t: (str(t[1]), str(t[2])))
        subject_text = _turtle_term(subject, nsm)
        parts = [
            f"    {_turtle_term(p, nsm)} {_turtle_term(o, nsm)}"
            for _, p, o in triples
        ]
        body.append(subject_text + "\n" + " ;\n".join(parts) + " .")
        for term in {t for tr in triples for t in tr.terms()}:
            if isinstance(term, URIRef):
                compact = nsm.compact(term)
                if compact:
                    used_prefixes.add(compact.split(":", 1)[0])
            elif isinstance(term, Literal) and term.datatype is not None:
                compact = nsm.compact(term.datatype)
                if compact:
                    used_prefixes.add(compact.split(":", 1)[0])
    for prefix, namespace in nsm.namespaces():
        if prefix in used_prefixes:
            lines.append(f"@prefix {prefix}: <{namespace}> .")
    if lines:
        lines.append("")
    lines.extend(body)
    return "\n".join(lines) + ("\n" if body else "")


# -- dispatch ---------------------------------------------------------------

def _parse_turtle(text: str):
    from repro.rdf.turtle import parse_turtle

    return parse_turtle(text)


_WRITERS = {"ntriples": to_ntriples, "nt": to_ntriples, "turtle": to_turtle}
_READERS = {
    "ntriples": parse_ntriples,
    "nt": parse_ntriples,
    "turtle": _parse_turtle,
    "ttl": _parse_turtle,
}


def serialize_graph(graph, format: str = "ntriples") -> str:
    """Dispatch serialisation by format name."""

    try:
        writer = _WRITERS[format]
    except KeyError:
        raise SerializationError(f"unknown serialisation format {format!r}") from None
    return writer(graph)


def parse_into_graph(graph, text: str, format: str = "ntriples") -> None:
    """Dispatch parsing by format name into a graph."""

    try:
        reader = _READERS[format]
    except KeyError:
        raise SerializationError(f"unknown parse format {format!r}") from None
    graph.add_all(reader(text))
