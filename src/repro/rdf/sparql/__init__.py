"""A SPARQL query engine over :class:`repro.rdf.Graph`.

Implements the subset of the (2006 working-draft era) SPARQL language
the Qurator framework relies on for annotation lookup — SELECT / ASK /
CONSTRUCT query forms with basic graph patterns, FILTER, OPTIONAL,
UNION, DISTINCT, ORDER BY, LIMIT and OFFSET — plus the common builtin
functions used in filters.

Two execution paths share one parser and one result/modifier layer:

* :func:`evaluate` — the straightforward reference evaluator;
* :func:`compile_query` / :func:`prepare` — the planned path
  (:mod:`repro.rdf.sparql.plan`): one-shot join ordering from index
  statistics, filter pushdown, and an LRU cache of compiled plans.
  ``Graph.query`` uses this path by default.
"""

from repro.rdf.sparql.parser import (
    SPARQLSyntaxError,
    parse_query,
    parse_query_params,
)
from repro.rdf.sparql.evaluator import evaluate, SPARQLResult, SPARQLEvaluationError
from repro.rdf.sparql.plan import (
    CompiledQuery,
    PlanCache,
    PreparedQuery,
    compile_query,
    explain,
    get_plan_cache,
    prepare,
    reset_plan_cache,
)

__all__ = [
    "CompiledQuery",
    "PlanCache",
    "PreparedQuery",
    "SPARQLEvaluationError",
    "SPARQLResult",
    "SPARQLSyntaxError",
    "compile_query",
    "evaluate",
    "explain",
    "get_plan_cache",
    "parse_query",
    "parse_query_params",
    "prepare",
    "reset_plan_cache",
]
