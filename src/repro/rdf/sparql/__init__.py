"""A SPARQL query engine over :class:`repro.rdf.Graph`.

Implements the subset of the (2006 working-draft era) SPARQL language
the Qurator framework relies on for annotation lookup — SELECT / ASK /
CONSTRUCT query forms with basic graph patterns, FILTER, OPTIONAL,
UNION, DISTINCT, ORDER BY, LIMIT and OFFSET — plus the common builtin
functions used in filters.
"""

from repro.rdf.sparql.parser import parse_query, SPARQLSyntaxError
from repro.rdf.sparql.evaluator import evaluate, SPARQLResult, SPARQLEvaluationError

__all__ = [
    "SPARQLEvaluationError",
    "SPARQLResult",
    "SPARQLSyntaxError",
    "evaluate",
    "parse_query",
]
