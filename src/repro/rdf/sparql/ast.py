"""Abstract syntax / algebra nodes for the SPARQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.rdf.term import Node, Variable

Term = Node  # a pattern position: URIRef, BNode, Literal or Variable


# -- graph patterns ---------------------------------------------------------


@dataclass(frozen=True)
class TriplePatternNode:
    """One triple pattern; positions may be variables."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> List[Variable]:
        """The variables appearing in this pattern."""

        return [
            t
            for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Variable)
        ]


@dataclass(frozen=True)
class BGP:
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: Tuple[TriplePatternNode, ...]


@dataclass(frozen=True)
class Join:
    """Conjunction of two patterns."""

    left: "Pattern"
    right: "Pattern"


@dataclass(frozen=True)
class LeftJoin:
    """OPTIONAL: keep left solutions, extend with right where possible."""

    left: "Pattern"
    right: "Pattern"
    expr: Optional["Expression"] = None


@dataclass(frozen=True)
class UnionPattern:
    """Alternation of two patterns."""

    left: "Pattern"
    right: "Pattern"


@dataclass(frozen=True)
class FilterPattern:
    """A pattern restricted by a boolean expression."""

    expr: "Expression"
    pattern: "Pattern"


Pattern = Union[BGP, Join, LeftJoin, UnionPattern, FilterPattern]


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class TermExpr:
    """A constant or variable used as an expression."""

    term: Term


@dataclass(frozen=True)
class OrExpr:
    """Logical-or with SPARQL error semantics."""

    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class AndExpr:
    """Logical-and with SPARQL error semantics."""

    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class NotExpr:
    """Logical negation."""

    operand: "Expression"


@dataclass(frozen=True)
class Comparison:
    """A relational test."""

    op: str  # one of = != < > <= >=
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Arithmetic:
    """A numeric operation."""

    op: str  # one of + - * /
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Negate:
    """Unary numeric minus."""

    operand: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    """A builtin function invocation."""

    name: str  # uppercase builtin name
    args: Tuple["Expression", ...]


@dataclass(frozen=True)
class ExistsExpr:
    """FILTER [NOT] EXISTS { pattern }: pattern matchability as a boolean."""

    pattern: "Pattern"
    negated: bool = False


Expression = Union[
    TermExpr,
    OrExpr,
    AndExpr,
    NotExpr,
    Comparison,
    Arithmetic,
    Negate,
    FunctionCall,
    ExistsExpr,
]


# -- query forms --------------------------------------------------------------


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY key with direction."""

    expr: Expression
    descending: bool = False


@dataclass(frozen=True)
class Aggregate:
    """An aggregate projection: ``(COUNT(?x) AS ?n)``.

    ``expr`` is ``None`` for ``COUNT(*)``.
    """

    function: str  # COUNT | SUM | AVG | MIN | MAX | SAMPLE
    expr: Optional[Expression]
    alias: Variable
    distinct: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A SELECT query with modifiers and aggregates."""

    variables: Tuple[Variable, ...]  # empty means SELECT *
    pattern: Pattern
    distinct: bool = False
    order_by: Tuple[OrderCondition, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    offset: int = 0
    aggregates: Tuple[Aggregate, ...] = field(default_factory=tuple)
    group_by: Tuple[Variable, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class AskQuery:
    """An ASK query."""

    pattern: Pattern


@dataclass(frozen=True)
class DescribeQuery:
    """DESCRIBE <iri>... or DESCRIBE ?var WHERE {...}."""

    terms: Tuple[Term, ...]
    pattern: Optional[Pattern] = None


@dataclass(frozen=True)
class ConstructQuery:
    """A CONSTRUCT query with its template."""

    template: Tuple[TriplePatternNode, ...]
    pattern: Pattern
    limit: Optional[int] = None
    offset: int = 0


Query = Union[SelectQuery, AskQuery, ConstructQuery, DescribeQuery]
