"""Evaluation of the SPARQL algebra over a graph.

Solutions are dictionaries mapping :class:`Variable` to RDF terms.  BGP
evaluation orders triple patterns by estimated selectivity (bound terms
first) and streams bindings through the graph's permutation indices, so
(data, evidence-type) lookups from the annotation store stay index-backed.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.rdf.graph import Graph
from repro.rdf.sparql import ast
from repro.rdf.sparql.functions import (
    ACCEPTS_UNBOUND,
    BUILTINS,
    SPARQLTypeError,
    effective_boolean_value,
)
from repro.rdf.sparql.parser import parse_query
from repro.rdf.term import BNode, Literal, Node, URIRef, Variable
from repro.rdf.triple import Triple

Solution = Dict[Variable, Node]


class SPARQLEvaluationError(RuntimeError):
    """Raised for errors outside FILTER semantics (e.g. bad query form)."""


# -- expression evaluation ----------------------------------------------------


def _resolve(term: ast.Term, solution: Solution) -> Optional[Node]:
    if isinstance(term, Variable):
        return solution.get(term)
    return term


def eval_expression(
    expr: ast.Expression, solution: Solution, graph: Optional[Graph] = None
) -> object:
    """Evaluate an expression; raises SPARQLTypeError on type errors.

    ``graph`` is required only for ``EXISTS`` / ``NOT EXISTS``
    expressions, which re-enter pattern evaluation.
    """
    if isinstance(expr, ast.ExistsExpr):
        if graph is None:
            raise SPARQLEvaluationError(
                "EXISTS is only valid inside FILTER evaluation"
            )
        found = next(eval_pattern(expr.pattern, graph, dict(solution)), None)
        exists = found is not None
        return (not exists) if expr.negated else exists
    if isinstance(expr, ast.TermExpr):
        if isinstance(expr.term, Variable):
            value = solution.get(expr.term)
            if value is None:
                raise SPARQLTypeError(f"unbound variable ?{expr.term}")
            return value
        return expr.term
    if isinstance(expr, ast.OrExpr):
        # SPARQL: error || true == true
        left_error: Optional[SPARQLTypeError] = None
        try:
            if effective_boolean_value(eval_expression(expr.left, solution)):
                return True
        except SPARQLTypeError as exc:
            left_error = exc
        right = effective_boolean_value(eval_expression(expr.right, solution))
        if right:
            return True
        if left_error is not None:
            raise left_error
        return False
    if isinstance(expr, ast.AndExpr):
        left_error = None
        try:
            if not effective_boolean_value(eval_expression(expr.left, solution)):
                return False
        except SPARQLTypeError as exc:
            left_error = exc
        right = effective_boolean_value(eval_expression(expr.right, solution))
        if not right:
            return False
        if left_error is not None:
            raise left_error
        return True
    if isinstance(expr, ast.NotExpr):
        return not effective_boolean_value(eval_expression(expr.operand, solution))
    if isinstance(expr, ast.Comparison):
        return _eval_comparison(expr, solution)
    if isinstance(expr, ast.Arithmetic):
        return _eval_arithmetic(expr, solution)
    if isinstance(expr, ast.Negate):
        value = eval_expression(expr.operand, solution)
        if isinstance(value, Literal) and value.is_numeric():
            return Literal(-value.value)
        raise SPARQLTypeError(f"cannot negate {value!r}")
    if isinstance(expr, ast.FunctionCall):
        return _eval_function(expr, solution)
    raise SPARQLEvaluationError(f"unknown expression node {expr!r}")


def _eval_comparison(expr: ast.Comparison, solution: Solution) -> bool:
    left = eval_expression(expr.left, solution)
    right = eval_expression(expr.right, solution)
    if isinstance(left, bool):
        left = Literal(left)
    if isinstance(right, bool):
        right = Literal(right)
    op = expr.op
    if op == "=":
        return _term_equal(left, right)
    if op == "!=":
        return not _term_equal(left, right)
    if isinstance(left, Literal) and isinstance(right, Literal):
        try:
            if op == "<":
                return left < right
            if op == ">":
                return left > right
            if op == "<=":
                return left <= right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise SPARQLTypeError(str(exc)) from exc
    raise SPARQLTypeError(f"cannot compare {left!r} {op} {right!r}")


def _term_equal(left: object, right: object) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric() and right.is_numeric():
            return left.value == right.value
        if (left.datatype is None) != (right.datatype is None) and (
            left.lexical == right.lexical
        ):
            # plain vs typed string with equal form: not equal unless both plain
            return left.datatype == right.datatype
        return left == right
    if isinstance(left, Node) and isinstance(right, Node):
        return type(left) is type(right) and str(left) == str(right)
    raise SPARQLTypeError(f"cannot test equality of {left!r} and {right!r}")


def _eval_arithmetic(expr: ast.Arithmetic, solution: Solution) -> Literal:
    left = eval_expression(expr.left, solution)
    right = eval_expression(expr.right, solution)
    if not (
        isinstance(left, Literal)
        and left.is_numeric()
        and isinstance(right, Literal)
        and right.is_numeric()
    ):
        raise SPARQLTypeError(
            f"arithmetic requires numeric literals: {left!r} {expr.op} {right!r}"
        )
    a, b = left.value, right.value
    if expr.op == "+":
        return Literal(a + b)
    if expr.op == "-":
        return Literal(a - b)
    if expr.op == "*":
        return Literal(a * b)
    if expr.op == "/":
        if b == 0:
            raise SPARQLTypeError("division by zero")
        return Literal(a / b)
    raise SPARQLEvaluationError(f"unknown arithmetic operator {expr.op!r}")


def _eval_function(expr: ast.FunctionCall, solution: Solution) -> object:
    try:
        function = BUILTINS[expr.name]
    except KeyError:
        raise SPARQLEvaluationError(f"unknown function {expr.name}") from None
    args: List[object] = []
    for arg in expr.args:
        if expr.name in ACCEPTS_UNBOUND and isinstance(arg, ast.TermExpr):
            args.append(_resolve(arg.term, solution))
        else:
            args.append(eval_expression(arg, solution))
    return function(args)


# -- pattern evaluation -------------------------------------------------------


def _pattern_selectivity(
    pattern: ast.TriplePatternNode, bound: set
) -> Tuple[int, int]:
    terms = (pattern.subject, pattern.predicate, pattern.object)
    concrete = sum(1 for t in terms if not isinstance(t, Variable))
    bound_vars = sum(1 for t in terms if isinstance(t, Variable) and t in bound)
    return (-(concrete + bound_vars), -concrete)


def _eval_bgp(
    patterns: Sequence[ast.TriplePatternNode], graph: Graph, solution: Solution
) -> Iterator[Solution]:
    if not patterns:
        yield dict(solution)
        return
    remaining = list(patterns)
    bound = {v for v in solution}
    remaining.sort(key=lambda p: _pattern_selectivity(p, bound))
    first, rest = remaining[0], remaining[1:]

    def concrete(term: ast.Term) -> Optional[Node]:
        if isinstance(term, Variable):
            return solution.get(term)
        return term

    s, p, o = (
        concrete(first.subject),
        concrete(first.predicate),
        concrete(first.object),
    )
    for triple in graph.triples((s, p, o)):
        extended = dict(solution)
        consistent = True
        for term, value in zip(
            (first.subject, first.predicate, first.object), triple
        ):
            if isinstance(term, Variable):
                existing = extended.get(term)
                if existing is None:
                    extended[term] = value
                elif existing != value:
                    consistent = False
                    break
        if consistent:
            yield from _eval_bgp(rest, graph, extended)


def eval_pattern(
    pattern: ast.Pattern, graph: Graph, solution: Optional[Solution] = None
) -> Iterator[Solution]:
    """Yield solution mappings for a pattern under a binding."""

    if solution is None:
        solution = {}
    if isinstance(pattern, ast.BGP):
        yield from _eval_bgp(pattern.patterns, graph, solution)
    elif isinstance(pattern, ast.Join):
        for left in eval_pattern(pattern.left, graph, solution):
            yield from eval_pattern(pattern.right, graph, left)
    elif isinstance(pattern, ast.LeftJoin):
        for left in eval_pattern(pattern.left, graph, solution):
            extended_any = False
            for joined in eval_pattern(pattern.right, graph, left):
                if pattern.expr is not None:
                    try:
                        keep = effective_boolean_value(
                            eval_expression(pattern.expr, joined, graph)
                        )
                    except SPARQLTypeError:
                        keep = False
                    if not keep:
                        continue
                extended_any = True
                yield joined
            if not extended_any:
                yield left
    elif isinstance(pattern, ast.UnionPattern):
        yield from eval_pattern(pattern.left, graph, solution)
        yield from eval_pattern(pattern.right, graph, solution)
    elif isinstance(pattern, ast.FilterPattern):
        for candidate in eval_pattern(pattern.pattern, graph, solution):
            try:
                keep = effective_boolean_value(
                    eval_expression(pattern.expr, candidate, graph)
                )
            except SPARQLTypeError:
                keep = False
            if keep:
                yield candidate
    else:
        raise SPARQLEvaluationError(f"unknown pattern node {pattern!r}")


# -- results -------------------------------------------------------------------


class SPARQLResult:
    """The outcome of a query: bindings, a boolean, or a constructed graph."""

    def __init__(
        self,
        query_type: str,
        variables: Tuple[Variable, ...] = (),
        rows: Optional[List[Solution]] = None,
        boolean: Optional[bool] = None,
        graph: Optional[Graph] = None,
    ) -> None:
        self.query_type = query_type
        self.variables = variables
        self.rows = rows if rows is not None else []
        self.boolean = boolean
        self.graph = graph

    def __iter__(self) -> Iterator[Tuple[Optional[Node], ...]]:
        for row in self.rows:
            yield tuple(row.get(var) for var in self.variables)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        if self.query_type == "ASK":
            return bool(self.boolean)
        if self.query_type == "CONSTRUCT":
            return bool(self.graph)
        return bool(self.rows)

    def bindings(self) -> List[Dict[str, Node]]:
        """Rows as plain dictionaries keyed by variable name."""
        return [{str(var): value for var, value in row.items()} for row in self.rows]

    def __repr__(self) -> str:
        if self.query_type == "ASK":
            return f"<SPARQLResult ASK {self.boolean}>"
        if self.query_type == "CONSTRUCT":
            size = len(self.graph) if self.graph is not None else 0
            return f"<SPARQLResult CONSTRUCT ({size} triples)>"
        return f"<SPARQLResult SELECT ({len(self.rows)} rows)>"


def _collect_variables(pattern: ast.Pattern) -> List[Variable]:
    seen: List[Variable] = []

    def visit(node: ast.Pattern) -> None:
        if isinstance(node, ast.BGP):
            for tp in node.patterns:
                for var in tp.variables():
                    if var not in seen:
                        seen.append(var)
        elif isinstance(node, (ast.Join, ast.LeftJoin, ast.UnionPattern)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.FilterPattern):
            visit(node.pattern)

    visit(pattern)
    return seen


def _apply_modifiers(
    rows: List[Solution],
    order_by: Tuple[ast.OrderCondition, ...],
    limit: Optional[int],
    offset: int,
    distinct: bool,
    variables: Tuple[Variable, ...],
) -> List[Solution]:
    if distinct:
        unique: List[Solution] = []
        seen = set()
        for row in rows:
            key = tuple(row.get(var) for var in variables)
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
    if order_by:

        def sort_key(row: Solution):
            keys = []
            for condition in order_by:
                try:
                    value = eval_expression(condition.expr, row)
                except SPARQLTypeError:
                    value = None
                keys.append(_Orderable(value, condition.descending))
            return tuple(keys)

        rows = sorted(rows, key=sort_key)
    if offset:
        rows = rows[offset:]
    if limit is not None:
        rows = rows[:limit]
    return rows


@functools.total_ordering
class _Orderable:
    """Total order over heterogeneous SPARQL values for ORDER BY."""

    __slots__ = ("value", "descending")

    def __init__(self, value: object, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def _rank(self) -> Tuple[int, object]:
        value = self.value
        if value is None:
            return (0, "")
        if isinstance(value, BNode):
            return (1, str(value))
        if isinstance(value, URIRef):
            return (2, str(value))
        if isinstance(value, bool):
            return (3, (0, float(value)))
        if isinstance(value, Literal):
            if value.is_numeric():
                return (3, (0, float(value.value)))
            return (3, (1, value.lexical))
        return (4, str(value))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Orderable):
            return NotImplemented
        return self._rank() == other._rank()

    def __lt__(self, other: "_Orderable") -> bool:
        a, b = self._rank(), other._rank()
        if self.descending:
            a, b = b, a
        if a[0] != b[0]:
            return a[0] < b[0]
        try:
            return a[1] < b[1]
        except TypeError:
            return str(a[1]) < str(b[1])

    def __hash__(self) -> int:
        return hash(self._rank())


def _describe_into(graph: Graph, resource: Node, out: Graph) -> None:
    """Concise bounded description: the resource's statements, expanding
    blank-node objects transitively."""
    frontier = [resource]
    seen = set()
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for triple in graph.triples((current, None, None)):
            out.add(triple)
            if isinstance(triple.object, BNode):
                frontier.append(triple.object)


def _aggregate_rows(
    rows: List[Solution], parsed: ast.SelectQuery
) -> List[Solution]:
    """Group solutions and compute aggregate projections."""
    groups: Dict[Tuple, List[Solution]] = {}
    order: List[Tuple] = []
    for row in rows:
        key = tuple(row.get(var) for var in parsed.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not rows and not parsed.group_by:
        # Aggregates over an empty, ungrouped solution set still
        # produce one row (COUNT = 0).
        groups[()] = []
        order.append(())
    out: List[Solution] = []
    for key in order:
        members = groups[key]
        result: Solution = {
            var: value
            for var, value in zip(parsed.group_by, key)
            if value is not None
        }
        for aggregate in parsed.aggregates:
            result[aggregate.alias] = _compute_aggregate(aggregate, members)
        out.append(result)
    return out


def _compute_aggregate(
    aggregate: ast.Aggregate, members: List[Solution]
) -> Optional[Node]:
    values: List[object] = []
    if aggregate.expr is None:  # COUNT(*)
        values = list(members)
    else:
        for row in members:
            try:
                values.append(eval_expression(aggregate.expr, row))
            except SPARQLTypeError:
                continue
    if aggregate.distinct and aggregate.expr is not None:
        seen = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if aggregate.function == "COUNT":
        return Literal(len(values))
    numeric = [
        v.value
        for v in values
        if isinstance(v, Literal) and v.is_numeric()
    ]
    if aggregate.function == "SUM":
        return Literal(sum(numeric)) if numeric else Literal(0)
    if aggregate.function == "AVG":
        return Literal(sum(numeric) / len(numeric)) if numeric else None
    if aggregate.function in ("MIN", "MAX"):
        literals = [v for v in values if isinstance(v, Literal)]
        if not literals:
            return None
        try:
            chooser = min if aggregate.function == "MIN" else max
            return chooser(literals)
        except TypeError:
            keyed = sorted(literals, key=lambda l: str(l))
            return keyed[0] if aggregate.function == "MIN" else keyed[-1]
    if aggregate.function == "SAMPLE":
        for value in values:
            if isinstance(value, Node):
                return value
        return None
    raise SPARQLEvaluationError(
        f"unknown aggregate function {aggregate.function}"
    )


def evaluate(
    graph: Graph,
    query: Union[str, ast.Query],
    *,
    initial: Optional[Solution] = None,
    pattern_rows=None,
) -> SPARQLResult:
    """Parse (if needed) and evaluate a query over ``graph``.

    ``initial`` pre-binds variables before pattern evaluation — the
    substitution mechanism behind prepared ``$param`` queries.
    ``pattern_rows`` (internal) overrides how the query's graph
    pattern is enumerated: a callable ``(pattern, first_only=False) ->
    List[Solution]``.  The planner in :mod:`repro.rdf.sparql.plan`
    injects its compiled executor here so both engines share one
    implementation of projection, aggregation, solution modifiers and
    the CONSTRUCT/DESCRIBE forms; the default is the naive reference
    evaluation via :func:`eval_pattern`.
    """
    parsed = parse_query(query) if isinstance(query, str) else query
    if pattern_rows is None:

        def pattern_rows(pattern: ast.Pattern, first_only: bool = False):
            solutions = eval_pattern(
                pattern, graph, dict(initial) if initial else None
            )
            if first_only:
                first = next(solutions, None)
                return [] if first is None else [first]
            return list(solutions)

    if isinstance(parsed, ast.SelectQuery):
        rows = pattern_rows(parsed.pattern)
        if parsed.aggregates or parsed.group_by:
            rows = _aggregate_rows(rows, parsed)
            variables = tuple(parsed.group_by) + tuple(
                aggregate.alias for aggregate in parsed.aggregates
            )
        else:
            variables = parsed.variables or tuple(
                _collect_variables(parsed.pattern)
            )
        rows = _apply_modifiers(
            rows, parsed.order_by, parsed.limit, parsed.offset,
            parsed.distinct, variables,
        )
        projected = [
            {var: row[var] for var in variables if var in row} for row in rows
        ]
        return SPARQLResult("SELECT", variables=variables, rows=projected)
    if isinstance(parsed, ast.AskQuery):
        found = pattern_rows(parsed.pattern, first_only=True)
        return SPARQLResult("ASK", boolean=bool(found))
    if isinstance(parsed, ast.DescribeQuery):
        resources: List[Node] = []
        constants = [t for t in parsed.terms if not isinstance(t, Variable)]
        resources.extend(constants)
        described_vars = [t for t in parsed.terms if isinstance(t, Variable)]
        if parsed.pattern is not None and described_vars:
            for row in pattern_rows(parsed.pattern):
                for var in described_vars:
                    value = row.get(var)
                    if value is not None and value not in resources:
                        resources.append(value)
        out = Graph()
        for resource in resources:
            _describe_into(graph, resource, out)
        return SPARQLResult("CONSTRUCT", graph=out)
    if isinstance(parsed, ast.ConstructQuery):
        rows = pattern_rows(parsed.pattern)
        if parsed.offset:
            rows = rows[parsed.offset:]
        if parsed.limit is not None:
            rows = rows[: parsed.limit]
        out = Graph()
        for row in rows:
            bnode_map: Dict[BNode, BNode] = {}
            for tp in parsed.template:
                terms = []
                ok = True
                for term in (tp.subject, tp.predicate, tp.object):
                    if isinstance(term, Variable):
                        value = row.get(term)
                        if value is None:
                            ok = False
                            break
                        terms.append(value)
                    elif isinstance(term, BNode):
                        terms.append(bnode_map.setdefault(term, BNode()))
                    else:
                        terms.append(term)
                if not ok:
                    continue
                try:
                    out.add(terms[0], terms[1], terms[2])
                except TypeError:
                    continue
        return SPARQLResult("CONSTRUCT", graph=out)
    raise SPARQLEvaluationError(f"unsupported query object {parsed!r}")
