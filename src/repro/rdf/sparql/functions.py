"""Builtin functions available inside SPARQL FILTER expressions."""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Optional

from repro.rdf.term import (
    BNode,
    Literal,
    Node,
    URIRef,
    Variable,
    XSD_STRING,
)


class SPARQLTypeError(TypeError):
    """A SPARQL expression type error; filters treat it as 'false'."""


def effective_boolean_value(value: object) -> bool:
    """The SPARQL effective boolean value (EBV) of an expression result."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        inner = value.value
        if isinstance(inner, bool):
            return inner
        if isinstance(inner, (int, float)):
            return inner != 0 and not math.isnan(inner)
        if isinstance(inner, str):
            return len(inner) > 0
    raise SPARQLTypeError(f"no effective boolean value for {value!r}")


def _string_of(value: object, function: str) -> str:
    if isinstance(value, Literal) and isinstance(value.value, str):
        return value.lexical
    raise SPARQLTypeError(f"{function} requires a string literal, got {value!r}")


def _numeric_of(value: object, function: str) -> float:
    if isinstance(value, Literal) and value.is_numeric():
        return value.value
    raise SPARQLTypeError(f"{function} requires a numeric literal, got {value!r}")


def fn_bound(args: List[object]) -> bool:
    """BOUND: is the variable bound?"""

    # The evaluator passes the raw (possibly unbound == None) value.
    return args[0] is not None


def fn_str(args: List[object]) -> Literal:
    """STR: the lexical/string form of a literal or IRI."""

    value = args[0]
    if isinstance(value, Literal):
        return Literal(value.lexical)
    if isinstance(value, URIRef):
        return Literal(str(value))
    raise SPARQLTypeError(f"STR not defined for {value!r}")


def fn_lang(args: List[object]) -> Literal:
    """LANG: the language tag of a literal ('' if none)."""

    value = args[0]
    if isinstance(value, Literal):
        return Literal(value.lang or "")
    raise SPARQLTypeError(f"LANG requires a literal, got {value!r}")


def fn_langmatches(args: List[object]) -> bool:
    """LANGMATCHES: language-range matching."""

    tag = _string_of(args[0], "LANGMATCHES").lower()
    pattern = _string_of(args[1], "LANGMATCHES").lower()
    if pattern == "*":
        return bool(tag)
    return tag == pattern or tag.startswith(pattern + "-")


def fn_datatype(args: List[object]) -> URIRef:
    """DATATYPE: the datatype IRI of a literal."""

    value = args[0]
    if isinstance(value, Literal):
        if value.lang:
            raise SPARQLTypeError("DATATYPE of a language-tagged literal")
        return value.datatype or URIRef(XSD_STRING)
    raise SPARQLTypeError(f"DATATYPE requires a literal, got {value!r}")


def fn_regex(args: List[object]) -> bool:
    """REGEX with optional i/s/m flags."""

    text = _string_of(args[0], "REGEX")
    pattern = _string_of(args[1], "REGEX")
    flags = 0
    if len(args) > 2:
        flag_text = _string_of(args[2], "REGEX")
        if "i" in flag_text:
            flags |= re.IGNORECASE
        if "s" in flag_text:
            flags |= re.DOTALL
        if "m" in flag_text:
            flags |= re.MULTILINE
    return re.search(pattern, text, flags) is not None


def fn_is_iri(args: List[object]) -> bool:
    """isIRI/isURI term test."""

    return isinstance(args[0], URIRef)


def fn_is_blank(args: List[object]) -> bool:
    """isBlank term test."""

    return isinstance(args[0], BNode)


def fn_is_literal(args: List[object]) -> bool:
    """isLiteral term test."""

    return isinstance(args[0], Literal)


def fn_is_numeric(args: List[object]) -> bool:
    """isNumeric literal test."""

    return isinstance(args[0], Literal) and args[0].is_numeric()


def fn_abs(args: List[object]) -> Literal:
    """ABS of a numeric literal."""

    return Literal(abs(_numeric_of(args[0], "ABS")))


def fn_ceil(args: List[object]) -> Literal:
    """CEIL of a numeric literal."""

    return Literal(math.ceil(_numeric_of(args[0], "CEIL")))


def fn_floor(args: List[object]) -> Literal:
    """FLOOR of a numeric literal."""

    return Literal(math.floor(_numeric_of(args[0], "FLOOR")))


def fn_round(args: List[object]) -> Literal:
    """ROUND (half-up) of a numeric literal."""

    value = _numeric_of(args[0], "ROUND")
    return Literal(math.floor(value + 0.5))


def fn_strlen(args: List[object]) -> Literal:
    """STRLEN of a string literal."""

    return Literal(len(_string_of(args[0], "STRLEN")))


def fn_ucase(args: List[object]) -> Literal:
    """UCASE of a string literal."""

    return Literal(_string_of(args[0], "UCASE").upper())


def fn_lcase(args: List[object]) -> Literal:
    """LCASE of a string literal."""

    return Literal(_string_of(args[0], "LCASE").lower())


def fn_contains(args: List[object]) -> bool:
    """CONTAINS substring test."""

    return _string_of(args[1], "CONTAINS") in _string_of(args[0], "CONTAINS")


def fn_strstarts(args: List[object]) -> bool:
    """STRSTARTS prefix test."""

    return _string_of(args[0], "STRSTARTS").startswith(
        _string_of(args[1], "STRSTARTS")
    )


def fn_strends(args: List[object]) -> bool:
    """STRENDS suffix test."""

    return _string_of(args[0], "STRENDS").endswith(_string_of(args[1], "STRENDS"))


def fn_sameterm(args: List[object]) -> bool:
    """SAMETERM exact term identity."""

    a, b = args[0], args[1]
    if a is None or b is None:
        raise SPARQLTypeError("SAMETERM on unbound argument")
    return type(a) is type(b) and a == b


BUILTINS: Dict[str, Callable[[List[object]], object]] = {
    "BOUND": fn_bound,
    "STR": fn_str,
    "LANG": fn_lang,
    "LANGMATCHES": fn_langmatches,
    "DATATYPE": fn_datatype,
    "REGEX": fn_regex,
    "ISIRI": fn_is_iri,
    "ISURI": fn_is_iri,
    "ISBLANK": fn_is_blank,
    "ISLITERAL": fn_is_literal,
    "ISNUMERIC": fn_is_numeric,
    "ABS": fn_abs,
    "CEIL": fn_ceil,
    "FLOOR": fn_floor,
    "ROUND": fn_round,
    "STRLEN": fn_strlen,
    "UCASE": fn_ucase,
    "LCASE": fn_lcase,
    "CONTAINS": fn_contains,
    "STRSTARTS": fn_strstarts,
    "STRENDS": fn_strends,
    "SAMETERM": fn_sameterm,
}

#: Builtins that receive unbound arguments as ``None`` instead of erroring.
ACCEPTS_UNBOUND = frozenset({"BOUND", "SAMETERM"})
