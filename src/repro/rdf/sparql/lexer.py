"""Tokeniser for the SPARQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


class SPARQLSyntaxError(SyntaxError):
    """Raised on lexical or grammatical errors in a SPARQL query."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


KEYWORDS = {
    "PREFIX",
    "BASE",
    "SELECT",
    "ASK",
    "CONSTRUCT",
    "DESCRIBE",
    "WHERE",
    "FILTER",
    "OPTIONAL",
    "UNION",
    "ORDER",
    "GROUP",
    "BY",
    "AS",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "DISTINCT",
    "REDUCED",
    "EXISTS",
    "NOT",
}

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE"}

BUILTIN_FUNCTIONS = {
    "BOUND",
    "REGEX",
    "STR",
    "LANG",
    "LANGMATCHES",
    "DATATYPE",
    "ISIRI",
    "ISURI",
    "ISBLANK",
    "ISLITERAL",
    "ISNUMERIC",
    "ABS",
    "CEIL",
    "FLOOR",
    "ROUND",
    "STRLEN",
    "UCASE",
    "LCASE",
    "CONTAINS",
    "STRSTARTS",
    "STRENDS",
    "SAMETERM",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<NUMBER>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.\-]*:[A-Za-z0-9_.\-]*)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|!=|&&|\|\||[=<>!*/+\-])
  | (?P<PUNCT>[{}().;,^])
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\'": "'",
    "\\\\": "\\",
}


def unescape_string(text: str) -> str:
    """Decode a quoted SPARQL string literal."""

    body = text[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        if body[i] == "\\" and i + 1 < len(body):
            pair = body[i : i + 2]
            if pair in _ESCAPES:
                out.append(_ESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(body):
                out.append(chr(int(body[i + 2 : i + 6], 16)))
                i += 6
                continue
        out.append(body[i])
        i += 1
    return "".join(out)


def tokenize(query: str) -> List[Token]:
    """Split a query string into tokens; error on junk."""

    tokens: List[Token] = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise SPARQLSyntaxError(
                f"unexpected character {query[pos]!r} at position {pos}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "WS":
            pos = match.end()
            continue
        if kind == "NAME":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, pos))
            elif upper in AGGREGATES:
                tokens.append(Token("AGGREGATE", upper, pos))
            elif upper in BUILTIN_FUNCTIONS:
                tokens.append(Token("BUILTIN", upper, pos))
            elif value == "a":
                tokens.append(Token("A", value, pos))
            elif upper in ("TRUE", "FALSE"):
                tokens.append(Token("BOOLEAN", upper.lower(), pos))
            else:
                tokens.append(Token("NAME", value, pos))
        else:
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("EOF", "", len(query)))
    return tokens
