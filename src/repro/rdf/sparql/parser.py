"""Recursive-descent parser producing the SPARQL algebra in ``ast.py``."""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.rdf.namespace import RDF, NamespaceManager
from repro.rdf.sparql import ast
from repro.rdf.sparql.lexer import (
    SPARQLSyntaxError,
    Token,
    tokenize,
    unescape_string,
)
from repro.rdf.term import (
    BNode,
    Literal,
    URIRef,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._nsm = NamespaceManager()

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            wanted = value or kind
            raise SPARQLSyntaxError(
                f"expected {wanted} at position {actual.position}, "
                f"got {actual.value!r}"
            )
        return token

    # -- entry -------------------------------------------------------------

    def parse(self) -> ast.Query:
        """Parse the token stream into a query object."""

        self._parse_prologue()
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == "SELECT":
            query = self._parse_select()
        elif token.kind == "KEYWORD" and token.value == "ASK":
            query = self._parse_ask()
        elif token.kind == "KEYWORD" and token.value == "CONSTRUCT":
            query = self._parse_construct()
        elif token.kind == "KEYWORD" and token.value == "DESCRIBE":
            query = self._parse_describe()
        else:
            raise SPARQLSyntaxError(
                f"expected SELECT, ASK, CONSTRUCT or DESCRIBE, "
                f"got {token.value!r}"
            )
        self._expect("EOF")
        return query

    def _parse_prologue(self) -> None:
        while self._accept("KEYWORD", "PREFIX"):
            pname = self._expect("PNAME")
            prefix = pname.value.rstrip(":").split(":")[0]
            iri = self._expect("IRIREF")
            self._nsm.bind(prefix, iri.value[1:-1])

    # -- query forms ---------------------------------------------------------

    def _parse_select(self) -> ast.SelectQuery:
        self._expect("KEYWORD", "SELECT")
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        self._accept("KEYWORD", "REDUCED")
        variables: List[Variable] = []
        aggregates: List[ast.Aggregate] = []
        if self._accept("OP", "*"):
            pass
        else:
            while True:
                var = self._accept("VAR")
                if var is not None:
                    variables.append(Variable(var.value))
                    continue
                token = self._peek()
                if token.kind == "PUNCT" and token.value == "(":
                    aggregates.append(self._parse_aggregate())
                    continue
                break
            if not variables and not aggregates:
                raise SPARQLSyntaxError("SELECT requires '*' or variables")
        self._accept("KEYWORD", "WHERE")
        pattern = self._parse_group_graph_pattern()
        group_by: List[Variable] = []
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            while True:
                var = self._accept("VAR")
                if var is None:
                    break
                group_by.append(Variable(var.value))
            if not group_by:
                raise SPARQLSyntaxError("GROUP BY requires variables")
        order_by, limit, offset = self._parse_solution_modifiers()
        if aggregates:
            misplaced = [v for v in variables if v not in group_by]
            if misplaced and group_by:
                raise SPARQLSyntaxError(
                    f"projected variables {misplaced} must appear in GROUP BY"
                )
        return ast.SelectQuery(
            variables=tuple(variables),
            pattern=pattern,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
            aggregates=tuple(aggregates),
            group_by=tuple(group_by),
        )

    def _parse_aggregate(self) -> ast.Aggregate:
        self._expect("PUNCT", "(")
        name_token = self._expect("AGGREGATE")
        self._expect("PUNCT", "(")
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        expr: Optional[ast.Expression] = None
        if self._accept("OP", "*"):
            if name_token.value != "COUNT":
                raise SPARQLSyntaxError(
                    f"'*' is only valid inside COUNT, not {name_token.value}"
                )
        else:
            expr = self._parse_expression()
        self._expect("PUNCT", ")")
        self._expect("KEYWORD", "AS")
        alias = self._expect("VAR")
        self._expect("PUNCT", ")")
        return ast.Aggregate(
            function=name_token.value,
            expr=expr,
            alias=Variable(alias.value),
            distinct=distinct,
        )

    def _parse_ask(self) -> ast.AskQuery:
        self._expect("KEYWORD", "ASK")
        self._accept("KEYWORD", "WHERE")
        return ast.AskQuery(pattern=self._parse_group_graph_pattern())

    def _parse_describe(self) -> ast.DescribeQuery:
        self._expect("KEYWORD", "DESCRIBE")
        terms: List = []
        while True:
            token = self._peek()
            if token.kind == "VAR":
                self._advance()
                terms.append(Variable(token.value))
            elif token.kind == "IRIREF":
                self._advance()
                terms.append(URIRef(token.value[1:-1]))
            elif token.kind == "PNAME":
                self._advance()
                terms.append(self._nsm.expand(token.value))
            else:
                break
        if not terms:
            raise SPARQLSyntaxError("DESCRIBE requires at least one term")
        pattern = None
        if self._accept("KEYWORD", "WHERE") or (
            self._peek().kind == "PUNCT" and self._peek().value == "{"
        ):
            pattern = self._parse_group_graph_pattern()
        return ast.DescribeQuery(terms=tuple(terms), pattern=pattern)

    def _parse_construct(self) -> ast.ConstructQuery:
        self._expect("KEYWORD", "CONSTRUCT")
        template = self._parse_triples_braced()
        self._expect("KEYWORD", "WHERE")
        pattern = self._parse_group_graph_pattern()
        _, limit, offset = self._parse_solution_modifiers()
        return ast.ConstructQuery(
            template=tuple(template), pattern=pattern, limit=limit, offset=offset
        )

    def _parse_solution_modifiers(
        self,
    ) -> Tuple[Tuple[ast.OrderCondition, ...], Optional[int], int]:
        order: List[ast.OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY")
            while True:
                if self._accept("KEYWORD", "ASC"):
                    self._expect("PUNCT", "(")
                    expr = self._parse_expression()
                    self._expect("PUNCT", ")")
                    order.append(ast.OrderCondition(expr, descending=False))
                elif self._accept("KEYWORD", "DESC"):
                    self._expect("PUNCT", "(")
                    expr = self._parse_expression()
                    self._expect("PUNCT", ")")
                    order.append(ast.OrderCondition(expr, descending=True))
                elif self._peek().kind == "VAR":
                    var = self._advance()
                    order.append(
                        ast.OrderCondition(ast.TermExpr(Variable(var.value)))
                    )
                else:
                    break
            if not order:
                raise SPARQLSyntaxError("ORDER BY requires at least one condition")
        while True:
            if self._accept("KEYWORD", "LIMIT"):
                limit = int(self._expect("NUMBER").value)
            elif self._accept("KEYWORD", "OFFSET"):
                offset = int(self._expect("NUMBER").value)
            else:
                break
        return tuple(order), limit, offset

    # -- graph patterns -------------------------------------------------------

    def _parse_group_graph_pattern(self) -> ast.Pattern:
        self._expect("PUNCT", "{")
        pattern: Optional[ast.Pattern] = None
        filters: List[ast.Expression] = []

        def join(current: Optional[ast.Pattern], new: ast.Pattern) -> ast.Pattern:
            if current is None:
                return new
            return ast.Join(current, new)

        while not self._accept("PUNCT", "}"):
            token = self._peek()
            if token.kind == "KEYWORD" and token.value == "FILTER":
                self._advance()
                filters.append(self._parse_constraint())
            elif token.kind == "KEYWORD" and token.value == "OPTIONAL":
                self._advance()
                right = self._parse_group_graph_pattern()
                if pattern is None:
                    pattern = ast.BGP(())
                pattern = ast.LeftJoin(pattern, right)
            elif token.kind == "PUNCT" and token.value == "{":
                sub = self._parse_group_graph_pattern()
                while self._accept("KEYWORD", "UNION"):
                    rhs = self._parse_group_graph_pattern()
                    sub = ast.UnionPattern(sub, rhs)
                pattern = join(pattern, sub)
            elif token.kind == "PUNCT" and token.value == ".":
                self._advance()
            else:
                triples = self._parse_triples_block()
                pattern = join(pattern, ast.BGP(tuple(triples)))
        if pattern is None:
            pattern = ast.BGP(())
        for expr in filters:
            pattern = ast.FilterPattern(expr, pattern)
        return pattern

    def _parse_constraint(self) -> ast.Expression:
        if self._accept("KEYWORD", "EXISTS"):
            return ast.ExistsExpr(self._parse_group_graph_pattern())
        if self._peek().kind == "KEYWORD" and self._peek().value == "NOT":
            self._advance()
            self._expect("KEYWORD", "EXISTS")
            return ast.ExistsExpr(
                self._parse_group_graph_pattern(), negated=True
            )
        if self._peek().kind == "PUNCT" and self._peek().value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("PUNCT", ")")
            return expr
        if self._peek().kind == "BUILTIN":
            return self._parse_builtin_call()
        raise SPARQLSyntaxError(
            f"expected '(' or builtin after FILTER at {self._peek().position}"
        )

    def _parse_triples_braced(self) -> List[ast.TriplePatternNode]:
        self._expect("PUNCT", "{")
        triples: List[ast.TriplePatternNode] = []
        while not self._accept("PUNCT", "}"):
            if self._accept("PUNCT", "."):
                continue
            triples.extend(self._parse_triples_block())
        return triples

    def _parse_triples_block(self) -> List[ast.TriplePatternNode]:
        triples: List[ast.TriplePatternNode] = []
        subject = self._parse_term(allow_literal=False)
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(allow_literal=True)
                triples.append(ast.TriplePatternNode(subject, predicate, obj))
                if not self._accept("PUNCT", ","):
                    break
            if not self._accept("PUNCT", ";"):
                break
            next_token = self._peek()
            if next_token.kind in ("PUNCT", "KEYWORD", "EOF"):
                break
        return triples

    def _parse_verb(self):
        if self._accept("A"):
            return RDF.type
        return self._parse_term(allow_literal=False)

    def _parse_term(self, allow_literal: bool):
        token = self._advance()
        if token.kind == "VAR":
            return Variable(token.value)
        if token.kind == "IRIREF":
            return URIRef(token.value[1:-1])
        if token.kind == "PNAME":
            if token.value.startswith("_:"):
                return BNode(token.value[2:])
            return self._nsm.expand(token.value)
        if token.kind == "NAME" and token.value.startswith("_"):
            return BNode(token.value)
        if allow_literal:
            if token.kind == "STRING":
                lexical = unescape_string(token.value)
                if self._accept("PUNCT", "^"):
                    self._expect("PUNCT", "^")
                    dt_token = self._advance()
                    if dt_token.kind == "IRIREF":
                        datatype = dt_token.value[1:-1]
                    elif dt_token.kind == "PNAME":
                        datatype = str(self._nsm.expand(dt_token.value))
                    else:
                        raise SPARQLSyntaxError("expected datatype IRI after '^^'")
                    return Literal(lexical, datatype=datatype)
                return Literal(lexical)
            if token.kind == "NUMBER":
                if any(ch in token.value for ch in ".eE"):
                    return Literal(float(token.value), datatype=XSD_DOUBLE)
                return Literal(int(token.value), datatype=XSD_INTEGER)
            if token.kind == "BOOLEAN":
                return Literal(token.value == "true", datatype=XSD_BOOLEAN)
        raise SPARQLSyntaxError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    # -- expressions -----------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept("OP", "||"):
            left = ast.OrExpr(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_relational()
        while self._accept("OP", "&&"):
            left = ast.AndExpr(left, self._parse_relational())
        return left

    def _parse_relational(self) -> ast.Expression:
        left = self._parse_additive()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self._accept("OP", op):
                return ast.Comparison(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            if self._accept("OP", "+"):
                left = ast.Arithmetic("+", left, self._parse_multiplicative())
            elif self._accept("OP", "-"):
                left = ast.Arithmetic("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            if self._accept("OP", "*"):
                left = ast.Arithmetic("*", left, self._parse_unary())
            elif self._accept("OP", "/"):
                left = ast.Arithmetic("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept("OP", "!"):
            return ast.NotExpr(self._parse_unary())
        if self._accept("OP", "-"):
            return ast.Negate(self._parse_unary())
        if self._accept("OP", "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind == "PUNCT" and token.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("PUNCT", ")")
            return expr
        if token.kind == "BUILTIN":
            return self._parse_builtin_call()
        return ast.TermExpr(self._parse_term(allow_literal=True))

    def _parse_builtin_call(self) -> ast.FunctionCall:
        name_token = self._expect("BUILTIN")
        self._expect("PUNCT", "(")
        args: List[ast.Expression] = []
        if not (self._peek().kind == "PUNCT" and self._peek().value == ")"):
            args.append(self._parse_expression())
            while self._accept("PUNCT", ","):
                args.append(self._parse_expression())
        self._expect("PUNCT", ")")
        return ast.FunctionCall(name_token.value, tuple(args))


def parse_query(query: str) -> ast.Query:
    """Parse a SPARQL query string into its algebra representation."""
    return _Parser(tokenize(query)).parse()


def parse_query_params(query: str) -> Tuple[ast.Query, FrozenSet[str]]:
    """Parse a query and report its ``$name`` parameter variables.

    SPARQL treats ``$name`` and ``?name`` as the same variable; by
    convention this engine reads ``$``-spelled variables as the
    *parameters* of a prepared query (see
    :func:`repro.rdf.sparql.plan.prepare`), to be substituted with
    concrete terms at execution time.
    """
    tokens = tokenize(query)
    params = frozenset(
        token.value[1:]
        for token in tokens
        if token.kind == "VAR" and token.value.startswith("$")
    )
    return _Parser(tokens).parse(), params
