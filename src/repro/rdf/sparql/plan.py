"""One-shot query planning, compiled execution, and the prepared-query cache.

The naive evaluator (:mod:`repro.rdf.sparql.evaluator`) re-sorts the
remaining triple patterns and copies the whole solution dictionary for
every candidate row — fine for unit tests, quadratic waste on the
annotation-lookup hot path.  This module compiles a parsed query once
into an executable plan and then runs it with none of that per-row
work:

* **join ordering** — each basic graph pattern's triple patterns are
  ordered *once per execution* by a greedy lowest-estimated-cardinality
  heuristic fed by the graph's incremental per-predicate statistics
  (:meth:`repro.rdf.graph.Graph.predicate_stats`) and direct index
  probes for constant terms;
* **filter pushdown** — FILTER conjuncts are split on ``&&`` and
  evaluated at the earliest point of the join order at which all their
  variables are bound, inside the index-nested-loop join, so failing
  rows are cut before later patterns multiply them;
* **array bindings** — variables are numbered into slots at compile
  time and execution binds into one reused array (backtracking unbinds
  in place) instead of allocating a dict per candidate row;
* **prepared queries** — :func:`prepare` parses a query containing
  ``$param`` variables once and substitutes concrete terms per
  execution, and :func:`compile_query` fronts a process-wide LRU cache
  keyed on query text, so repeat ``graph.query()`` calls skip the
  lexer/parser entirely.

Planned execution is differentially tested against the naive evaluator
(same multiset of solutions) in ``tests/test_sparql_differential.py``.

Cache hit/miss/eviction counts are published as the
``repro_rdf_plan_*`` metric families; ``python -m repro query
--explain`` prints the chosen join order and per-pattern cardinality
estimates for a query over a concrete graph.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.rdf.graph import Graph
from repro.rdf.sparql import ast
from repro.rdf.sparql.evaluator import (
    SPARQLEvaluationError,
    SPARQLResult,
    Solution,
    eval_expression,
    evaluate,
)
from repro.rdf.sparql.functions import SPARQLTypeError, effective_boolean_value
from repro.rdf.sparql.parser import parse_query_params
from repro.rdf.term import Literal, Node, Variable

__all__ = [
    "CompiledQuery",
    "PlanCache",
    "PlanCacheStats",
    "PreparedQuery",
    "compile_query",
    "explain",
    "get_plan_cache",
    "prepare",
    "reset_plan_cache",
]


def _registry():
    from repro.observability import get_registry

    return get_registry()


# -- variable slots and expression analysis -----------------------------------


class _SlotTable:
    """Compile-time numbering of every variable in a query."""

    def __init__(self) -> None:
        self.slots: Dict[Variable, int] = {}
        self.variables: List[Variable] = []

    def slot(self, var: Variable) -> int:
        index = self.slots.get(var)
        if index is None:
            index = len(self.variables)
            self.slots[var] = index
            self.variables.append(var)
        return index


def _expression_variables(expr: ast.Expression) -> Set[Variable]:
    """Free variables of an expression (EXISTS sub-patterns excluded)."""
    found: Set[Variable] = set()

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.TermExpr):
            if isinstance(node.term, Variable):
                found.add(node.term)
        elif isinstance(node, (ast.OrExpr, ast.AndExpr, ast.Comparison,
                               ast.Arithmetic)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.NotExpr, ast.Negate)):
            walk(node.operand)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)
        # ExistsExpr: re-enters full pattern evaluation with the current
        # solution; treated as opaque (never pushed down).

    walk(expr)
    return found


def _contains_exists(expr: ast.Expression) -> bool:
    if isinstance(expr, ast.ExistsExpr):
        return True
    if isinstance(expr, (ast.OrExpr, ast.AndExpr, ast.Comparison,
                         ast.Arithmetic)):
        return _contains_exists(expr.left) or _contains_exists(expr.right)
    if isinstance(expr, (ast.NotExpr, ast.Negate)):
        return _contains_exists(expr.operand)
    if isinstance(expr, ast.FunctionCall):
        return any(_contains_exists(arg) for arg in expr.args)
    return False


def _split_conjuncts(expr: ast.Expression) -> List[ast.Expression]:
    """Flatten ``a && b && c`` into its conjuncts.

    Splitting preserves FILTER semantics: a row survives the original
    conjunction iff every conjunct independently evaluates to true
    (errors and ``false`` both drop the row).
    """
    if isinstance(expr, ast.AndExpr):
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


class _BindingsView:
    """A read-only :class:`Solution` view over the slot-binding array.

    Passed to :func:`eval_expression` (and from there into EXISTS
    re-evaluation, which calls ``dict(view)``), so filter evaluation
    never forces a dictionary copy on the fast path.
    """

    __slots__ = ("_variables", "_slots", "_bindings", "_extra")

    def __init__(
        self,
        variables: Sequence[Variable],
        slots: Dict[Variable, int],
        bindings: List[Optional[Node]],
        extra: Dict[Variable, Node],
    ) -> None:
        self._variables = variables
        self._slots = slots
        self._bindings = bindings
        self._extra = extra

    def get(self, key: Variable, default: Optional[Node] = None):
        slot = self._slots.get(key)
        if slot is not None:
            value = self._bindings[slot]
            if value is not None:
                return value
        return self._extra.get(key, default)

    def __getitem__(self, key: Variable) -> Node:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def keys(self) -> Iterator[Variable]:
        return iter(list(self))

    def items(self):
        return [(var, self[var]) for var in self]

    def __iter__(self) -> Iterator[Variable]:
        for i, var in enumerate(self._variables):
            if self._bindings[i] is not None:
                yield var
        for var in self._extra:
            yield var

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __contains__(self, key: object) -> bool:
        return self.get(key) is not None


# -- compiled plan nodes ------------------------------------------------------


_CONST = 0
_VAR = 1


class _CompiledPattern:
    """One triple pattern with positions resolved to consts or slots."""

    __slots__ = ("node", "kinds", "values", "var_slots")

    def __init__(self, node: ast.TriplePatternNode, slots: _SlotTable) -> None:
        self.node = node
        kinds: List[int] = []
        values: List[object] = []
        var_slots: Set[int] = set()
        for term in (node.subject, node.predicate, node.object):
            if isinstance(term, Variable):
                kinds.append(_VAR)
                slot = slots.slot(term)
                values.append(slot)
                var_slots.add(slot)
            else:
                kinds.append(_CONST)
                values.append(term)
        self.kinds = tuple(kinds)
        self.values = tuple(values)
        self.var_slots = frozenset(var_slots)

    def n3(self) -> str:
        return " ".join(
            term.n3()
            for term in (self.node.subject, self.node.predicate,
                         self.node.object)
        )


class _CompiledFilter:
    """One FILTER conjunct with its variable footprint."""

    __slots__ = ("expr", "slots", "pushable")

    def __init__(self, expr: ast.Expression, slots: _SlotTable) -> None:
        self.expr = expr
        self.slots = frozenset(
            slots.slot(var) for var in _expression_variables(expr)
        )
        self.pushable = not _contains_exists(expr)

    def passes(self, state: "_ExecState") -> bool:
        try:
            return effective_boolean_value(
                eval_expression(self.expr, state.view, state.graph)
            )
        except SPARQLTypeError:
            return False


class _BGPPlan:
    """A basic graph pattern with pushed-down filters.

    The join order is chosen once per execution (not per solution) by
    :meth:`order_for`; pattern matching itself handles dynamic
    boundness, so the order only affects speed, never results.
    """

    __slots__ = ("patterns", "filters", "inherited")

    def __init__(
        self,
        patterns: Tuple[_CompiledPattern, ...],
        filters: Tuple[_CompiledFilter, ...],
        inherited: FrozenSet[int],
    ) -> None:
        self.patterns = patterns
        self.filters = filters
        self.inherited = inherited

    def order_for(
        self, state: "_ExecState"
    ) -> Tuple[List[_CompiledPattern], List[List[_CompiledFilter]], List[float]]:
        """Greedy lowest-cardinality join order plus filter placement.

        Returns ``(ordered patterns, filters to run after pattern i,
        estimate at selection time)``.  Filters whose variables are
        never all bound inside this BGP run after the last pattern
        (same point the naive evaluator applies them).
        """
        bound = set(self.inherited) | state.initial_slots
        remaining = list(self.patterns)
        order: List[_CompiledPattern] = []
        estimates: List[float] = []
        while remaining:
            best_index = 0
            best_cost = None
            for index, pattern in enumerate(remaining):
                cost = _estimate(state, pattern, bound)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_index = index
            chosen = remaining.pop(best_index)
            order.append(chosen)
            estimates.append(best_cost if best_cost is not None else 0.0)
            bound |= chosen.var_slots
        filters_at: List[List[_CompiledFilter]] = [[] for _ in order]
        if order:
            placed: Set[int] = set()
            seen = set(self.inherited) | state.initial_slots
            for index, pattern in enumerate(order):
                seen |= pattern.var_slots
                for f in self.filters:
                    if id(f) not in placed and f.slots <= seen:
                        filters_at[index].append(f)
                        placed.add(id(f))
            for f in self.filters:
                if id(f) not in placed:
                    filters_at[-1].append(f)
        return order, filters_at, estimates

    def run(self, state: "_ExecState") -> Iterator[None]:
        order, filters_at = state.orders[id(self)]
        if not order:
            # the empty BGP matches once with no new bindings, but any
            # attached filters still apply
            for f in self.filters:
                if not f.passes(state):
                    return
            yield None
            return
        yield from self._step(state, order, filters_at, 0)

    def _step(
        self,
        state: "_ExecState",
        order: List[_CompiledPattern],
        filters_at: List[List[_CompiledFilter]],
        index: int,
    ) -> Iterator[None]:
        pattern = order[index]
        filters = filters_at[index]
        last = index == len(order) - 1
        for _ in _match(state, pattern):
            passed = True
            for f in filters:
                if not f.passes(state):
                    passed = False
                    break
            if not passed:
                continue
            if last:
                yield None
            else:
                yield from self._step(state, order, filters_at, index + 1)


class _JoinPlan:
    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def run(self, state: "_ExecState") -> Iterator[None]:
        for _ in self.left.run(state):
            yield from self.right.run(state)


class _LeftJoinPlan:
    """OPTIONAL: keep left solutions, extend with right where possible."""

    __slots__ = ("left", "right", "filter")

    def __init__(self, left, right, condition: Optional[_CompiledFilter]):
        self.left = left
        self.right = right
        self.filter = condition

    def run(self, state: "_ExecState") -> Iterator[None]:
        for _ in self.left.run(state):
            extended_any = False
            for _ in self.right.run(state):
                if self.filter is not None and not self.filter.passes(state):
                    continue
                extended_any = True
                yield None
            if not extended_any:
                yield None


class _UnionPlan:
    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def run(self, state: "_ExecState") -> Iterator[None]:
        yield from self.left.run(state)
        yield from self.right.run(state)


class _FilterPlan:
    """Residual filters that could not be pushed into a BGP."""

    __slots__ = ("filters", "child")

    def __init__(self, filters: Tuple[_CompiledFilter, ...], child) -> None:
        self.filters = filters
        self.child = child

    def run(self, state: "_ExecState") -> Iterator[None]:
        for _ in self.child.run(state):
            if all(f.passes(state) for f in self.filters):
                yield None


_PlanNode = Union[_BGPPlan, _JoinPlan, _LeftJoinPlan, _UnionPlan, _FilterPlan]


# -- execution state and the index-nested-loop matcher ------------------------


class _ExecState:
    """Everything one plan execution mutates: the reused binding array."""

    __slots__ = (
        "graph",
        "term_ids",
        "terms",
        "probe",
        "bindings",
        "extra",
        "view",
        "initial_slots",
        "orders",
    )

    def __init__(
        self,
        graph: Graph,
        variables: Sequence[Variable],
        slots: Dict[Variable, int],
    ) -> None:
        self.graph = graph
        self.term_ids = graph._term_ids
        self.terms = graph._term_list
        self.probe = graph._probe
        self.bindings: List[Optional[Node]] = [None] * len(variables)
        self.extra: Dict[Variable, Node] = {}
        self.view = _BindingsView(
            variables, slots, self.bindings, self.extra
        )
        self.initial_slots: Set[int] = set()
        self.orders: Dict[int, Tuple[list, list]] = {}


def _match(state: _ExecState, pattern: _CompiledPattern) -> Iterator[None]:
    """Index-nested-loop step: bind the pattern's free slots in place.

    Yields once per matching triple with the bindings applied, and
    restores the array before producing the next candidate (and on
    exhaustion), so callers backtrack for free.
    """
    bindings = state.bindings
    term_ids = state.term_ids
    ids: List[Optional[int]] = [None, None, None]
    free: List[Tuple[int, int]] = []  # (position, slot)
    for position in range(3):
        if pattern.kinds[position] == _CONST:
            tid = term_ids.get(pattern.values[position])
            if tid is None:
                return
            ids[position] = tid
        else:
            slot = pattern.values[position]
            value = bindings[slot]
            if value is not None:
                tid = term_ids.get(value)
                if tid is None:
                    return
                ids[position] = tid
            else:
                free.append((position, slot))
    sid, pid, oid = ids
    if not free:
        if state.probe.contains(sid, pid, oid):
            yield None
        return
    terms = state.terms
    for candidate in state.probe.scan(sid, pid, oid):
        newly: List[int] = []
        ok = True
        for position, slot in free:
            tid = candidate[position]
            current = bindings[slot]
            if current is None:
                bindings[slot] = terms[tid]
                newly.append(slot)
            elif term_ids.get(current) != tid:
                # repeated variable inside one pattern
                ok = False
                break
        if ok:
            yield None
        for slot in newly:
            bindings[slot] = None


def _estimate(
    state: _ExecState, pattern: _CompiledPattern, bound: Set[int]
) -> float:
    """Estimated matches of one pattern given the bound slots.

    Constant terms probe the backend (``IndexProbe.count``) directly;
    variables already bound by earlier join steps (value unknown at
    planning time) divide by the predicate's distinct-subject/object
    counts from the incremental statistics.
    """
    probe = state.probe
    term_ids = state.term_ids
    resolved: List[Tuple[str, Optional[int]]] = []
    for position in range(3):
        if pattern.kinds[position] == _CONST:
            tid = term_ids.get(pattern.values[position])
            if tid is None:
                return 0.0
            resolved.append(("const", tid))
        elif pattern.values[position] in bound:
            resolved.append(("bound", None))
        else:
            resolved.append(("free", None))
    (s_kind, sid), (p_kind, pid), (o_kind, oid) = resolved
    if p_kind == "const":
        stats = probe.predicate_stats(pid)
        if stats is None:
            return 0.0
        estimate = float(stats.triples)
        if s_kind == "const":
            estimate = probe.count(sid, pid, None)
        elif s_kind == "bound":
            estimate /= max(1, stats.subjects)
        if o_kind == "const":
            direct = probe.count(None, pid, oid)
            estimate = min(estimate, direct) if s_kind != "free" else direct
        elif o_kind == "bound":
            estimate /= max(1, stats.objects)
        return estimate
    size = float(len(state.graph))
    if s_kind == "const":
        estimate = probe.count(sid, None, None)
    elif o_kind == "const":
        estimate = probe.count(None, None, oid)
    else:
        estimate = size
    n_subjects, n_predicates, n_objects = probe.index_sizes()
    if p_kind == "bound":
        estimate /= max(1, n_predicates)
    if s_kind == "bound":
        estimate /= max(1, n_subjects)
    if o_kind == "bound":
        estimate /= max(1, n_objects)
    return estimate


# -- compilation --------------------------------------------------------------


def _normalize(pattern: ast.Pattern) -> ast.Pattern:
    """Coalesce ``Join(BGP, BGP)`` into one BGP.

    The parser emits a fresh BGP per triple-block, joined pairwise.  A
    join of two BGPs has exactly the solutions of their concatenation,
    so merging them lets the planner order *all* the patterns of a
    group and push filters across the former join boundary.
    """
    if isinstance(pattern, ast.Join):
        left = _normalize(pattern.left)
        right = _normalize(pattern.right)
        if isinstance(left, ast.BGP) and isinstance(right, ast.BGP):
            return ast.BGP(left.patterns + right.patterns)
        return ast.Join(left, right)
    if isinstance(pattern, ast.LeftJoin):
        return ast.LeftJoin(
            _normalize(pattern.left), _normalize(pattern.right), pattern.expr
        )
    if isinstance(pattern, ast.UnionPattern):
        return ast.UnionPattern(
            _normalize(pattern.left), _normalize(pattern.right)
        )
    if isinstance(pattern, ast.FilterPattern):
        return ast.FilterPattern(pattern.expr, _normalize(pattern.pattern))
    return pattern


def _compile_pattern(
    pattern: ast.Pattern, slots: _SlotTable, bound: FrozenSet[int]
) -> Tuple[_PlanNode, FrozenSet[int]]:
    """Compile an algebra pattern; returns (plan, certainly-bound-after)."""
    if isinstance(pattern, ast.BGP):
        compiled = tuple(_CompiledPattern(tp, slots) for tp in pattern.patterns)
        after = bound.union(*(cp.var_slots for cp in compiled)) if compiled \
            else bound
        return _BGPPlan(compiled, (), bound), after
    if isinstance(pattern, ast.Join):
        left, after_left = _compile_pattern(pattern.left, slots, bound)
        right, after_right = _compile_pattern(pattern.right, slots, after_left)
        return _JoinPlan(left, right), after_right
    if isinstance(pattern, ast.LeftJoin):
        left, after_left = _compile_pattern(pattern.left, slots, bound)
        right, _ = _compile_pattern(pattern.right, slots, after_left)
        condition = (
            _CompiledFilter(pattern.expr, slots)
            if pattern.expr is not None
            else None
        )
        return _LeftJoinPlan(left, right, condition), after_left
    if isinstance(pattern, ast.UnionPattern):
        left, after_left = _compile_pattern(pattern.left, slots, bound)
        right, after_right = _compile_pattern(pattern.right, slots, bound)
        return _UnionPlan(left, right), after_left & after_right
    if isinstance(pattern, ast.FilterPattern):
        child, after = _compile_pattern(pattern.pattern, slots, bound)
        conjuncts = [
            _CompiledFilter(expr, slots)
            for expr in _split_conjuncts(pattern.expr)
        ]
        if isinstance(child, _BGPPlan):
            bgp_slots = frozenset().union(
                *(cp.var_slots for cp in child.patterns)
            ) if child.patterns else frozenset()
            pushed = tuple(
                f
                for f in conjuncts
                if f.pushable and f.slots <= (bgp_slots | child.inherited)
            )
            residual = tuple(f for f in conjuncts if f not in pushed)
            if pushed:
                child = _BGPPlan(
                    child.patterns, child.filters + pushed, child.inherited
                )
            if not residual:
                return child, after
            return _FilterPlan(residual, child), after
        return _FilterPlan(tuple(conjuncts), child), after
    raise SPARQLEvaluationError(f"unknown pattern node {pattern!r}")


def _walk_bgps(node: _PlanNode) -> Iterator[_BGPPlan]:
    if isinstance(node, _BGPPlan):
        yield node
    elif isinstance(node, (_JoinPlan, _LeftJoinPlan, _UnionPlan)):
        yield from _walk_bgps(node.left)
        yield from _walk_bgps(node.right)
    elif isinstance(node, _FilterPlan):
        yield from _walk_bgps(node.child)


class CompiledQuery:
    """A parsed query compiled for planned execution over any graph.

    Immutable once built (per-execution mutable state lives in
    :class:`_ExecState`), so one cached instance may execute
    concurrently from many threads.
    """

    def __init__(
        self,
        parsed: ast.Query,
        text: Optional[str] = None,
        params: FrozenSet[str] = frozenset(),
    ) -> None:
        self.query = parsed
        self.text = text
        self.params = params
        slots = _SlotTable()
        pattern = getattr(parsed, "pattern", None)
        if pattern is not None:
            self.root, _ = _compile_pattern(
                _normalize(pattern), slots, frozenset()
            )
        else:
            self.root = None
        # Register every remaining variable the query can reference
        # (ORDER BY, aggregates, DESCRIBE terms) so initial bindings
        # for them land in slots rather than the extra map.
        for var in _query_expression_variables(parsed):
            slots.slot(var)
        self.variables: Tuple[Variable, ...] = tuple(slots.variables)
        self.var_slots: Dict[Variable, int] = dict(slots.slots)

    # -- execution ---------------------------------------------------------

    def _state(
        self, graph: Graph, initial: Optional[Solution]
    ) -> _ExecState:
        state = _ExecState(graph, self.variables, self.var_slots)
        if initial:
            for var, value in initial.items():
                slot = self.var_slots.get(var)
                if slot is None:
                    state.extra[var] = value
                else:
                    state.bindings[slot] = value
                    state.initial_slots.add(slot)
        if self.root is not None:
            for bgp in _walk_bgps(self.root):
                order, filters_at, _ = bgp.order_for(state)
                state.orders[id(bgp)] = (order, filters_at)
        return state

    def _pattern_rows(
        self,
        graph: Graph,
        initial: Optional[Solution],
        first_only: bool = False,
    ) -> List[Solution]:
        """All solutions of the compiled pattern, materialised.

        Runs entirely under the graph's lock so the result is one
        consistent snapshot, exactly like ``Graph.triples`` promises.
        """
        with graph._write_lock:
            state = self._state(graph, initial)
            out: List[Solution] = []
            bindings = state.bindings
            variables = self.variables
            for _ in self.root.run(state):
                row: Solution = dict(state.extra)
                for index, value in enumerate(bindings):
                    if value is not None:
                        row[variables[index]] = value
                out.append(row)
                if first_only:
                    break
            return out

    def execute(
        self, graph: Graph, bindings: Optional[Solution] = None
    ) -> SPARQLResult:
        """Run the compiled plan over a graph, with optional pre-bindings."""
        if self.root is None:
            return evaluate(graph, self.query, initial=bindings)

        def pattern_rows(pattern: ast.Pattern, first_only: bool = False):
            return self._pattern_rows(graph, bindings, first_only)

        return evaluate(
            graph, self.query, initial=bindings, pattern_rows=pattern_rows
        )

    # -- introspection -----------------------------------------------------

    def explain(
        self, graph: Graph, bindings: Optional[Solution] = None
    ) -> str:
        """Human-readable plan for this query over a concrete graph.

        Shows the join order each BGP would use right now (the plan is
        re-ordered from live statistics on every execution), the
        per-pattern cardinality estimates at selection time, filter
        placement, and the process-wide plan-cache statistics.
        """
        lines: List[str] = []
        header = self.text.strip().splitlines()[0] if self.text else repr(
            self.query
        )
        lines.append(f"query: {header.strip()}")
        if self.params:
            lines.append(f"parameters: {', '.join(sorted(self.params))}")
        if self.root is None:
            lines.append("plan: no graph pattern (constant DESCRIBE)")
        with graph._write_lock:
            state = self._state(graph, bindings)
            for count, bgp in enumerate(
                _walk_bgps(self.root) if self.root is not None else ()
            ):
                order, filters_at, estimates = bgp.order_for(state)
                lines.append(
                    f"BGP #{count + 1} ({len(order)} patterns, "
                    f"{len(bgp.filters)} pushed filters):"
                )
                if not order:
                    lines.append("  (empty pattern)")
                for index, pattern in enumerate(order):
                    lines.append(
                        f"  {index + 1}. {pattern.n3()}"
                        f"   est={estimates[index]:.1f}"
                    )
                    for f in filters_at[index]:
                        lines.append(
                            f"     filter after this step: "
                            f"{_render_expression(f.expr)}"
                        )
        stats = get_plan_cache().stats()
        lines.append(
            f"plan cache: {stats.entries}/{stats.capacity} entries, "
            f"{stats.hits} hits, {stats.misses} misses, "
            f"{stats.evictions} evictions"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        kind = type(self.query).__name__
        return f"<CompiledQuery {kind} ({len(self.variables)} variables)>"


def _query_expression_variables(parsed: ast.Query) -> List[Variable]:
    found: List[Variable] = []
    if isinstance(parsed, ast.SelectQuery):
        for condition in parsed.order_by:
            found.extend(_expression_variables(condition.expr))
        for aggregate in parsed.aggregates:
            if aggregate.expr is not None:
                found.extend(_expression_variables(aggregate.expr))
        found.extend(parsed.group_by)
        found.extend(parsed.variables)
    elif isinstance(parsed, ast.DescribeQuery):
        found.extend(t for t in parsed.terms if isinstance(t, Variable))
    return found


def _render_expression(expr: ast.Expression) -> str:
    if isinstance(expr, ast.TermExpr):
        return expr.term.n3() if not isinstance(expr.term, Variable) \
            else f"?{expr.term}"
    if isinstance(expr, ast.Comparison):
        return (
            f"({_render_expression(expr.left)} {expr.op} "
            f"{_render_expression(expr.right)})"
        )
    if isinstance(expr, ast.Arithmetic):
        return (
            f"({_render_expression(expr.left)} {expr.op} "
            f"{_render_expression(expr.right)})"
        )
    if isinstance(expr, ast.OrExpr):
        return (
            f"({_render_expression(expr.left)} || "
            f"{_render_expression(expr.right)})"
        )
    if isinstance(expr, ast.AndExpr):
        return (
            f"({_render_expression(expr.left)} && "
            f"{_render_expression(expr.right)})"
        )
    if isinstance(expr, ast.NotExpr):
        return f"!{_render_expression(expr.operand)}"
    if isinstance(expr, ast.Negate):
        return f"-{_render_expression(expr.operand)}"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(_render_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.ExistsExpr):
        return "NOT EXISTS {…}" if expr.negated else "EXISTS {…}"
    return repr(expr)


# -- the prepared/compiled query cache ----------------------------------------


class PlanCacheStats:
    """A read-only snapshot of the cache counters."""

    __slots__ = ("hits", "misses", "evictions", "entries", "capacity")

    def __init__(self, hits, misses, evictions, entries, capacity) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.entries = entries
        self.capacity = capacity

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"PlanCacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, entries={self.entries}, "
            f"capacity={self.capacity})"
        )


class PlanCache:
    """A thread-safe LRU of :class:`CompiledQuery` keyed on query text.

    Repeat ``graph.query()`` calls with the same text skip the lexer,
    parser, and plan compilation entirely.  Hits, misses and evictions
    are published on the ``repro_rdf_plan_cache_*`` metric families.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompiledQuery]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, text: str) -> Optional[CompiledQuery]:
        registry = _registry()
        with self._lock:
            compiled = self._entries.get(text)
            if compiled is not None:
                self._entries.move_to_end(text)
                self._hits += 1
            else:
                self._misses += 1
        if compiled is not None:
            registry.counter(
                "repro_rdf_plan_cache_hits_total",
                "Prepared-query cache lookups that found a compiled plan.",
            ).inc()
        else:
            registry.counter(
                "repro_rdf_plan_cache_misses_total",
                "Prepared-query cache lookups that required compilation.",
            ).inc()
        return compiled

    def put(self, text: str, compiled: CompiledQuery) -> None:
        evicted = 0
        with self._lock:
            self._entries[text] = compiled
            self._entries.move_to_end(text)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            entries = len(self._entries)
        registry = _registry()
        if evicted:
            registry.counter(
                "repro_rdf_plan_cache_evictions_total",
                "Compiled plans evicted by the LRU bound.",
            ).inc(evicted)
        registry.gauge(
            "repro_rdf_plan_cache_entries",
            "Compiled plans currently resident in the prepared-query cache.",
        ).set(entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                self._hits,
                self._misses,
                self._evictions,
                len(self._entries),
                self.capacity,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"<PlanCache {len(self)}/{self.capacity}>"


_plan_cache = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-wide prepared-query cache."""
    return _plan_cache


def reset_plan_cache(capacity: Optional[int] = None) -> PlanCache:
    """Install a fresh (optionally resized) cache; returns it."""
    global _plan_cache
    if capacity is None:
        capacity = _plan_cache.capacity
    _plan_cache = PlanCache(capacity)
    return _plan_cache


def compile_query(
    query: Union[str, ast.Query], *, use_cache: bool = True
) -> CompiledQuery:
    """Compile a query for planned execution, via the cache for text.

    Compilation time (lexer + parser + plan construction) is observed
    onto ``repro_rdf_plan_compile_seconds``.
    """
    if not isinstance(query, str):
        return CompiledQuery(query)
    if use_cache:
        compiled = _plan_cache.get(query)
        if compiled is not None:
            return compiled
    started = time.perf_counter()
    parsed, params = parse_query_params(query)
    compiled = CompiledQuery(parsed, text=query, params=params)
    _registry().histogram(
        "repro_rdf_plan_compile_seconds",
        "Wall-clock seconds to lex, parse and plan one query.",
    ).observe(time.perf_counter() - started)
    if use_cache:
        _plan_cache.put(query, compiled)
    return compiled


# -- prepared queries ---------------------------------------------------------


class PreparedQuery:
    """A compiled query with named ``$param`` substitution.

    ``prepare()`` parses once; each :meth:`execute` substitutes concrete
    terms for the ``$``-spelled variables and runs the compiled plan —
    the annotation store's per-item lookups go through this, which is
    what keeps repeat lookups free of lexer/parser work even though
    every call targets a different data item.
    """

    def __init__(self, compiled: CompiledQuery) -> None:
        self.compiled = compiled
        self.params = compiled.params

    def _bindings(self, params: Dict[str, object]) -> Solution:
        given = set(params)
        if given != set(self.params):
            missing = sorted(set(self.params) - given)
            unknown = sorted(given - set(self.params))
            problems = []
            if missing:
                problems.append(f"missing parameters: {', '.join(missing)}")
            if unknown:
                problems.append(f"unknown parameters: {', '.join(unknown)}")
            raise ValueError("; ".join(problems))
        return {
            Variable(name): value if isinstance(value, Node)
            else Literal(value)
            for name, value in params.items()
        }

    def execute(self, graph: Graph, **params: object) -> SPARQLResult:
        """Run over a graph with every ``$param`` bound to a term.

        Values that are not RDF terms are wrapped as ``Literal``.
        """
        return self.compiled.execute(graph, self._bindings(params))

    def explain(self, graph: Graph, **params: object) -> str:
        """The plan this query would use on ``graph`` (see CompiledQuery)."""
        bindings = self._bindings(params) if params else None
        return self.compiled.explain(graph, bindings)

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.params)) or "no parameters"
        return f"<PreparedQuery ({names})>"


def prepare(text: str) -> PreparedQuery:
    """Parse and compile a ``$param`` query once for repeated execution."""
    return PreparedQuery(compile_query(text, use_cache=True))


def explain(graph: Graph, query: str) -> str:
    """Convenience: compile (via the cache) and explain over ``graph``."""
    return compile_query(query).explain(graph)
