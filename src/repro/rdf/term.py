"""RDF term model: URI references, blank nodes, literals and variables.

Terms follow the RDF abstract syntax.  ``URIRef``, ``BNode`` and
``Variable`` are interned string subclasses (cheap, hashable, directly
usable as dictionary keys); ``Literal`` carries a lexical form plus an
optional datatype and language tag, and exposes the typed Python value
for comparisons inside SPARQL ``FILTER`` and the condition language.

Terms are hashed on every index probe and dictionary-encoding lookup,
so every class keeps ``__slots__`` and a cached hash: the string
subclasses alias ``str.__hash__`` directly (CPython memoises a string's
hash in the object header, and the alias skips a Python-level frame per
probe), and ``Literal`` precomputes its hash once at construction.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Optional

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_FLOAT = _XSD + "float"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATETIME = _XSD + "dateTime"

_NUMERIC_DATATYPES = frozenset(
    {XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}
)


class Node:
    """Abstract base for every RDF term."""

    __slots__ = ()

    def n3(self) -> str:
        """Render the term in N3/N-Triples syntax."""
        raise NotImplementedError


class URIRef(Node, str):
    """An absolute URI reference identifying a resource."""

    __slots__ = ()

    def __new__(cls, value: str) -> "URIRef":
        if not isinstance(value, str):
            raise TypeError(f"URIRef requires a string, got {type(value)!r}")
        return str.__new__(cls, value)

    def n3(self) -> str:
        """Render the term in N3/N-Triples syntax."""

        return f"<{self}>"

    def __repr__(self) -> str:
        return f"URIRef({str.__repr__(self)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, URIRef):
            return str.__eq__(self, other)
        if isinstance(other, (BNode, Variable, Literal)):
            return False
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = str.__hash__

    def defrag(self) -> "URIRef":
        """Return the URI without its fragment component."""
        head, _, __ = str(self).partition("#")
        return URIRef(head)

    def fragment(self) -> str:
        """Return the fragment component, or the final path segment."""
        text = str(self)
        if "#" in text:
            return text.rsplit("#", 1)[1]
        return text.rstrip("/").rsplit("/", 1)[-1]


_bnode_counter = itertools.count()
_bnode_lock = threading.Lock()


class BNode(Node, str):
    """A blank node with a graph-local identifier."""

    __slots__ = ()

    def __new__(cls, value: Optional[str] = None) -> "BNode":
        if value is None:
            with _bnode_lock:
                value = f"b{next(_bnode_counter)}"
        return str.__new__(cls, value)

    def n3(self) -> str:
        """Render the term in N3/N-Triples syntax."""

        return f"_:{self}"

    def __repr__(self) -> str:
        return f"BNode({str.__repr__(self)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BNode):
            return str.__eq__(self, other)
        if isinstance(other, (URIRef, Variable, Literal)):
            return False
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = str.__hash__


class Variable(Node, str):
    """A query variable (``?name``), used in SPARQL patterns."""

    __slots__ = ()

    def __new__(cls, value: str) -> "Variable":
        if value.startswith("?") or value.startswith("$"):
            value = value[1:]
        if not value:
            raise ValueError("variable name must be non-empty")
        return str.__new__(cls, value)

    def n3(self) -> str:
        """Render the term in N3/N-Triples syntax."""

        return f"?{self}"

    def __repr__(self) -> str:
        return f"Variable({str.__repr__(self)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return str.__eq__(self, other)
        if isinstance(other, (URIRef, BNode, Literal)):
            return False
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = str.__hash__


def _infer_datatype(value: Any) -> Optional[str]:
    if isinstance(value, bool):
        return XSD_BOOLEAN
    if isinstance(value, int):
        return XSD_INTEGER
    if isinstance(value, float):
        return XSD_DOUBLE
    return None


def _lexical_form(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


_SIMPLE_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\r": "\\r", "\t": "\\t"}

# Characters Python's splitlines() treats as line breaks; raw occurrences
# would corrupt line-oriented N-Triples output.
_LINE_BREAKERS = "\x85  "


def _escape_lexical(text: str) -> str:
    out = []
    for ch in text:
        if ch in _SIMPLE_ESCAPES:
            out.append(_SIMPLE_ESCAPES[ch])
        elif ord(ch) < 0x20 or ch in _LINE_BREAKERS:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def _parse_typed(lexical: str, datatype: Optional[str]) -> Any:
    if datatype == XSD_INTEGER:
        return int(lexical)
    if datatype in (XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT):
        return float(lexical)
    if datatype == XSD_BOOLEAN:
        if lexical in ("true", "1"):
            return True
        if lexical in ("false", "0"):
            return False
        raise ValueError(f"invalid xsd:boolean lexical form: {lexical!r}")
    return lexical


class Literal(Node):
    """An RDF literal: a lexical form with optional datatype or language.

    ``Literal(3.2)`` infers ``xsd:double``; ``Literal("high")`` is a plain
    string literal.  ``value`` holds the typed Python value used in
    comparisons; ordering between numeric literals is numeric, between
    plain strings lexicographic, and raises ``TypeError`` otherwise
    (mirroring SPARQL type errors).
    """

    __slots__ = ("lexical", "datatype", "lang", "value", "_hash")

    def __init__(
        self,
        value: Any,
        datatype: Optional[str] = None,
        lang: Optional[str] = None,
    ) -> None:
        if lang is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language and a datatype")
        if datatype is None:
            datatype = _infer_datatype(value)
        elif isinstance(datatype, str):
            datatype = str(datatype)
        if isinstance(value, str):
            lexical = value
            typed = _parse_typed(value, datatype) if datatype else value
        else:
            lexical = _lexical_form(value)
            typed = value
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", URIRef(datatype) if datatype else None)
        object.__setattr__(self, "lang", lang)
        object.__setattr__(self, "value", typed)
        # Precomputed once: literals are hashed on every index probe and
        # dictionary-encoding lookup.  Numeric literals hash by value so
        # Literal(1) and Literal(1.0) stay in one equality class.
        if isinstance(typed, (int, float)) and not isinstance(typed, bool):
            cached = hash(float(typed))
        else:
            cached = hash((lexical, self.datatype, lang))
        object.__setattr__(self, "_hash", cached)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal instances are immutable")

    def is_numeric(self) -> bool:
        """True for numeric literals (booleans excluded)."""
        return isinstance(self.value, (int, float)) and not isinstance(
            self.value, bool
        )

    def n3(self) -> str:
        """Render the term in N3/N-Triples syntax."""

        base = f'"{_escape_lexical(self.lexical)}"'
        if self.lang:
            return f"{base}@{self.lang}"
        if self.datatype and str(self.datatype) != XSD_STRING:
            return f"{base}^^<{self.datatype}>"
        return base

    def __repr__(self) -> str:
        parts = [repr(self.lexical)]
        if self.datatype:
            parts.append(f"datatype={str(self.datatype)!r}")
        if self.lang:
            parts.append(f"lang={self.lang!r}")
        return f"Literal({', '.join(parts)})"

    def __str__(self) -> str:
        return self.lexical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented if not isinstance(other, Node) else False
        if self.is_numeric() and other.is_numeric():
            return self.value == other.value
        return (
            self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.lang == other.lang
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def _comparable(self, other: "Literal") -> None:
        if self.is_numeric() and other.is_numeric():
            return
        if isinstance(self.value, str) and isinstance(other.value, str):
            return
        raise TypeError(
            f"cannot order literals {self!r} and {other!r} of differing types"
        )

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        self._comparable(other)
        return self.value < other.value

    def __le__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        self._comparable(other)
        return self.value <= other.value

    def __gt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        self._comparable(other)
        return self.value > other.value

    def __ge__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        self._comparable(other)
        return self.value >= other.value
