"""Triple: the RDF statement unit."""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional, Tuple, Union

from repro.rdf.term import BNode, Literal, Node, URIRef, Variable

Subject = Union[URIRef, BNode]
Predicate = URIRef
Object = Union[URIRef, BNode, Literal]
TermOrNone = Optional[Node]


class Triple(NamedTuple):
    """An (subject, predicate, object) RDF statement.

    Being a ``NamedTuple`` a triple unpacks naturally
    (``s, p, o = triple``) and is hashable, so graphs can store triples
    in set-based indices.
    """

    subject: Subject
    predicate: Predicate
    object: Object

    def n3(self) -> str:
        """Render in N-Triples syntax."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def terms(self) -> Iterator[Node]:
        """Yield subject, predicate, object."""
        yield self.subject
        yield self.predicate
        yield self.object

    def has_variables(self) -> bool:
        """True when any position is a query variable."""
        return any(isinstance(term, Variable) for term in self.terms())


def validate_triple(
    subject: object, predicate: object, obj: object
) -> Tuple[Subject, Predicate, Object]:
    """Check RDF positional constraints and return the validated terms.

    Subjects must be URIs or blank nodes, predicates URIs, and objects
    any term except a variable.  Raises ``TypeError`` on violation.
    """
    if not isinstance(subject, (URIRef, BNode)):
        raise TypeError(f"triple subject must be URIRef or BNode, got {subject!r}")
    if not isinstance(predicate, URIRef):
        raise TypeError(f"triple predicate must be URIRef, got {predicate!r}")
    if not isinstance(obj, (URIRef, BNode, Literal)):
        raise TypeError(
            f"triple object must be URIRef, BNode or Literal, got {obj!r}"
        )
    return subject, predicate, obj
