"""A Turtle parser (the read half of the Turtle support).

Covers the subset our own serialiser emits plus the common hand-written
forms: ``@prefix`` directives, predicate lists with ``;``, object lists
with ``,``, the ``a`` keyword, IRIs, prefixed names, blank nodes,
plain/typed/language literals, and bare numeric/boolean literals.
Collections and ``[]`` blank-node property lists are not supported.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from repro.rdf.namespace import RDF, NamespaceManager
from repro.rdf.term import BNode, Literal, Node, URIRef
from repro.rdf.term import XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER
from repro.rdf.triple import Triple


class TurtleParseError(ValueError):
    """Raised on malformed Turtle input."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<PREFIX_DIRECTIVE>@prefix\b)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<BNODE>_:[A-Za-z0-9_]+)
  | (?P<NUMBER>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<BOOLEAN>\btrue\b|\bfalse\b)
  | (?P<A>\ba\b)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_\-]*:(?:[A-Za-z0-9_.\-]*[A-Za-z0-9_\-])?)
  | (?P<LANGTAG>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<DTSEP>\^\^)
  | (?P<PUNCT>[.;,])
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(body: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(body):
        if body[i] == "\\" and i + 1 < len(body):
            pair = body[i : i + 2]
            if pair in _ESCAPES:
                out.append(_ESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(body):
                out.append(chr(int(body[i + 2 : i + 6], 16)))
                i += 6
                continue
        out.append(body[i])
        i += 1
    return "".join(out)


class _Tokens:
    def __init__(self, text: str) -> None:
        self._tokens: List[Tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise TurtleParseError(
                    f"unexpected character {text[pos]!r} at offset {pos}"
                )
            kind = match.lastgroup or ""
            if kind != "WS":
                self._tokens.append((kind, match.group(), pos))
            pos = match.end()
        self._tokens.append(("EOF", "", len(text)))
        self._index = 0

    def peek(self) -> Tuple[str, str, int]:
        """The next token without consuming it."""

        return self._tokens[self._index]

    def next(self) -> Tuple[str, str, int]:
        """Consume and return the next token."""

        token = self._tokens[self._index]
        self._index += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None):
        """Consume the next token if it matches, else None."""

        token = self.peek()
        if token[0] == kind and (value is None or token[1] == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None):
        """Consume a matching token or raise TurtleParseError."""

        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            raise TurtleParseError(
                f"expected {value or kind} at offset {actual[2]}, "
                f"got {actual[1]!r}"
            )
        return token


def parse_turtle(text: str) -> Iterator[Triple]:
    """Yield the triples of a Turtle document."""
    tokens = _Tokens(text)
    nsm = NamespaceManager(defaults=False)

    def parse_term(as_predicate: bool = False) -> Node:
        kind, value, offset = tokens.next()
        if kind == "IRIREF":
            return URIRef(value[1:-1])
        if kind == "A" and as_predicate:
            return RDF.type
        if kind == "PNAME":
            prefix, _, local = value.partition(":")
            namespace = nsm.namespace_for(prefix)
            if namespace is None:
                raise TurtleParseError(
                    f"undeclared prefix {prefix!r} at offset {offset}"
                )
            return URIRef(namespace + local)
        if as_predicate:
            raise TurtleParseError(
                f"invalid predicate {value!r} at offset {offset}"
            )
        if kind == "BNODE":
            return BNode(value[2:])
        if kind == "STRING":
            lexical = _unescape(value[1:-1])
            langtag = tokens.accept("LANGTAG")
            if langtag is not None:
                return Literal(lexical, lang=langtag[1][1:])
            if tokens.accept("DTSEP") is not None:
                datatype = parse_term()
                if not isinstance(datatype, URIRef):
                    raise TurtleParseError("datatype must be an IRI")
                return Literal(lexical, datatype=str(datatype))
            return Literal(lexical)
        if kind == "NUMBER":
            if any(ch in value for ch in ".eE"):
                return Literal(float(value), datatype=XSD_DOUBLE)
            return Literal(int(value), datatype=XSD_INTEGER)
        if kind == "BOOLEAN":
            return Literal(value == "true", datatype=XSD_BOOLEAN)
        raise TurtleParseError(f"unexpected token {value!r} at offset {offset}")

    while tokens.peek()[0] != "EOF":
        if tokens.accept("PREFIX_DIRECTIVE"):
            prefix_token = tokens.expect("PNAME")
            prefix = prefix_token[1].rstrip(":").split(":")[0]
            iri = tokens.expect("IRIREF")
            nsm.bind(prefix, iri[1][1:-1])
            tokens.expect("PUNCT", ".")
            continue
        subject = parse_term()
        if not isinstance(subject, (URIRef, BNode)):
            raise TurtleParseError(f"invalid subject {subject!r}")
        while True:
            predicate = parse_term(as_predicate=True)
            while True:
                obj = parse_term()
                yield Triple(subject, predicate, obj)  # type: ignore[arg-type]
                if tokens.accept("PUNCT", ",") is None:
                    break
            if tokens.accept("PUNCT", ";") is None:
                break
            # tolerate a trailing ';' before '.'
            if tokens.peek()[0] == "PUNCT" and tokens.peek()[1] == ".":
                break
        tokens.expect("PUNCT", ".")
