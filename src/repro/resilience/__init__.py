"""Fault-tolerant service invocation for quality views.

The paper's quality views compile into chains of remote WSDL quality
services, and the reproduction originally assumed every invocation
succeeds on the first try — one ``ServiceFault`` aborted the whole
enactment.  This subsystem makes partial failure a first-class,
testable condition:

* :mod:`~repro.resilience.faults` — deterministic (seeded) fault
  injection: :class:`FaultInjector` plans per-service faults, timeouts
  and extra latency; :class:`FlakyService` wraps ad-hoc services;
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` with
  exponential backoff + full jitter and per-invocation deadlines;
* :mod:`~repro.resilience.breaker` — per-endpoint
  :class:`CircuitBreaker` (closed -> open -> half-open) with health
  counters surfaced via ``ServiceRegistry.health()``;
* :mod:`~repro.resilience.invoker` — :class:`ResilientInvoker`, the
  single invocation code path shared by the serial and wavefront
  enactors, and :func:`apply_resilience` to wire a compiled workflow;
* :mod:`~repro.resilience.config` — :class:`ResilienceConfig`,
  including per-processor ``on_failure`` degradation policies
  (``fail`` | ``skip`` | ``default_annotation``).

Wire-up paths: ``QualityView.with_resilience(...)`` for stand-alone
runs, ``RuntimeConfig(resilience=...)`` for the concurrent
``ExecutionService`` (which adds per-job retries, a dead-letter list,
and resilience counters in its ``RuntimeStats``).
"""

from repro.resilience.breaker import (
    BreakerSnapshot,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRegistry,
    CircuitOpenError,
)
from repro.resilience.config import (
    ON_FAILURE_DEFAULT,
    ON_FAILURE_FAIL,
    ON_FAILURE_POLICIES,
    ON_FAILURE_SKIP,
    ResilienceConfig,
)
from repro.resilience.faults import (
    FaultCounters,
    FaultInjector,
    FaultPlan,
    FlakyService,
    InjectedFault,
    InjectedTimeout,
)
from repro.resilience.invoker import (
    InvokerStats,
    InvokerStatsSnapshot,
    ResilientInvoker,
    apply_resilience,
)
from repro.resilience.policy import DeadlineExceeded, RetryPolicy

__all__ = [
    "BreakerSnapshot",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerRegistry",
    "CircuitOpenError",
    "DeadlineExceeded",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FlakyService",
    "InjectedFault",
    "InjectedTimeout",
    "InvokerStats",
    "InvokerStatsSnapshot",
    "ON_FAILURE_DEFAULT",
    "ON_FAILURE_FAIL",
    "ON_FAILURE_POLICIES",
    "ON_FAILURE_SKIP",
    "ResilienceConfig",
    "ResilientInvoker",
    "RetryPolicy",
    "apply_resilience",
]
