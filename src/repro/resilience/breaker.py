"""Per-endpoint circuit breakers (closed -> open -> half-open).

A breaker fails fast once an endpoint has produced enough consecutive
faults, sparing the worker pool from burning retries against a service
that is down; after a cool-down it lets a bounded number of probes
through and re-closes on success.  The clock is injectable so state
transitions are unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Optional

from repro.observability import get_event_log, get_registry


class BreakerState(str, Enum):
    """Lifecycle of one endpoint's breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the breaker states (documented in the metric help).
_STATE_VALUES = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


def _publish_transition(
    endpoint: str, state: BreakerState, initial: bool = False
) -> None:
    """Reflect one breaker state change on the registry and event log."""
    registry = get_registry()
    registry.gauge(
        "repro_resilience_breaker_state",
        "Circuit-breaker state per endpoint "
        "(0=closed, 1=half-open, 2=open).",
        labels=("endpoint",),
    ).labels(endpoint=endpoint).set(_STATE_VALUES[state])
    if initial:
        return
    registry.counter(
        "repro_resilience_breaker_transitions_total",
        "Breaker state transitions by endpoint and target state.",
        labels=("endpoint", "to"),
    ).labels(endpoint=endpoint, to=state.value).inc()
    get_event_log().emit(
        "breaker.transition", endpoint=endpoint, state=state.value
    )


class CircuitOpenError(RuntimeError):
    """The endpoint's breaker is open; the call was not attempted."""

    def __init__(self, endpoint: str, retry_after: float) -> None:
        super().__init__(
            f"circuit open for endpoint {endpoint!r}; "
            f"next probe in {max(0.0, retry_after):.2f}s"
        )
        self.endpoint = endpoint
        self.retry_after = retry_after


@dataclass(frozen=True)
class BreakerSnapshot:
    """One immutable reading of a breaker's health counters."""

    endpoint: str
    state: BreakerState
    consecutive_failures: int
    failures: int
    successes: int
    rejections: int
    opened_count: int


class CircuitBreaker:
    """One endpoint's breaker; thread-safe, with an injectable clock.

    ``threshold`` consecutive failures trip CLOSED -> OPEN.  After
    ``reset_after`` seconds OPEN lets probes through (HALF_OPEN);
    ``probes`` successful probes re-close it, any probe failure
    re-opens it.  ``threshold=0`` disables the breaker (always allows,
    still counts).
    """

    def __init__(
        self,
        endpoint: str,
        threshold: int = 5,
        reset_after: float = 30.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if reset_after < 0:
            raise ValueError(f"reset_after must be >= 0, got {reset_after}")
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        self.endpoint = endpoint
        self.threshold = threshold
        self.reset_after = reset_after
        self.probes = probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._failures = 0
        self._successes = 0
        self._rejections = 0
        self._opened_count = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        _publish_transition(endpoint, BreakerState.CLOSED, initial=True)

    @property
    def state(self) -> BreakerState:
        """The current state (OPEN may lazily report HALF_OPEN)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> None:
        """Admit one invocation or raise :class:`CircuitOpenError`."""
        with self._lock:
            if self.threshold == 0:
                return
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return
            if (
                self._state is BreakerState.HALF_OPEN
                and self._probes_in_flight < self.probes
            ):
                self._probes_in_flight += 1
                return
            self._rejections += 1
            retry_after = (
                self._opened_at + self.reset_after - self._clock()
            )
            raise CircuitOpenError(self.endpoint, retry_after)

    def record_success(self) -> None:
        """Note a successful invocation; may re-close a half-open breaker."""
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if self._probe_successes >= self.probes:
                    self._state = BreakerState.CLOSED
                    self._probe_successes = 0
                    self._probes_in_flight = 0
                    _publish_transition(self.endpoint, BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Note a failed invocation; may open the breaker."""
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self.threshold == 0:
                return
            if self._state is BreakerState.HALF_OPEN:
                self._open()
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._open()

    def snapshot(self) -> BreakerSnapshot:
        """A consistent reading of state and health counters."""
        with self._lock:
            self._maybe_half_open()
            return BreakerSnapshot(
                endpoint=self.endpoint,
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                failures=self._failures,
                successes=self._successes,
                rejections=self._rejections,
                opened_count=self._opened_count,
            )

    # -- internals (lock held) ---------------------------------------------

    def _open(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_count += 1
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._probe_successes = 0
        _publish_transition(self.endpoint, BreakerState.OPEN)

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0
            _publish_transition(self.endpoint, BreakerState.HALF_OPEN)


class CircuitBreakerRegistry:
    """Breakers keyed by endpoint, created on first use."""

    def __init__(
        self,
        threshold: int = 5,
        reset_after: float = 30.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.reset_after = reset_after
        self.probes = probes
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, endpoint: str) -> CircuitBreaker:
        """The endpoint's breaker (created closed on first use)."""
        with self._lock:
            found = self._breakers.get(endpoint)
            if found is None:
                found = CircuitBreaker(
                    endpoint,
                    threshold=self.threshold,
                    reset_after=self.reset_after,
                    probes=self.probes,
                    clock=self._clock,
                )
                self._breakers[endpoint] = found
            return found

    def snapshots(self) -> Dict[str, BreakerSnapshot]:
        """endpoint -> health snapshot for every known breaker."""
        with self._lock:
            breakers = list(self._breakers.values())
        return {b.endpoint: b.snapshot() for b in breakers}

    def open_endpoints(self) -> list:
        """Endpoints whose breaker is currently open."""
        return [
            endpoint
            for endpoint, snap in self.snapshots().items()
            if snap.state is BreakerState.OPEN
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)
