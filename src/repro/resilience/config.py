"""Configuration of the fault-tolerance layer."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

# The degradation-policy constants live with the firing semantics in
# the workflow layer; this module re-exports them as the config-facing
# names.
from repro.workflow.processors import (  # noqa: F401  (re-export)
    ON_FAILURE_DEFAULT,
    ON_FAILURE_FAIL,
    ON_FAILURE_POLICIES,
    ON_FAILURE_SKIP,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables of one :class:`repro.resilience.ResilientInvoker`.

    ``max_attempts``
        Invocations tried per service call (1 = no retries).
    ``backoff_base`` / ``backoff_cap``
        Exponential-backoff schedule: the delay before attempt *n + 1*
        is drawn uniformly from ``[0, min(cap, base * 2**(n-1))]``
        (full jitter, after the AWS architecture-blog scheme).
    ``jitter_seed``
        Seeds the jitter RNG; ``None`` draws from the OS.  Seeded runs
        produce identical backoff schedules, which the chaos
        differential tests rely on.
    ``deadline``
        Per-invocation wall-clock budget in seconds, spanning all
        retries and backoff sleeps; ``None`` means unbounded.  A retry
        that cannot finish its backoff within the budget raises
        :class:`~repro.resilience.policy.DeadlineExceeded` instead of
        sleeping.
    ``breaker_threshold``
        Consecutive failures that trip an endpoint's circuit breaker
        (closed -> open); ``0`` disables breakers entirely.
    ``breaker_reset_after``
        Seconds an open breaker waits before letting one probe through
        (open -> half-open).
    ``breaker_probes``
        Successful probes required to re-close a half-open breaker.
    ``on_failure``
        Default degradation policy applied to *service-backed*
        processors when the invoker gives up: ``"fail"`` propagates the
        error (the paper's behaviour), ``"skip"`` contributes nothing,
        ``"default_annotation"`` additionally tags the items as
        degraded (evidence missing).
    ``on_failure_overrides``
        Per-processor policy overrides by processor name; these apply
        to any named processor, service-backed or not.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    jitter_seed: Optional[int] = None
    deadline: Optional[float] = None
    breaker_threshold: int = 5
    breaker_reset_after: float = 30.0
    breaker_probes: int = 1
    on_failure: str = ON_FAILURE_FAIL
    on_failure_overrides: Mapping[str, str] = field(default_factory=dict)

    def validated(self) -> "ResilienceConfig":
        """Range-check every field; returns self for chaining."""
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < 0:
            raise ValueError(
                f"backoff_cap must be >= 0, got {self.backoff_cap}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0 (0 disables breakers), "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_reset_after < 0:
            raise ValueError(
                f"breaker_reset_after must be >= 0, "
                f"got {self.breaker_reset_after}"
            )
        if self.breaker_probes < 1:
            raise ValueError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}"
            )
        for name, policy in (
            ("on_failure", self.on_failure),
            *self.on_failure_overrides.items(),
        ):
            if policy not in ON_FAILURE_POLICIES:
                raise ValueError(
                    f"unknown on_failure policy {policy!r} for {name!r}; "
                    f"valid: {ON_FAILURE_POLICIES}"
                )
        return self

    def with_overrides(self, **overrides) -> "ResilienceConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validated()
