"""Deterministic fault injection for quality services.

Production quality pipelines fail at the service boundary: a remote
annotator times out, a QA endpoint returns a SOAP fault, a round trip
takes ten times its usual latency.  This module makes those behaviours
*injectable and repeatable* so the resilience layer can be tested: a
:class:`FaultInjector` holds one seeded random stream per service name
and, consulted on every round trip, raises :class:`InjectedFault` /
:class:`InjectedTimeout` or sleeps extra latency according to a
per-service :class:`FaultPlan`.

Two attachment styles cover both registry-deployed and ad-hoc services:

* ``injector.attach(service)`` (or ``attach_registry``) installs the
  injector into the service's own round-trip hook — the service keeps
  its concrete type, so compiler ``isinstance`` checks still hold;
* :class:`FlakyService` wraps an arbitrary service behind the common
  interface when subclass identity does not matter.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.services.interface import Service, ServiceFault


class InjectedFault(ServiceFault):
    """A deterministic, injector-raised service fault."""


class InjectedTimeout(InjectedFault):
    """An injected timeout: the call 'hung' past the client's patience."""


@dataclass(frozen=True)
class FaultPlan:
    """How one service misbehaves, per invocation.

    Probabilities are independent draws from the service's seeded
    stream: ``latency_rate`` adds ``extra_latency`` seconds to the
    round trip, then ``timeout_rate`` raises :class:`InjectedTimeout`,
    then ``fault_rate`` raises :class:`InjectedFault`.  ``max_faults``
    caps how many faults (of either kind) the plan injects in total —
    handy for "fails twice, then recovers" scenarios (``None`` means
    no cap).
    """

    fault_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_rate: float = 0.0
    extra_latency: float = 0.0
    max_faults: Optional[int] = None

    def validated(self) -> "FaultPlan":
        """Range-check every field; returns self for chaining."""
        for name in ("fault_rate", "timeout_rate", "latency_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.fault_rate + self.timeout_rate > 1.0:
            raise ValueError(
                f"fault_rate + timeout_rate must be <= 1, got "
                f"{self.fault_rate} + {self.timeout_rate}"
            )
        if self.extra_latency < 0:
            raise ValueError(
                f"extra_latency must be >= 0, got {self.extra_latency}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )
        return self


@dataclass
class FaultCounters:
    """What the injector did to one service so far."""

    invocations: int = 0
    faults: int = 0
    timeouts: int = 0
    delays: int = 0


class FaultInjector:
    """Seeded, per-service fault injection behind the round-trip hook.

    Each service name owns an independent ``random.Random`` stream
    derived from ``(seed, name)``, so the k-th invocation of a service
    draws the same verdict regardless of how other services interleave
    — which keeps multi-threaded chaos runs reproducible per service.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._plans: Dict[str, FaultPlan] = {}
        self._default_plan: Optional[FaultPlan] = None
        self._streams: Dict[str, random.Random] = {}
        self._counters: Dict[str, FaultCounters] = {}
        self._lock = threading.Lock()

    # -- planning ----------------------------------------------------------

    def plan(self, service_name: str, plan: Optional[FaultPlan] = None,
             **kwargs: Any) -> "FaultInjector":
        """Set one service's fault plan (kwargs build a FaultPlan)."""
        if plan is None:
            plan = FaultPlan(**kwargs)
        self._plans[service_name] = plan.validated()
        return self

    def plan_all(self, plan: Optional[FaultPlan] = None,
                 **kwargs: Any) -> "FaultInjector":
        """Set the fallback plan for services without their own."""
        if plan is None:
            plan = FaultPlan(**kwargs)
        self._default_plan = plan.validated()
        return self

    # -- attachment --------------------------------------------------------

    def attach(self, service: Service) -> Service:
        """Install this injector into a service's round-trip hook."""
        service.fault_injector = self
        return service

    def detach(self, service: Service) -> Service:
        """Remove this injector from a service (idempotent)."""
        if service.fault_injector is self:
            service.fault_injector = None
        return service

    def attach_registry(self, services: Iterable[Service]) -> "FaultInjector":
        """Attach to every service of a registry (or any iterable)."""
        for service in services:
            self.attach(service)
        return self

    def detach_registry(self, services: Iterable[Service]) -> "FaultInjector":
        """Detach from every service of a registry (or any iterable)."""
        for service in services:
            self.detach(service)
        return self

    # -- the injection point ----------------------------------------------

    def on_invocation(self, service: Service) -> None:
        """Called by ``Service._round_trip`` before each invocation.

        May sleep (injected latency) and may raise (injected fault or
        timeout); otherwise the invocation proceeds normally.
        """
        plan = self._plans.get(service.name, self._default_plan)
        with self._lock:
            counters = self._counters.setdefault(service.name, FaultCounters())
            counters.invocations += 1
            if plan is None:
                return
            stream = self._streams.get(service.name)
            if stream is None:
                stream = random.Random(f"{self.seed}/{service.name}")
                self._streams[service.name] = stream
            delay = (
                plan.extra_latency
                if plan.latency_rate and stream.random() < plan.latency_rate
                else 0.0
            )
            budget_left = (
                plan.max_faults is None
                or counters.faults + counters.timeouts < plan.max_faults
            )
            verdict = stream.random()
            timeout = budget_left and verdict < plan.timeout_rate
            fault = (
                budget_left
                and not timeout
                and verdict < plan.timeout_rate + plan.fault_rate
            )
            if timeout:
                counters.timeouts += 1
            elif fault:
                counters.faults += 1
            if delay:
                counters.delays += 1
        if delay:
            time.sleep(delay)
        if timeout:
            raise InjectedTimeout(
                service.name,
                f"injected timeout (seed {self.seed})",
                endpoint=service.endpoint,
            )
        if fault:
            raise InjectedFault(
                service.name,
                f"injected fault (seed {self.seed})",
                endpoint=service.endpoint,
            )

    # -- observation -------------------------------------------------------

    def counters(self) -> Mapping[str, FaultCounters]:
        """Per-service injection counters (a snapshot copy)."""
        with self._lock:
            return {
                name: FaultCounters(
                    invocations=c.invocations,
                    faults=c.faults,
                    timeouts=c.timeouts,
                    delays=c.delays,
                )
                for name, c in self._counters.items()
            }

    def total_injected(self) -> int:
        """Faults + timeouts injected across all services."""
        with self._lock:
            return sum(
                c.faults + c.timeouts for c in self._counters.values()
            )

    def reset(self) -> None:
        """Restart every stream and counter (plans are kept)."""
        with self._lock:
            self._streams.clear()
            self._counters.clear()


class FlakyService(Service):
    """A fault-injecting wrapper around an arbitrary service.

    Delegates the invocation to the wrapped service after consulting
    the injector; unknown attributes fall through to the inner service
    so operator factories and annotation functions stay reachable.
    """

    def __init__(self, inner: Service, injector: FaultInjector) -> None:
        super().__init__(inner.name, inner.concept, inner.endpoint)
        self.inner = inner
        self.fault_injector = injector

    def invoke(self, dataset, amap, context=None):
        """Inject per the plan, then delegate to the wrapped service."""
        self._round_trip()
        return self.inner.invoke(dataset, amap, context=context)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.__dict__["inner"], name)
