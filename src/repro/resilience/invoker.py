"""The resilient invocation path shared by every enactment strategy.

``ResilientInvoker.invoke`` wraps one ``Service.invoke`` round trip
with the full policy stack: circuit-breaker admission, bounded retries
with exponential backoff + full jitter, and a wall-clock deadline that
spans all attempts.  Service-backed processors route their calls
through ``Processor.invoke_service``, so the serial and the wavefront
enactor exercise exactly this code path — resilience behaviour cannot
diverge between them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.observability import get_registry
from repro.resilience.breaker import CircuitBreakerRegistry, CircuitOpenError
from repro.resilience.config import ON_FAILURE_FAIL, ResilienceConfig
from repro.resilience.policy import DeadlineExceeded, RetryPolicy
from repro.services.interface import Service


def _endpoint_counter(name: str, help: str, endpoint: str):
    """One per-endpoint resilience counter child from the registry."""
    return get_registry().counter(
        name, help, labels=("endpoint",)
    ).labels(endpoint=endpoint)


@dataclass(frozen=True)
class InvokerStatsSnapshot:
    """One immutable reading of an invoker's counters."""

    invocations: int
    successes: int
    failures: int
    retries: int
    exhausted: int
    deadline_exceeded: int
    breaker_rejections: int

    @property
    def first_try_successes(self) -> int:
        """Invocations that never needed a retry."""
        return max(0, self.successes - self.retries)


class InvokerStats:
    """Thread-safe accumulator behind :class:`InvokerStatsSnapshot`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.invocations = 0
        self.successes = 0
        self.failures = 0
        self.retries = 0
        self.exhausted = 0
        self.deadline_exceeded = 0
        self.breaker_rejections = 0

    def count(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> InvokerStatsSnapshot:
        with self._lock:
            return InvokerStatsSnapshot(
                invocations=self.invocations,
                successes=self.successes,
                failures=self.failures,
                retries=self.retries,
                exhausted=self.exhausted,
                deadline_exceeded=self.deadline_exceeded,
                breaker_rejections=self.breaker_rejections,
            )


class ResilientInvoker:
    """Retries, deadlines, and circuit breaking around service calls.

    One invoker is meant to be shared by every concurrent enactment of
    a deployment (its breaker registry *is* the endpoint health state);
    all methods are thread-safe.  Passing the framework's service
    registry publishes the breaker health through
    ``ServiceRegistry.health()``.  ``clock``/``sleep`` are injectable
    for tests.
    """

    def __init__(
        self,
        config: Optional[ResilienceConfig] = None,
        services: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = (config or ResilienceConfig()).validated()
        self.policy = RetryPolicy(
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            seed=self.config.jitter_seed,
        )
        self.breakers = CircuitBreakerRegistry(
            threshold=self.config.breaker_threshold,
            reset_after=self.config.breaker_reset_after,
            probes=self.config.breaker_probes,
            clock=clock,
        )
        self.stats = InvokerStats()
        self._clock = clock
        self._sleep = sleep
        if services is not None:
            services.health_registry = self.breakers

    def invoke(
        self,
        service: Service,
        dataset: Any,
        amap: Any,
        context: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        """One service call under the full resilience policy.

        Raises :class:`CircuitOpenError` without attempting the call
        when the endpoint's breaker is open, the last ``ServiceFault``
        when retries are exhausted, and :class:`DeadlineExceeded` when
        the remaining budget cannot cover the next backoff.
        """
        endpoint = service.endpoint or service.name
        breaker = self.breakers.breaker(endpoint)
        deadline = (
            None
            if self.config.deadline is None
            else self._clock() + self.config.deadline
        )
        self.stats.count("invocations")
        started = time.perf_counter()
        failures = 0
        try:
            while True:
                try:
                    breaker.allow()
                except CircuitOpenError:
                    self.stats.count("breaker_rejections")
                    _endpoint_counter(
                        "repro_resilience_breaker_rejections_total",
                        "Invocations refused because the breaker was open.",
                        endpoint,
                    ).inc()
                    self._count_outcome(endpoint, "breaker_open")
                    raise
                try:
                    result = service.invoke(dataset, amap, context=context)
                except Exception as error:
                    breaker.record_failure()
                    if not self.policy.retryable(error):
                        self._count_outcome(endpoint, "error")
                        raise
                    self.stats.count("failures")
                    failures += 1
                    if failures >= self.policy.max_attempts:
                        self.stats.count("exhausted")
                        _endpoint_counter(
                            "repro_resilience_exhausted_total",
                            "Invocations that failed every allowed attempt.",
                            endpoint,
                        ).inc()
                        self._count_outcome(endpoint, "exhausted")
                        raise
                    delay = self.policy.backoff(failures)
                    if deadline is not None and self._clock() + delay > deadline:
                        self.stats.count("deadline_exceeded")
                        _endpoint_counter(
                            "repro_resilience_deadline_exceeded_total",
                            "Invocations abandoned because the deadline "
                            "could not cover the next backoff.",
                            endpoint,
                        ).inc()
                        self._count_outcome(endpoint, "deadline")
                        raise DeadlineExceeded(
                            service.name,
                            f"deadline of {self.config.deadline}s exhausted "
                            f"after {failures} failed attempt(s)",
                            endpoint=service.endpoint,
                            cause=error,
                        ) from error
                    self.stats.count("retries")
                    _endpoint_counter(
                        "repro_resilience_retries_total",
                        "Per-invocation retries after a retryable fault.",
                        endpoint,
                    ).inc()
                    if delay > 0:
                        _endpoint_counter(
                            "repro_resilience_backoff_seconds_total",
                            "Seconds spent sleeping in retry backoff.",
                            endpoint,
                        ).inc(delay)
                        self._sleep(delay)
                else:
                    breaker.record_success()
                    self.stats.count("successes")
                    self._count_outcome(endpoint, "success")
                    return result
        finally:
            get_registry().histogram(
                "repro_resilience_invocation_seconds",
                "Wall-clock seconds of one invocation, all attempts and "
                "backoffs included.",
                labels=("endpoint",),
            ).labels(endpoint=endpoint).observe(time.perf_counter() - started)

    def _count_outcome(self, endpoint: str, outcome: str) -> None:
        get_registry().counter(
            "repro_resilience_invocations_total",
            "Finished invocations by endpoint and outcome.",
            labels=("endpoint", "outcome"),
        ).labels(endpoint=endpoint, outcome=outcome).inc()

    def snapshot(self) -> InvokerStatsSnapshot:
        """A point-in-time reading of the invocation counters."""
        return self.stats.snapshot()

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"<ResilientInvoker {snap.invocations} invocations, "
            f"{snap.retries} retries, {len(self.breakers)} breakers>"
        )


def apply_resilience(
    workflow: Any,
    invoker: Optional[ResilientInvoker],
    config: Optional[ResilienceConfig] = None,
) -> Any:
    """Attach an invoker and degradation policies to a compiled workflow.

    Service-backed processors (those with a ``service`` attribute) get
    the invoker and the config's default ``on_failure`` policy;
    ``on_failure_overrides`` apply to any processor by name.  Returns
    the workflow for chaining.  Idempotent: re-applying replaces the
    previous wiring.
    """
    if config is None:
        config = invoker.config if invoker is not None else ResilienceConfig()
    for processor in workflow.processors.values():
        service_backed = getattr(processor, "service", None) is not None
        if service_backed:
            processor.invoker = invoker
        if processor.name in config.on_failure_overrides:
            processor.on_failure = config.on_failure_overrides[processor.name]
        elif service_backed and config.on_failure != ON_FAILURE_FAIL:
            processor.on_failure = config.on_failure
    return workflow
