"""Retry policies: exponential backoff, full jitter, deadlines."""

from __future__ import annotations

import random
import threading
from typing import Optional

from repro.services.interface import ServiceFault


class DeadlineExceeded(ServiceFault):
    """The invocation's wall-clock budget ran out across retries."""


class RetryPolicy:
    """Exponential backoff with full jitter over a seeded stream.

    The delay before attempt ``n + 1`` (n >= 1 failures so far) is
    drawn uniformly from ``[0, min(cap, base * 2**(n-1))]`` — the
    "full jitter" scheme, which decorrelates retry storms across
    concurrent callers.  A seeded policy replays the same schedule,
    which the chaos differential tests use; the stream is guarded by a
    lock so concurrent invocations draw from one well-defined sequence.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_base: float = 0.02,
        backoff_cap: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {backoff_base}")
        if backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {backoff_cap}")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def ceiling(self, failures: int) -> float:
        """The jitter-free backoff ceiling after ``failures`` failures."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        return min(
            self.backoff_cap, self.backoff_base * (2 ** (failures - 1))
        )

    def backoff(self, failures: int) -> float:
        """Seconds to sleep before the next attempt (full jitter)."""
        ceiling = self.ceiling(failures)
        if ceiling <= 0:
            return 0.0
        with self._lock:
            return self._rng.uniform(0.0, ceiling)

    def retryable(self, error: BaseException) -> bool:
        """Whether an invocation error is worth another attempt.

        Only service-layer faults are retried; programming errors
        propagate immediately.  Deadline and breaker errors are
        terminal by construction and never re-enter the loop.
        """
        return isinstance(error, ServiceFault) and not isinstance(
            error, DeadlineExceeded
        )

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.max_attempts} "
            f"base={self.backoff_base}s cap={self.backoff_cap}s>"
        )
