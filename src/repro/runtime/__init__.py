"""The concurrent quality-view execution runtime.

The paper enacts one compiled quality view at a time; this subsystem
turns that per-call facade into a throughput-oriented service:

* :class:`~repro.runtime.parallel.ParallelEnactor` — wavefront
  scheduling over the compiled workflow DAG plus parallel implicit
  iteration, output-identical to the serial enactor;
* :class:`~repro.runtime.service.ExecutionService` — a bounded job
  queue drained by a worker pool, with job handles/futures, batched
  submission, admission control (block/reject backpressure) and
  graceful draining shutdown;
* :mod:`~repro.runtime.metrics` — per-job measurements (queue wait,
  enactment wall time, per-processor timings, annotation-cache hits)
  and aggregate :class:`~repro.runtime.metrics.RuntimeStats`.

Fault tolerance: configure ``RuntimeConfig(resilience=...)`` with a
:class:`repro.resilience.ResilienceConfig` and the service routes every
service invocation through one shared
:class:`~repro.resilience.ResilientInvoker` (retries with backoff,
deadlines, circuit breakers, ``on_failure`` degradation);
``job_retries`` adds whole-job re-runs, with permanently failed jobs
collected on ``ExecutionService.dead_letters``.

CPU-bound workloads can switch to the sharded process pool —
:class:`~repro.runtime.process.ProcessExecutionService`, selected via
``RuntimeConfig(backend="process", shards=N)`` or
``REPRO_RUNTIME_BACKEND=process`` — which streams the item-partitionable
stages of each view (annotate/enrich/item-local QA) through forked
worker processes, each owning one hash partition
(:mod:`~repro.runtime.shard`) of the data and of the annotation
repositories, with collection-scoped stages back in the parent.

Obtain a configured engine via ``QuratorFramework.runtime()``.
"""

from repro.runtime.config import (
    BACKEND_PROCESS,
    BACKEND_THREAD,
    RuntimeConfig,
)
from repro.runtime.jobs import (
    JobBatch,
    JobCancelledError,
    JobHandle,
    JobStatus,
)
from repro.runtime.metrics import JobMetrics, RuntimeStats, RuntimeStatsSnapshot
from repro.runtime.parallel import ParallelEnactor
from repro.runtime.process import ProcessExecutionService, WorkerLostError
from repro.runtime.service import (
    ExecutionService,
    QueueFullError,
    RuntimeClosedError,
)
from repro.runtime.shard import ShardSpec, owners, partition, shard_of

__all__ = [
    "BACKEND_PROCESS",
    "BACKEND_THREAD",
    "ExecutionService",
    "JobBatch",
    "JobCancelledError",
    "JobHandle",
    "JobMetrics",
    "JobStatus",
    "ParallelEnactor",
    "ProcessExecutionService",
    "QueueFullError",
    "RuntimeClosedError",
    "RuntimeConfig",
    "RuntimeStats",
    "RuntimeStatsSnapshot",
    "ShardSpec",
    "WorkerLostError",
    "owners",
    "partition",
    "shard_of",
]
