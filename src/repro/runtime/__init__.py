"""The concurrent quality-view execution runtime.

The paper enacts one compiled quality view at a time; this subsystem
turns that per-call facade into a throughput-oriented service:

* :class:`~repro.runtime.parallel.ParallelEnactor` — wavefront
  scheduling over the compiled workflow DAG plus parallel implicit
  iteration, output-identical to the serial enactor;
* :class:`~repro.runtime.service.ExecutionService` — a bounded job
  queue drained by a worker pool, with job handles/futures, batched
  submission, admission control (block/reject backpressure) and
  graceful draining shutdown;
* :mod:`~repro.runtime.metrics` — per-job measurements (queue wait,
  enactment wall time, per-processor timings, annotation-cache hits)
  and aggregate :class:`~repro.runtime.metrics.RuntimeStats`.

Fault tolerance: configure ``RuntimeConfig(resilience=...)`` with a
:class:`repro.resilience.ResilienceConfig` and the service routes every
service invocation through one shared
:class:`~repro.resilience.ResilientInvoker` (retries with backoff,
deadlines, circuit breakers, ``on_failure`` degradation);
``job_retries`` adds whole-job re-runs, with permanently failed jobs
collected on ``ExecutionService.dead_letters``.

Obtain a configured engine via ``QuratorFramework.runtime()``.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.jobs import (
    JobBatch,
    JobCancelledError,
    JobHandle,
    JobStatus,
)
from repro.runtime.metrics import JobMetrics, RuntimeStats, RuntimeStatsSnapshot
from repro.runtime.parallel import ParallelEnactor
from repro.runtime.service import (
    ExecutionService,
    QueueFullError,
    RuntimeClosedError,
)

__all__ = [
    "ExecutionService",
    "JobBatch",
    "JobCancelledError",
    "JobHandle",
    "JobMetrics",
    "JobStatus",
    "ParallelEnactor",
    "QueueFullError",
    "RuntimeClosedError",
    "RuntimeConfig",
    "RuntimeStats",
    "RuntimeStatsSnapshot",
]
