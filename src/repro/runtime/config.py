"""Configuration of the concurrent execution runtime."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from repro.resilience.config import ResilienceConfig

#: Admission-control policies for a full job queue.
POLICY_BLOCK = "block"
POLICY_REJECT = "reject"


def default_workers() -> int:
    """A sensible worker-pool width for this machine."""
    return min(8, os.cpu_count() or 4)


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables of one :class:`repro.runtime.service.ExecutionService`.

    ``workers``
        Threads draining the job queue (each runs whole enactments).
    ``queue_size``
        Bound of the job queue; ``0`` means unbounded (no backpressure).
    ``queue_policy``
        What a submit against a full queue does: ``"block"`` waits for
        a slot, ``"reject"`` raises ``QueueFullError`` immediately.
    ``parallel_enactment``
        When true, each job is enacted by a wavefront
        :class:`~repro.runtime.parallel.ParallelEnactor` (independent
        processors of the compiled DAG fire concurrently); when false
        jobs use the serial enactor and concurrency comes only from the
        worker pool.
    ``enactment_workers``
        Wavefront width of the per-job parallel enactor.
    ``iteration_workers``
        Fan-out width for implicit iteration inside one firing;
        ``1`` keeps iterations serial.
    ``job_retries``
        Whole-job re-runs after a failed enactment before the job is
        failed and dead-lettered (``0`` = fail on the first error; the
        finer-grained per-invocation retries live in ``resilience``).
    ``resilience``
        Optional :class:`repro.resilience.ResilienceConfig`; when set,
        the service builds one shared
        :class:`~repro.resilience.ResilientInvoker` and wires every
        submitted view/workflow through it (retries with backoff,
        deadlines, per-endpoint circuit breakers, ``on_failure``
        degradation policies).
    """

    workers: int = 4
    queue_size: int = 64
    queue_policy: str = POLICY_BLOCK
    parallel_enactment: bool = False
    enactment_workers: int = 4
    iteration_workers: int = 1
    job_retries: int = 0
    resilience: Optional[ResilienceConfig] = None
    name: str = "runtime"

    def validated(self) -> "RuntimeConfig":
        """Range-check every field; returns self for chaining."""
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_size < 0:
            raise ValueError(
                f"queue_size must be >= 0 (0 = unbounded), got {self.queue_size}"
            )
        if self.queue_policy not in (POLICY_BLOCK, POLICY_REJECT):
            raise ValueError(
                f"unknown queue_policy {self.queue_policy!r}; "
                f"valid: {POLICY_BLOCK!r}, {POLICY_REJECT!r}"
            )
        if self.enactment_workers < 1:
            raise ValueError(
                f"enactment_workers must be >= 1, got {self.enactment_workers}"
            )
        if self.iteration_workers < 1:
            raise ValueError(
                f"iteration_workers must be >= 1, got {self.iteration_workers}"
            )
        if self.job_retries < 0:
            raise ValueError(
                f"job_retries must be >= 0, got {self.job_retries}"
            )
        if self.resilience is not None:
            self.resilience.validated()
        return self

    def with_overrides(self, **overrides) -> "RuntimeConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validated()
