"""Configuration of the concurrent execution runtime."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.resilience.config import ResilienceConfig

#: Admission-control policies for a full job queue.
POLICY_BLOCK = "block"
POLICY_REJECT = "reject"

#: Execution backends an :class:`RuntimeConfig` can select.
BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"

#: Environment override of the default backend, mirroring
#: ``REPRO_STORAGE_BACKEND``: ``REPRO_RUNTIME_BACKEND=process`` makes
#: every default-constructed runtime multi-process, which is how the CI
#: tier re-runs the runtime/stream test files against the process pool.
BACKEND_ENV = "REPRO_RUNTIME_BACKEND"


def default_backend() -> str:
    """The backend selected by the environment (``thread`` if unset)."""
    return os.environ.get(BACKEND_ENV, BACKEND_THREAD)


def default_workers() -> int:
    """A sensible worker-pool width for this machine."""
    return min(8, os.cpu_count() or 4)


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables of one :class:`repro.runtime.service.ExecutionService`.

    ``workers``
        Threads draining the job queue (each runs whole enactments).
    ``queue_size``
        Bound of the job queue; ``0`` means unbounded (no backpressure).
    ``queue_policy``
        What a submit against a full queue does: ``"block"`` waits for
        a slot, ``"reject"`` raises ``QueueFullError`` immediately.
    ``parallel_enactment``
        When true, each job is enacted by a wavefront
        :class:`~repro.runtime.parallel.ParallelEnactor` (independent
        processors of the compiled DAG fire concurrently); when false
        jobs use the serial enactor and concurrency comes only from the
        worker pool.
    ``enactment_workers``
        Wavefront width of the per-job parallel enactor.
    ``iteration_workers``
        Fan-out width for implicit iteration inside one firing;
        ``1`` keeps iterations serial.
    ``job_retries``
        Whole-job re-runs after a failed enactment before the job is
        failed and dead-lettered (``0`` = fail on the first error; the
        finer-grained per-invocation retries live in ``resilience``).
    ``resilience``
        Optional :class:`repro.resilience.ResilienceConfig`; when set,
        the service builds one shared
        :class:`~repro.resilience.ResilientInvoker` and wires every
        submitted view/workflow through it (retries with backoff,
        deadlines, per-endpoint circuit breakers, ``on_failure``
        degradation policies).
    ``backend``
        ``"thread"`` (the default) runs jobs on an in-process worker
        pool; ``"process"`` runs the shardable stages of each job on a
        pool of forked worker processes
        (:class:`repro.runtime.process.ProcessExecutionService`), with
        consolidation and other collection-scoped stages in the parent.
        The default honours the ``REPRO_RUNTIME_BACKEND`` environment
        variable.
    ``shards``
        Worker processes of the process backend, each owning a hash
        partition of the data items and their annotation repositories;
        ``0`` (the default) means "same as ``workers``".
    ``chunk_size``
        Items per streaming chunk on the process backend: the unit of
        hand-off between the worker's annotate/enrich/assert stages
        and of partial results shipped back to the parent.
    ``worker_timeout``
        Seconds the process backend's watchdog waits for a worker to
        exit at shutdown before terminating it (also bounds the join).
    """

    workers: int = 4
    queue_size: int = 64
    queue_policy: str = POLICY_BLOCK
    parallel_enactment: bool = False
    enactment_workers: int = 4
    iteration_workers: int = 1
    job_retries: int = 0
    resilience: Optional[ResilienceConfig] = None
    name: str = "runtime"
    backend: str = field(default_factory=default_backend)
    shards: int = 0
    chunk_size: int = 32
    worker_timeout: float = 10.0

    def effective_shards(self) -> int:
        """The worker-process count the process backend actually runs."""
        return self.shards if self.shards > 0 else self.workers

    def validated(self) -> "RuntimeConfig":
        """Range-check every field; returns self for chaining."""
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_size < 0:
            raise ValueError(
                f"queue_size must be >= 0 (0 = unbounded), got {self.queue_size}"
            )
        if self.queue_policy not in (POLICY_BLOCK, POLICY_REJECT):
            raise ValueError(
                f"unknown queue_policy {self.queue_policy!r}; "
                f"valid: {POLICY_BLOCK!r}, {POLICY_REJECT!r}"
            )
        if self.enactment_workers < 1:
            raise ValueError(
                f"enactment_workers must be >= 1, got {self.enactment_workers}"
            )
        if self.iteration_workers < 1:
            raise ValueError(
                f"iteration_workers must be >= 1, got {self.iteration_workers}"
            )
        if self.job_retries < 0:
            raise ValueError(
                f"job_retries must be >= 0, got {self.job_retries}"
            )
        if self.backend not in (BACKEND_THREAD, BACKEND_PROCESS):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"valid: {BACKEND_THREAD!r}, {BACKEND_PROCESS!r}"
            )
        if self.shards < 0:
            raise ValueError(
                f"shards must be >= 0 (0 = same as workers), "
                f"got {self.shards}"
            )
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.worker_timeout <= 0:
            raise ValueError(
                f"worker_timeout must be > 0, got {self.worker_timeout}"
            )
        if self.resilience is not None:
            self.resilience.validated()
        return self

    def with_overrides(self, **overrides) -> "RuntimeConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validated()
