"""Jobs and the handles callers hold on them."""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.metrics import JobMetrics


class JobStatus(str, Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job can change state no further."""
        return self in (
            JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED
        )


class JobCancelledError(RuntimeError):
    """The job was cancelled before it ran."""


class JobHandle:
    """A future over one submitted job.

    Returned by the execution service at submission; callers use it to
    wait for, inspect, or cancel the job.  ``metrics`` carries the
    job's measurements once it finishes.
    """

    def __init__(self, job_id: int, name: str = "") -> None:
        self.job_id = job_id
        self.name = name or f"job-{job_id}"
        self.metrics = JobMetrics(job_id, submitted_at=time.perf_counter())
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._status = JobStatus.QUEUED
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: Runtime-installed hook fired when a cancellation wins.
        self._on_cancel: Optional[Callable[[], None]] = None

    # -- state transitions (runtime-internal) ------------------------------

    def _try_start(self) -> bool:
        """QUEUED -> RUNNING; False if the job was cancelled meanwhile."""
        with self._lock:
            if self._status is not JobStatus.QUEUED:
                return False
            self._status = JobStatus.RUNNING
            self.metrics.started_at = time.perf_counter()
            return True

    def _finish(self, value: Any) -> None:
        with self._lock:
            self._status = JobStatus.SUCCEEDED
            self._value = value
            self.metrics.finished_at = time.perf_counter()
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._status = JobStatus.FAILED
            self._error = error
            self.metrics.finished_at = time.perf_counter()
        self._done.set()

    # -- caller API --------------------------------------------------------

    @property
    def status(self) -> JobStatus:
        """The job's current lifecycle state."""
        with self._lock:
            return self._status

    def cancel(self) -> bool:
        """Cancel if still queued; returns whether cancellation won."""
        with self._lock:
            if self._status is not JobStatus.QUEUED:
                return False
            self._status = JobStatus.CANCELLED
            self._error = JobCancelledError(f"{self.name} was cancelled")
        self._done.set()
        if self._on_cancel is not None:
            self._on_cancel()
        return True

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal (or timeout); returns done()."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's value; re-raises its error; TimeoutError on wait."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"{self.name} did not finish in {timeout}s")
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The job's error (None on success); TimeoutError on wait."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"{self.name} did not finish in {timeout}s")
        with self._lock:
            return self._error

    def __repr__(self) -> str:
        return f"<JobHandle {self.name!r} ({self.status.value})>"


class Job:
    """A unit of queued work: a thunk plus the handle observing it.

    ``submitter_span`` is the span active where the job was created
    (``repro.observability.current_span()``); the worker re-activates
    it before opening the job's own span, so the job parents under the
    submitter's trace despite the queue hop.
    """

    def __init__(
        self,
        handle: JobHandle,
        thunk: Callable[[], Any],
        submitter_span: Optional[Any] = None,
    ) -> None:
        self.handle = handle
        self.thunk = thunk
        self.submitter_span = submitter_span


class JobBatch:
    """The handles of one batched submission, with collective waits."""

    def __init__(self, handles: Sequence[JobHandle]) -> None:
        self.handles: List[JobHandle] = list(handles)

    def __len__(self) -> int:
        return len(self.handles)

    def __iter__(self):
        return iter(self.handles)

    def __getitem__(self, index: int) -> JobHandle:
        return self.handles[index]

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every job is terminal; False if the wait timed out."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        for handle in self.handles:
            remaining = (
                None if deadline is None else deadline - time.perf_counter()
            )
            if remaining is not None and remaining <= 0:
                return False
            if not handle.wait(remaining):
                return False
        return True

    def results(self, timeout: Optional[float] = None) -> List[Any]:
        """Every job's value in submission order; raises the first error."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        values: List[Any] = []
        for handle in self.handles:
            remaining = (
                None if deadline is None else deadline - time.perf_counter()
            )
            values.append(handle.result(remaining))
        return values

    def failures(self) -> List[JobHandle]:
        """Finished jobs that failed or were cancelled."""
        return [
            h for h in self.handles
            if h.done() and h.status in (JobStatus.FAILED, JobStatus.CANCELLED)
        ]

    def __repr__(self) -> str:
        done = sum(1 for h in self.handles if h.done())
        return f"<JobBatch {done}/{len(self.handles)} done>"
