"""Execution metrics: per-job measurements and runtime aggregates."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.observability import get_registry
from repro.workflow.trace import EnactmentTrace


@dataclass
class JobMetrics:
    """What one job cost, measured by the runtime.

    Times are ``time.perf_counter`` readings; durations in seconds.
    ``processor_seconds`` aggregates the enactment trace per processor
    (summed over nested/iterated firings); ``cache_lookups`` /
    ``cache_hits`` are annotation-repository reads attributed to this
    job via its span context (exact even when jobs overlap — each read
    accumulates on the reading job's root span, however many thread
    hops deep it happened; see ``repro.observability.spans``).
    """

    job_id: int
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    processor_seconds: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0
    #: Whole-job re-runs the worker performed after failed enactments
    #: (bounded by ``RuntimeConfig.job_retries``).
    retries: int = 0
    #: Trace events whose failure an ``on_failure`` policy absorbed.
    degraded_firings: int = 0

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued before a worker picked the job up."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> Optional[float]:
        """Enactment wall time, or None while running/queued."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def record_trace(self, trace: Optional[EnactmentTrace]) -> None:
        """Fold an enactment trace into the per-processor timings."""
        if trace is None:
            return
        for event in trace.events:
            if event.status == "degraded":
                self.degraded_firings += 1
            duration = event.duration
            if duration is None:
                continue
            self.processor_seconds[event.processor] = (
                self.processor_seconds.get(event.processor, 0.0) + duration
            )
            self.iterations += event.iterations


@dataclass(frozen=True)
class RuntimeStatsSnapshot:
    """One immutable reading of a runtime's counters."""

    submitted: int
    completed: int
    failed: int
    rejected: int
    cancelled: int
    in_queue: int
    running: int
    total_queue_wait: float
    total_run_seconds: float
    uptime: float
    processor_seconds: Dict[str, float]
    # -- resilience counters (zero when no policy is configured) -------
    #: Whole-job re-runs after failed enactments.
    job_retries: int = 0
    #: Jobs that exhausted their retry policy and were dead-lettered.
    dead_lettered: int = 0
    #: Trace events degraded by ``on_failure`` policies.
    degraded_firings: int = 0
    #: Per-invocation retries performed by the resilient invoker.
    invocation_retries: int = 0
    #: Invocations that failed every attempt (fault surfaced).
    invocations_exhausted: int = 0
    #: Invocations refused because an endpoint's breaker was open.
    breaker_rejections: int = 0
    #: Endpoints whose circuit breaker is currently open.
    open_endpoints: int = 0

    @property
    def retries(self) -> int:
        """All retry work performed: per-invocation plus whole-job."""
        return self.invocation_retries + self.job_retries

    @property
    def finished(self) -> int:
        """Jobs that reached a terminal state."""
        return self.completed + self.failed + self.cancelled

    @property
    def jobs_per_second(self) -> float:
        """Completed-job throughput over the runtime's uptime."""
        if self.uptime <= 0:
            return 0.0
        return self.completed / self.uptime

    @property
    def mean_queue_wait(self) -> float:
        """Average seconds a finished job spent queued."""
        done = self.completed + self.failed
        return self.total_queue_wait / done if done else 0.0


class RuntimeStats:
    """Thread-safe accumulator behind :class:`RuntimeStatsSnapshot`.

    Every lifecycle transition is also published to the process-wide
    metric registry, labelled with the runtime's name; the lock-guarded
    attributes stay the source of truth for :meth:`snapshot` (they
    survive a registry swap mid-run).
    """

    def __init__(self, name: str = "runtime") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._started_at = time.perf_counter()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.cancelled = 0
        self.running = 0
        self.total_queue_wait = 0.0
        self.total_run_seconds = 0.0
        self.processor_seconds: Dict[str, float] = {}
        self.job_retries = 0
        self.dead_lettered = 0
        self.degraded_firings = 0

    # -- registry mirrors --------------------------------------------------

    def _jobs_total(self, outcome: str):
        return get_registry().counter(
            "repro_runtime_jobs_total",
            "Jobs leaving the runtime, by outcome "
            "(completed/failed/cancelled/rejected).",
            labels=("runtime", "outcome"),
        ).labels(runtime=self.name, outcome=outcome)

    def _queue_depth(self):
        return get_registry().gauge(
            "repro_runtime_queue_depth",
            "Jobs admitted to the queue and not yet started.",
            labels=("runtime",),
        ).labels(runtime=self.name)

    def _workers_busy(self):
        return get_registry().gauge(
            "repro_runtime_workers_busy",
            "Worker threads currently running a job.",
            labels=("runtime",),
        ).labels(runtime=self.name)

    # -- lifecycle hooks ---------------------------------------------------

    def on_submit(self) -> None:
        with self._lock:
            self.submitted += 1
        get_registry().counter(
            "repro_runtime_jobs_submitted_total",
            "Jobs accepted into the queue.",
            labels=("runtime",),
        ).labels(runtime=self.name).inc()
        self._queue_depth().inc()

    def on_reject(self) -> None:
        with self._lock:
            self.rejected += 1
        self._jobs_total("rejected").inc()

    def on_cancel(self) -> None:
        with self._lock:
            self.cancelled += 1
        self._jobs_total("cancelled").inc()
        self._queue_depth().dec()

    def on_start(self) -> None:
        with self._lock:
            self.running += 1
        self._queue_depth().dec()
        self._workers_busy().inc()

    def on_job_retry(self) -> None:
        """One whole-job re-run after a failed enactment."""
        with self._lock:
            self.job_retries += 1
        get_registry().counter(
            "repro_runtime_job_retries_total",
            "Whole-job re-runs after a failed enactment.",
            labels=("runtime",),
        ).labels(runtime=self.name).inc()

    def on_dead_letter(self) -> None:
        """One job exhausted its retry policy and was dead-lettered."""
        with self._lock:
            self.dead_lettered += 1
        get_registry().counter(
            "repro_runtime_dead_letters_total",
            "Jobs that exhausted their retry budget.",
            labels=("runtime",),
        ).labels(runtime=self.name).inc()

    def on_finish(self, metrics: JobMetrics, failed: bool) -> None:
        """Fold one finished job's measurements into the aggregates."""
        with self._lock:
            self.running -= 1
            if failed:
                self.failed += 1
            else:
                self.completed += 1
            self.total_queue_wait += metrics.queue_wait or 0.0
            self.total_run_seconds += metrics.run_seconds or 0.0
            self.degraded_firings += metrics.degraded_firings
            for processor, seconds in metrics.processor_seconds.items():
                self.processor_seconds[processor] = (
                    self.processor_seconds.get(processor, 0.0) + seconds
                )
        registry = get_registry()
        self._workers_busy().dec()
        self._jobs_total("failed" if failed else "completed").inc()
        queue_wait = metrics.queue_wait
        if queue_wait is not None:
            registry.histogram(
                "repro_runtime_job_queue_wait_seconds",
                "Seconds a job waited in the queue before starting.",
                labels=("runtime",),
            ).labels(runtime=self.name).observe(queue_wait)
        run_seconds = metrics.run_seconds
        if run_seconds is not None:
            registry.histogram(
                "repro_runtime_job_run_seconds",
                "Enactment wall-clock seconds of one job "
                "(all retry attempts included).",
                labels=("runtime",),
            ).labels(runtime=self.name).observe(run_seconds)

    def snapshot(
        self,
        in_queue: int = 0,
        invoker: Optional[Any] = None,
        outstanding: Optional[int] = None,
    ) -> RuntimeStatsSnapshot:
        """A consistent point-in-time reading of every counter.

        ``invoker`` (a :class:`repro.resilience.ResilientInvoker`)
        contributes the invocation-level resilience counters when the
        runtime has one.  When ``outstanding`` (submitted-but-not-done,
        from the service's own counter) is given, ``in_queue`` is
        derived from it *inside* the counter lock — so the published
        ``in_queue`` and ``running`` come from the same instant and
        ``in_queue + running == max(outstanding, running)`` exactly.
        """
        invocation_retries = invocations_exhausted = 0
        breaker_rejections = open_endpoints = 0
        if invoker is not None:
            inv = invoker.snapshot()
            invocation_retries = inv.retries
            invocations_exhausted = inv.exhausted
            breaker_rejections = inv.breaker_rejections
            open_endpoints = len(invoker.breakers.open_endpoints())
        with self._lock:
            if outstanding is not None:
                in_queue = max(0, outstanding - self.running)
            return RuntimeStatsSnapshot(
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                rejected=self.rejected,
                cancelled=self.cancelled,
                in_queue=in_queue,
                running=self.running,
                total_queue_wait=self.total_queue_wait,
                total_run_seconds=self.total_run_seconds,
                uptime=time.perf_counter() - self._started_at,
                processor_seconds=dict(self.processor_seconds),
                job_retries=self.job_retries,
                dead_lettered=self.dead_lettered,
                degraded_firings=self.degraded_firings,
                invocation_retries=invocation_retries,
                invocations_exhausted=invocations_exhausted,
                breaker_rejections=breaker_rejections,
                open_endpoints=open_endpoints,
            )
