"""Wavefront-parallel workflow enactment.

The serial :class:`repro.workflow.enactor.Enactor` fires processors one
at a time in topological order.  This module's
:class:`ParallelEnactor` instead schedules a *wavefront* over the
data/control-link DAG: every processor whose upstream dependencies have
completed is submitted to a thread pool, so independent branches of a
compiled quality view (e.g. the three QAs fed by the single Data
Enrichment step of Fig. 6) execute concurrently.  Implicit iteration
can additionally fan out each firing's per-element calls across a
second pool.

Both enactors share the firing semantics of
``repro.workflow.enactor`` (:func:`fire_processor` — implicit
iteration, retry/alternate fault tolerance), so a parallel enactment
produces exactly the outputs of a serial one; only the interleaving of
trace events differs.  The differential tests in
``tests/test_runtime_parallel.py`` pin that equivalence down.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.observability import current_span, use_span
from repro.workflow.enactor import (
    KIND_WAVEFRONT,
    EnactmentError,
    EnactmentResult,
    Enactor,
    check_inputs,
    collect_workflow_outputs,
    enactment_telemetry,
    fire_processor,
    gather_port_values,
    traced_firing,
)
from repro.workflow.model import Workflow
from repro.workflow.trace import EnactmentTrace


class ParallelEnactor(Enactor):
    """Enacts workflows with wavefront (DAG-level) parallelism.

    ``max_workers`` bounds how many processors may fire concurrently;
    ``iteration_workers`` > 1 additionally parallelises the implicit
    iteration inside each firing (a dedicated pool per run, so firings
    cannot deadlock waiting on their own iteration subtasks).

    The instance is re-entrant: concurrent ``run`` calls from different
    threads each get their own pools, value store, and trace
    (``last_trace`` is per calling thread, as in the base class).

    Observability: thread pools do not inherit context variables, so
    the active span is captured at task submission and re-activated
    inside each firing task (and each parallel iteration call) — a
    firing two pool hops away from the submitting job still lands in
    that job's trace, and its annotation-store reads count against
    exactly that job.
    """

    kind = KIND_WAVEFRONT

    def __init__(
        self, max_workers: int = 4, iteration_workers: int = 1
    ) -> None:
        super().__init__()
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if iteration_workers < 1:
            raise ValueError(
                f"iteration_workers must be >= 1, got {iteration_workers}"
            )
        self.max_workers = max_workers
        self.iteration_workers = iteration_workers

    def enact(
        self, workflow: Workflow, inputs: Optional[Mapping[str, Any]] = None
    ) -> EnactmentResult:
        """Enact a workflow; returns its outputs *with* the run's trace."""
        inputs = dict(inputs or {})
        check_inputs(workflow, inputs)
        workflow.validate()
        trace = EnactmentTrace(workflow.name)
        self.last_trace = trace
        values: Dict[Tuple[str, str], Any] = {
            ("", name): value for name, value in inputs.items()
        }
        # Compiled workflows carry a precomputed wavefront schedule;
        # consume it instead of re-deriving the dependency maps per run
        # (upstream_of scans every link per processor).  Hand-built or
        # structurally edited workflows fall back to a fresh computation
        # — ensure_schedule treats a stale processor set as a miss.
        schedule = workflow.schedule
        if (
            schedule is None
            or schedule.dependencies.keys() != workflow.processors.keys()
        ):
            schedule = workflow.compute_schedule()
        pending: Dict[str, Set[str]] = {
            name: set(deps) for name, deps in schedule.dependencies.items()
        }
        dependents: Dict[str, List[str]] = {
            name: list(waiting) for name, waiting in schedule.dependents.items()
        }

        iteration_pool: Optional[ThreadPoolExecutor] = None
        mapper = None
        if self.iteration_workers > 1:
            iteration_pool = ThreadPoolExecutor(
                max_workers=self.iteration_workers,
                thread_name_prefix=f"iter-{workflow.name}",
            )

            def mapper(call, calls):  # noqa: F811 - bound when pool exists
                # Carry the firing task's span onto the iteration pool
                # threads so per-element calls stay in its trace.
                span = current_span()

                def hop(inputs):
                    with use_span(span):
                        return call(inputs)

                return list(iteration_pool.map(hop, calls))

        try:
            with enactment_telemetry(workflow.name, self.kind):
                with ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=f"enact-{workflow.name}",
                ) as pool:
                    self._wavefront(
                        workflow, pool, mapper, trace, values, pending,
                        dependents,
                    )
        finally:
            if iteration_pool is not None:
                iteration_pool.shutdown(wait=True)
        return EnactmentResult(collect_workflow_outputs(workflow, values), trace)

    def _wavefront(
        self,
        workflow: Workflow,
        pool: ThreadPoolExecutor,
        mapper: Optional[Callable],
        trace: EnactmentTrace,
        values: Dict[Tuple[str, str], Any],
        pending: Dict[str, Set[str]],
        dependents: Dict[str, List[str]],
    ) -> None:
        """Drive the ready set through the pool until the DAG drains.

        Only this (scheduler) thread touches ``values`` and ``pending``:
        inputs are gathered before submission, outputs recorded after
        completion, so worker tasks never share mutable scheduling
        state.
        """
        in_flight: Dict[Future, str] = {}
        failure: Optional[EnactmentError] = None

        def submit(name: str) -> None:
            processor = workflow.processors[name]
            port_values = gather_port_values(workflow, name, values)
            # Captured on the scheduler thread (where the enact span —
            # and, under the execution service, the job span — is
            # active); re-activated on the pool thread inside the task.
            span = current_span()

            def task() -> Tuple[Dict[str, Any], int]:
                with use_span(span):
                    return traced_firing(
                        trace,
                        name,
                        workflow.name,
                        lambda: fire_processor(processor, port_values, mapper),
                    )

            in_flight[pool.submit(task)] = name

        ready = sorted(name for name, deps in pending.items() if not deps)
        for name in ready:
            del pending[name]
            submit(name)
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            newly_ready: List[str] = []
            for future in done:
                name = in_flight.pop(future)
                try:
                    outputs, _ = future.result()
                except EnactmentError as exc:
                    # Remember the first failure; let in-flight siblings
                    # finish but submit nothing new.
                    if failure is None:
                        failure = exc
                    continue
                for port, value in outputs.items():
                    values[(name, port)] = value
                for dependent in dependents[name]:
                    deps = pending.get(dependent)
                    if deps is None:
                        continue
                    deps.discard(name)
                    if not deps:
                        newly_ready.append(dependent)
            if failure is None:
                for name in sorted(newly_ready):
                    del pending[name]
                    submit(name)
        if failure is not None:
            raise failure
