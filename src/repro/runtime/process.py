"""Multi-process sharded execution: the process-pool backend.

The thread :class:`~repro.runtime.service.ExecutionService` scales I/O
concurrency but leaves CPU-heavy annotation scoring and assertion
checking serialized on the GIL.  This backend runs the *shardable*
prefix of each compiled quality view — annotate -> enrich ->
item-local QA -> filter (see :func:`repro.qv.backend.stage_chain`) —
on a pool of forked worker processes, each owning a hash partition of
the data items and therefore of the annotation repositories (the memo
table): no cross-process locking, ever.  Collection-scoped stages
(classifier QAs, consolidation, actions) run in the parent over the
merged frontier.

Data flow, per job::

    submit()                      parent
      |  partition items by blake2b(data_id) % shards
      |  chunk each partition (config.chunk_size)
      v
    worker[shard] inbox  --wire-->  annotate -> enrich -> assert
      (mp.Queue, bytes)             (stage threads, streaming chunks)
      |                                          |
      |   <--wire-- part/stat/error messages  <--+
      v
    parent collector[shard]: merge frontier values in dataset order,
    run residual stages, package the QualityViewResult.

Chunks stream: a worker ships each chunk's frontier back as soon as it
clears the last shardable stage, while later chunks are still being
annotated — there is no per-wavefront barrier anywhere on the shardable
path.  Every inter-process payload crosses as a deterministic
``serving/wire.py`` message; the serial enactor remains the byte-equal
differential oracle (``tests/test_runtime_process.py``).

Crash isolation: queues are per *worker generation*.  A worker that
dies abruptly (``os._exit``, OOM kill, segfault) can take a queue's
internal semaphore down with it, so its inbox/outbox pair is abandoned
wholesale and the respawned worker gets fresh queues plus a fresh
parent-side collector thread — a wedged queue can never spread beyond
the generation that wedged it.  In-flight jobs touching the lost shard
are retried (within ``job_retries``) or dead-lettered with a
machine-readable :class:`WorkerLostError`, and the loss is emitted as a
structured ``runtime.worker_lost`` event.

Contract notes relative to the thread backend: the admission queue,
block/reject policies, ``drain``/``shutdown``, job retries,
dead-lettering, and the ``job.finished`` event are identical.
``submit_workflow`` is not supported (raw workflows carry no stage
plan); services must be registered on the framework *before* the
runtime is built (workers inherit the framework at fork time); and
``clear_cache`` broadcasts an ordered barrier so every worker resets
its transient repositories between batches, never mid-chunk.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.annotation.map import AnnotationMap
from repro.observability import (
    current_span,
    get_event_log,
    get_registry,
    start_span,
    use_span,
)
from repro.observability.forwarding import (
    publish_chunk_record,
    publish_worker_event,
    set_worker_gauge,
)
from repro.rdf import URIRef
from repro.runtime.config import POLICY_REJECT, RuntimeConfig
from repro.runtime.jobs import JobBatch, JobHandle
from repro.runtime.metrics import RuntimeStats, RuntimeStatsSnapshot
from repro.runtime.service import QueueFullError, RuntimeClosedError
from repro.runtime.shard import ShardSpec, chunked, partition
from repro.serving import wire
from repro.workflow.enactor import (
    EnactmentTrace,
    collect_workflow_outputs,
    enactment_telemetry,
    fire_processor,
    gather_port_values,
    traced_firing,
)

if TYPE_CHECKING:
    from repro.core.framework import QuratorFramework
    from repro.core.quality_view import QualityView

#: Enactment-strategy label of the parent's residual stages.
KIND_PROCESS = "process"

#: Parent-queue sentinel telling the dispatcher to exit.
_STOP = object()

#: Watchdog poll interval, seconds.
_WATCH_INTERVAL = 0.2

#: Collector poll interval, seconds (bounds generation turnover).
_POLL_INTERVAL = 0.25

#: Worker respawns per shard before the shard is declared dead.
_MAX_RESTARTS = 5


class WorkerLostError(RuntimeError):
    """A worker process died with chunks of this job outstanding.

    Machine-readable like :class:`QueueFullError`: ``details()`` names
    the shard, pid, and exit code so dead-letter triage and the CLI's
    stderr summary need no message parsing.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        pid: Optional[int] = None,
        exitcode: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.pid = pid
        self.exitcode = exitcode

    def details(self) -> Dict[str, Any]:
        """The loss as one JSON-ready dict."""
        return {
            "reason": "worker_lost",
            "shard": self.shard,
            "pid": self.pid,
            "exitcode": self.exitcode,
        }


def _empty_stage_value(port: str) -> Any:
    """The merged value of a boundary port no chunk reported on.

    Happens only for empty datasets (no chunks at all): annotation-map
    ports merge to an empty map, data-set ports to an empty list —
    exactly what the serial enactor produces over zero items.
    """
    if port.startswith("annotationMap"):
        return AnnotationMap()
    return []


class _PendingJob:
    """Parent-side state of one dispatched job (one attempt at a time)."""

    def __init__(
        self,
        handle: JobHandle,
        view: "QualityView",
        workflow,
        items: List[URIRef],
        shardable: Tuple[str, ...],
        attempts_left: int,
        submitter_span: Any,
    ) -> None:
        self.handle = handle
        self.view = view
        self.workflow = workflow
        self.items = items
        self.shardable = shardable
        self.attempts_left = attempts_left
        self.submitter_span = submitter_span
        self.fingerprint: str = workflow.source_fingerprint or workflow.name
        self.attempt = 0
        self.expected = 0
        self.received = 0
        self.shards_used: Set[int] = set()
        self.cache_lookups = 0
        self.cache_hits = 0
        #: (proc, port) -> {item -> the chunk map that owns it}.
        self.maps: Dict[Tuple[str, str], Dict[URIRef, AnnotationMap]] = {}
        #: (proc, port) -> surviving-item set (dataSet-kind frontiers).
        self.sets: Dict[Tuple[str, str], Set[URIRef]] = {}

    def reset_attempt(self) -> None:
        """Drop one attempt's partial state before a re-dispatch."""
        self.expected = 0
        self.received = 0
        self.shards_used.clear()
        self.cache_lookups = 0
        self.cache_hits = 0
        self.maps.clear()
        self.sets.clear()

    def absorb_part(self, document: Mapping[str, Any]) -> None:
        """Fold one worker part message into the accumulators."""
        for proc, port, value_doc in document["frontier"]:
            value = wire.decode_stage_value(value_doc)
            key = (proc, port)
            if isinstance(value, AnnotationMap):
                holders = self.maps.setdefault(key, {})
                for item in value.items():
                    holders[item] = value
            elif isinstance(value, list):
                self.sets.setdefault(key, set()).update(value)
        self.cache_lookups += int(document.get("cache_lookups", 0))
        self.cache_hits += int(document.get("cache_hits", 0))
        self.received += 1

    def merged_value(self, key: Tuple[str, str]) -> Any:
        """One boundary port's chunks merged back in dataset order."""
        if key in self.maps:
            holders = self.maps[key]
            merged = AnnotationMap()
            for item in self.items:
                chunk_map = holders.get(item)
                if chunk_map is None:
                    continue
                merged.add_item(item)
                for etype, value in chunk_map.evidence_for(item).items():
                    merged.set_evidence(item, etype, value)
                for name, tag in chunk_map.tags_for(item).items():
                    merged.set_tag(
                        item, name, tag.value,
                        syn_type=tag.syn_type, sem_type=tag.sem_type,
                    )
            return merged
        if key in self.sets:
            surviving = self.sets[key]
            return [item for item in self.items if item in surviving]
        return _empty_stage_value(key[1])


class ProcessExecutionService:
    """Concurrent quality-view execution on a sharded process pool.

    Same caller-facing contract as the thread
    :class:`~repro.runtime.service.ExecutionService` — obtained via
    ``framework.runtime(backend="process", shards=N)``, usable as a
    context manager, draining on exit.
    """

    def __init__(
        self,
        framework: "QuratorFramework",
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.framework = framework
        self.config = (config or RuntimeConfig()).validated()
        self.shards = self.config.effective_shards()
        self.stats = RuntimeStats(self.config.name)
        self.dead_letters: List[JobHandle] = []
        self.invoker = None
        if self.config.resilience is not None:
            from repro.resilience import ResilientInvoker

            self.invoker = ResilientInvoker(
                self.config.resilience, services=framework.services
            )
        get_registry().gauge(
            "repro_runtime_worker_pool_size",
            "Configured worker threads of the execution service.",
            labels=("runtime",),
        ).labels(runtime=self.config.name).set(self.shards)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "the process execution backend requires the 'fork' start "
                "method (workers inherit the framework); this platform "
                "does not provide it — use backend='thread'"
            ) from None
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.queue_size)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._closed = False
        self._job_counter = 0
        #: (job_id, attempt) -> _PendingJob, for part/error routing.
        self._pending: Dict[Tuple[int, int], _PendingJob] = {}
        #: Per shard: view fingerprints already shipped to that worker.
        self._shard_views: List[Set[str]] = [set() for _ in range(self.shards)]
        self._shard_dead: List[bool] = [False] * self.shards
        self._restarts = [0] * self.shards
        #: Queue generation per shard; bumped on respawn so stale
        #: collector threads retire and stale queues are abandoned.
        self._generation = [0] * self.shards
        self._inboxes: List[Any] = [None] * self.shards
        self._outboxes: List[Any] = [None] * self.shards
        self._workers: List[Any] = [None] * self.shards
        #: Set once the shutdown path has reaped every worker process;
        #: collectors use it as their drain-complete exit signal.
        self._reaped = threading.Event()
        for shard in range(self.shards):
            self._spawn(shard)
        set_worker_gauge(self.config.name, self.shards)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"{self.config.name}-dispatch", daemon=True,
        )
        self._watchdog_stop = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watch_loop,
            name=f"{self.config.name}-watchdog", daemon=True,
        )
        self._dispatcher.start()
        self._watchdog.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        view: "QualityView",
        items: Sequence[URIRef],
        *,
        clear_cache: bool = False,
        name: str = "",
        timeout: Optional[float] = None,
    ) -> JobHandle:
        """Queue one quality-view execution; returns its handle.

        Compilation (and the stage-plan split) happens eagerly so
        planning errors surface at submission.  ``clear_cache=True``
        enqueues an ordered clear barrier ahead of the job, so workers
        reset transient repositories after every previously submitted
        job's chunks and before this one's.
        """
        from repro.qv.backend import shardable_processors

        workflow = view.compile()
        self._apply_resilience(workflow)
        shardable = shardable_processors(workflow)
        if clear_cache:
            self.framework.repositories.clear_transient()
        handle = self._new_handle(name or f"qv-{view.name}")
        job = _PendingJob(
            handle,
            view,
            workflow,
            list(items),
            shardable,
            attempts_left=self.config.job_retries,
            submitter_span=current_span(),
        )
        self._enqueue(job, timeout, clear_first=clear_cache)
        return handle

    def submit_many(
        self,
        view: "QualityView",
        datasets: Sequence[Sequence[URIRef]],
        *,
        clear_cache: bool = True,
        name: str = "",
        timeout: Optional[float] = None,
    ) -> JobBatch:
        """Push N datasets through one view as one batch of jobs."""
        view.compile()
        if clear_cache:
            self.framework.repositories.clear_transient()
            self._enqueue_control("clear", timeout)
        prefix = name or f"qv-{view.name}"
        handles = [
            self.submit(
                view,
                dataset,
                clear_cache=False,
                name=f"{prefix}[{index}]",
                timeout=timeout,
            )
            for index, dataset in enumerate(datasets)
        ]
        return JobBatch(handles)

    def submit_workflow(self, workflow, inputs=None, **kwargs):
        """Unsupported here: raw workflows carry no shardable stage plan."""
        raise NotImplementedError(
            "the process backend runs quality-view jobs only; submit raw "
            "workflow enactments through backend='thread'"
        )

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no job is queued or running; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: self._outstanding == 0, timeout)

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the service; see the thread backend for the contract."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain(timeout)
        else:
            while True:
                try:
                    entry = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(entry, _PendingJob):
                    entry.handle.cancel()
                    self._job_done()
        self._queue.put(_STOP)
        self._watchdog_stop.set()
        for shard in range(self.shards):
            if not self._shard_dead[shard]:
                self._send(shard, {"kind": "stop"})
        deadline = time.monotonic() + self.config.worker_timeout
        for worker in self._workers:
            if worker is None:
                continue
            worker.join(max(0.0, deadline - time.monotonic()))
            if worker.is_alive():
                worker.terminate()
                worker.join(1.0)
        self._reaped.set()
        self._dispatcher.join(self.config.worker_timeout)
        self._watchdog.join(self.config.worker_timeout)
        set_worker_gauge(self.config.name, 0)

    def __enter__(self) -> "ProcessExecutionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=exc_info[0] is None)

    @property
    def closed(self) -> bool:
        """Whether the service still accepts submissions."""
        with self._lock:
            return self._closed

    @property
    def outstanding(self) -> int:
        """Jobs accepted and not yet finished (queued + running)."""
        with self._lock:
            return self._outstanding

    def queue_depth(self) -> int:
        """Jobs waiting in the parent admission queue right now."""
        return self._queue.qsize()

    def snapshot(self) -> RuntimeStatsSnapshot:
        """A point-in-time reading of the runtime's counters.

        Resilience counters cover the parent's residual stages only;
        worker-side invocation retries surface through the
        ``repro_runtime_proc_*`` chunk records instead.
        """
        with self._lock:
            outstanding = self._outstanding
        return self.stats.snapshot(
            invoker=self.invoker, outstanding=outstanding
        )

    # -- admission ---------------------------------------------------------

    def _apply_resilience(self, workflow) -> None:
        if self.invoker is not None:
            from repro.resilience import apply_resilience

            apply_resilience(workflow, self.invoker, self.config.resilience)

    def _new_handle(self, name: str) -> JobHandle:
        with self._lock:
            self._job_counter += 1
            job_id = self._job_counter
        handle = JobHandle(job_id, name=f"{name}#{job_id}")
        handle._on_cancel = self.stats.on_cancel
        return handle

    def _enqueue_control(self, kind: str, timeout: Optional[float]) -> None:
        """Queue a control marker behind previously submitted jobs."""
        with self._lock:
            if self._closed:
                raise RuntimeClosedError(
                    f"runtime {self.config.name!r} is shut down"
                )
        self._queue.put((kind,), timeout=timeout)

    def _enqueue(
        self, job: _PendingJob, timeout: Optional[float], clear_first: bool
    ) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeClosedError(
                    f"runtime {self.config.name!r} is shut down"
                )
            self._outstanding += 1
        if clear_first:
            self._queue.put(("clear",))
        try:
            if self.config.queue_policy == POLICY_REJECT:
                try:
                    self._queue.put_nowait(job)
                except queue.Full:
                    raise QueueFullError(
                        f"job queue is full ({self.config.queue_size}); "
                        f"retry later or use queue_policy='block'",
                        reason="queue_full",
                        queue_depth=self._queue.qsize(),
                        capacity=self.config.queue_size,
                    ) from None
            else:
                try:
                    self._queue.put(job, timeout=timeout)
                except queue.Full:
                    raise QueueFullError(
                        f"job queue stayed full for {timeout}s",
                        reason="queue_timeout",
                        queue_depth=self._queue.qsize(),
                        capacity=self.config.queue_size,
                    ) from None
        except QueueFullError:
            self._job_done()
            self.stats.on_reject()
            raise
        self.stats.on_submit()

    def _job_done(self) -> None:
        with self._idle:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._idle.notify_all()

    # -- worker pool -------------------------------------------------------

    def _spawn(self, shard: int) -> None:
        """Start a worker for a shard on a fresh queue generation."""
        spec = ShardSpec(index=shard, count=self.shards)
        inbox = self._ctx.Queue()
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(spec, self.config, self.framework, inbox, outbox),
            name=f"{self.config.name}-shard-{shard}",
            daemon=True,
        )
        process.start()
        with self._lock:
            generation = self._generation[shard]
            self._inboxes[shard] = inbox
            self._outboxes[shard] = outbox
            self._workers[shard] = process
        collector = threading.Thread(
            target=self._collect_loop,
            args=(shard, generation, outbox),
            name=f"{self.config.name}-collect-{shard}-g{generation}",
            daemon=True,
        )
        collector.start()

    def _send(self, shard: int, document: Mapping[str, Any]) -> None:
        with self._lock:
            inbox = self._inboxes[shard]
        try:
            inbox.put(wire.encode_message(document))
        except (ValueError, OSError):
            # The shard's queue generation was retired mid-send; the
            # watchdog retries or dead-letters everything it carried.
            return
        self._count_message(str(document["kind"]), "sent")

    def _count_message(self, kind: str, direction: str) -> None:
        get_registry().counter(
            "repro_runtime_proc_messages_total",
            "Inter-process messages by kind and direction.",
            labels=("message", "direction"),
        ).labels(message=kind, direction=direction).inc()

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            entry = self._queue.get()
            if entry is _STOP:
                return
            if isinstance(entry, tuple):
                if entry[0] == "clear":
                    for shard in range(self.shards):
                        if not self._shard_dead[shard]:
                            self._send(shard, {"kind": "clear"})
                continue
            job: _PendingJob = entry
            if not job.handle._try_start():
                self._job_done()
                continue
            self.stats.on_start()
            try:
                self._dispatch(job)
            except Exception as exc:  # noqa: BLE001 - dispatch fault boundary
                self._handle_job_failure(job, exc)

    def _dispatch(self, job: _PendingJob) -> None:
        """Ship one attempt's chunks; finalize directly when empty.

        Chunk documents are fully built (attempt stamped) before the
        pending registration, so a concurrent worker-loss retry can
        never relabel in-flight messages of a superseded attempt.
        """
        job.attempt += 1
        job.reset_attempt()
        messages: List[Tuple[int, Dict[str, Any]]] = []
        if job.shardable:
            seq = 0
            for shard, shard_items in enumerate(
                partition(job.items, self.shards)
            ):
                if not shard_items:
                    continue
                job.shards_used.add(shard)
                for chunk in chunked(shard_items, self.config.chunk_size):
                    messages.append((shard, {
                        "kind": "chunk",
                        "job": job.handle.job_id,
                        "attempt": job.attempt,
                        "seq": seq,
                        "fingerprint": job.fingerprint,
                        "items": [str(item) for item in chunk],
                    }))
                    seq += 1
        job.expected = len(messages)
        views_needed: List[int] = []
        with self._lock:
            for shard in sorted(job.shards_used):
                if self._shard_dead[shard]:
                    raise WorkerLostError(
                        f"shard {shard} exceeded its restart budget",
                        shard=shard,
                    )
            if messages:
                self._pending[(job.handle.job_id, job.attempt)] = job
            for shard in sorted(job.shards_used):
                if job.fingerprint not in self._shard_views[shard]:
                    self._shard_views[shard].add(job.fingerprint)
                    views_needed.append(shard)
        if not messages:
            self._finalize(job)
            return
        for shard in views_needed:
            self._send(shard, {
                "kind": "view",
                "fingerprint": job.fingerprint,
                "xml": job.view.to_xml(),
                "mode": job.workflow.compile_mode or "optimized",
                "processors": sorted(job.workflow.processors),
                "shardable": list(job.shardable),
            })
        for shard, document in messages:
            self._send(shard, document)

    # -- collection --------------------------------------------------------

    def _collect_loop(self, shard: int, generation: int, outbox) -> None:
        """Drain one worker generation's outbox until it is retired."""
        while True:
            try:
                payload = outbox.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                with self._lock:
                    stale = self._generation[shard] != generation
                if stale or self._reaped.is_set():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            try:
                document = wire.decode_message(payload)
            except wire.WireError:
                continue
            kind = document["kind"]
            self._count_message(kind, "received")
            if kind == "stop":
                return
            if kind == "stat":
                publish_chunk_record(document)
                continue
            if kind == "ready":
                continue
            if kind == "part":
                self._on_part(document)
            elif kind == "error":
                self._on_error(document)

    def _on_part(self, document: Mapping[str, Any]) -> None:
        key = (int(document["job"]), int(document["attempt"]))
        with self._lock:
            job = self._pending.get(key)
            if job is None:
                return
            job.absorb_part(document)
            complete = job.received >= job.expected
            if complete:
                self._pending.pop(key, None)
        if complete:
            self._finalize(job)

    def _on_error(self, document: Mapping[str, Any]) -> None:
        error_doc = document.get("error") or {}
        message = (
            f"{error_doc.get('type', 'Error')}: "
            f"{error_doc.get('message', 'worker stage failed')}"
        )
        if document.get("scope") == "view":
            # A view failed to compile on a worker: fail every pending
            # job that references the fingerprint, and forget it so a
            # retry re-ships the view message.
            fingerprint = document.get("fingerprint")
            with self._lock:
                jobs = [
                    (key, job) for key, job in self._pending.items()
                    if job.fingerprint == fingerprint
                ]
                for key, _ in jobs:
                    self._pending.pop(key, None)
                for views in self._shard_views:
                    views.discard(fingerprint)
            for _, job in jobs:
                self._handle_job_failure(job, RuntimeError(message))
            return
        key = (int(document["job"]), int(document["attempt"]))
        with self._lock:
            job = self._pending.pop(key, None)
            if job is not None and document.get("code") == "unknown_view":
                # The view message got lost with a dead queue; make the
                # retry re-ship it to this shard.
                self._shard_views[int(document["shard"])].discard(
                    job.fingerprint
                )
        if job is None:
            return
        processor = document.get("processor")
        if processor:
            message = f"processor {processor!r} failed on a worker: {message}"
        self._handle_job_failure(job, RuntimeError(message))

    def _handle_job_failure(self, job: _PendingJob, error: Exception) -> None:
        """Retry the whole job if budget remains, else dead-letter it."""
        if job.attempts_left > 0:
            job.attempts_left -= 1
            job.handle.metrics.retries += 1
            self.stats.on_job_retry()
            try:
                self._dispatch(job)
                return
            except Exception as exc:  # noqa: BLE001 - retry dispatch failed
                error = exc if isinstance(exc, WorkerLostError) else error
        handle = job.handle
        handle._fail(error)
        with self._lock:
            self.dead_letters.append(handle)
        self.stats.on_dead_letter()
        self.stats.on_finish(handle.metrics, failed=True)
        get_event_log().emit(
            "job.finished",
            job=handle.name,
            runtime=self.config.name,
            outcome="failed",
            retries=handle.metrics.retries,
            cache_lookups=handle.metrics.cache_lookups,
            cache_hits=handle.metrics.cache_hits,
        )
        self._job_done()

    def _finalize(self, job: _PendingJob) -> None:
        """Merge frontiers, run the residual stages, finish the handle."""
        handle = job.handle
        failed = False
        residual_error: Optional[Exception] = None
        with use_span(job.submitter_span):
            with start_span(
                f"job:{handle.name}",
                always=True,
                boundary=True,
                job=handle.name,
                runtime=self.config.name,
            ) as span:
                try:
                    result, trace = self._assemble(job)
                except Exception as exc:  # noqa: BLE001 - residual boundary
                    failed = True
                    residual_error = exc
                    span.end(status="error")
                else:
                    handle.metrics.record_trace(trace)
                    handle.metrics.cache_lookups = job.cache_lookups + int(
                        span.counter("cache.lookups")
                    )
                    handle.metrics.cache_hits = job.cache_hits + int(
                        span.counter("cache.hits")
                    )
                    result.metrics = handle.metrics
                    handle._finish(result)
        if failed:
            assert residual_error is not None
            self._handle_job_failure(job, residual_error)
            return
        self.stats.on_finish(handle.metrics, failed=False)
        get_event_log().emit(
            "job.finished",
            job=handle.name,
            runtime=self.config.name,
            outcome="completed",
            retries=handle.metrics.retries,
            cache_lookups=handle.metrics.cache_lookups,
            cache_hits=handle.metrics.cache_hits,
        )
        self._job_done()

    def _assemble(self, job: _PendingJob):
        """The parent's residual enactment over the merged frontier."""
        workflow = job.workflow
        region = set(job.shardable)
        values: Dict[Tuple[str, str], Any] = {
            ("", "dataSet"): list(job.items)
        }
        for link in workflow.boundary_links(region):
            key = (link.source.processor, link.source.port)
            if key not in values:
                values[key] = job.merged_value(key)
        trace = EnactmentTrace(workflow.name)
        with enactment_telemetry(workflow.name, KIND_PROCESS):
            for name in workflow.topological_order():
                if name in region:
                    continue
                processor = workflow.processors[name]
                port_values = gather_port_values(workflow, name, values)
                outputs, _ = traced_firing(
                    trace,
                    name,
                    workflow.name,
                    lambda p=processor, pv=port_values: fire_processor(p, pv),
                )
                for port, value in outputs.items():
                    values[(name, port)] = value
        outputs = collect_workflow_outputs(workflow, values)
        result = job.view._package(list(job.items), workflow, outputs)
        return result, trace

    # -- watchdog ----------------------------------------------------------

    def _watch_loop(self) -> None:
        while not self._watchdog_stop.wait(_WATCH_INTERVAL):
            for shard in range(self.shards):
                worker = self._workers[shard]
                if worker is None or worker.is_alive():
                    continue
                if self._shard_dead[shard]:
                    continue
                with self._lock:
                    if self._closed:
                        return
                self._on_worker_lost(shard, worker)

    def _on_worker_lost(self, shard: int, worker) -> None:
        """Retire the shard's queues, respawn, retry its in-flight jobs."""
        error = WorkerLostError(
            f"worker process of shard {shard} died "
            f"(pid {worker.pid}, exit code {worker.exitcode})",
            shard=shard,
            pid=worker.pid,
            exitcode=worker.exitcode,
        )
        publish_worker_event(
            "runtime.worker_lost",
            runtime=self.config.name,
            shard=shard,
            pid=worker.pid,
            exitcode=worker.exitcode,
        )
        get_registry().counter(
            "repro_runtime_proc_worker_restarts_total",
            "Worker processes respawned after an unexpected death.",
            labels=("runtime",),
        ).labels(runtime=self.config.name).inc()
        with self._lock:
            lost = [
                (key, job) for key, job in self._pending.items()
                if shard in job.shards_used
            ]
            for key, _ in lost:
                self._pending.pop(key, None)
            # Retire the generation: the stale collector exits on its
            # next poll, and the (possibly wedged) queues are abandoned.
            self._generation[shard] += 1
            self._shard_views[shard] = set()
            old_inbox = self._inboxes[shard]
            self._restarts[shard] += 1
            exhausted = self._restarts[shard] > _MAX_RESTARTS
            self._shard_dead[shard] = exhausted
        if not exhausted:
            self._spawn(shard)
        if old_inbox is not None:
            # Retired only after the replacement is installed, so
            # concurrent sends never see a closed queue; closing stops
            # the feeder from blocking interpreter exit on messages the
            # dead worker will never read.
            old_inbox.close()
            old_inbox.cancel_join_thread()
        set_worker_gauge(
            self.config.name,
            sum(
                1 for index, process in enumerate(self._workers)
                if process is not None
                and process.is_alive()
                and not self._shard_dead[index]
            ),
        )
        for _, job in lost:
            self._handle_job_failure(job, error)


# -- worker process ----------------------------------------------------------


class _WorkerView:
    """One compiled view on a worker: workflow, stage plan, frontier."""

    def __init__(self, workflow, shardable: Sequence[str]) -> None:
        from repro.qv.backend import STAGE_ORDER, stage_chain

        self.workflow = workflow
        self.region = set(shardable)
        chain = stage_chain(workflow)
        self.stages = {stage: chain.get(stage, ()) for stage in STAGE_ORDER}
        seen: Set[Tuple[str, str]] = set()
        self.frontier: List[Tuple[str, str]] = []
        for link in workflow.boundary_links(self.region):
            key = (link.source.processor, link.source.port)
            if key not in seen:
                seen.add(key)
                self.frontier.append(key)


class _Chunk:
    """One chunk's state flowing through the worker stage chain."""

    __slots__ = ("job", "attempt", "seq", "view", "values", "stage_seconds",
                 "cache_lookups", "cache_hits")

    def __init__(self, job: int, attempt: int, seq: int, view: _WorkerView,
                 items: List[URIRef]) -> None:
        self.job = job
        self.attempt = attempt
        self.seq = seq
        self.view = view
        self.values: Dict[Tuple[str, str], Any] = {("", "dataSet"): items}
        self.stage_seconds: Dict[str, float] = {}
        self.cache_lookups = 0
        self.cache_hits = 0


def _worker_main(spec, config, framework, inbox, outbox) -> None:
    """One shard worker: a streaming annotate -> enrich -> assert chain.

    Runs in a forked child.  The framework copy is private to this
    process; its annotation repositories hold exactly this shard's
    partition of the memo table (enforced by the repository manager's
    shard guard), so no lock is ever contended across processes.
    """
    from repro.observability import disable
    from repro.qv.backend import STAGE_ORDER

    # The forked registry/event-log would update counters nobody can
    # read (and could inherit a lock mid-acquisition from a parent
    # thread); telemetry leaves this process as wire records instead.
    disable()
    framework.repositories.configure_shard(spec)
    invoker = None
    if config.resilience is not None:
        from repro.resilience import ResilientInvoker

        invoker = ResilientInvoker(
            config.resilience, services=framework.services
        )

    views: Dict[str, _WorkerView] = {}
    stage_queues = {stage: queue.Queue() for stage in STAGE_ORDER}
    first_stage = stage_queues[STAGE_ORDER[0]]

    def emit(document: Mapping[str, Any]) -> None:
        outbox.put(wire.encode_message(document))

    def run_stage(stage: str, chunk: _Chunk) -> bool:
        """Fire one stage's processors over one chunk; False on error."""
        workflow = chunk.view.workflow
        started = time.perf_counter()
        before_lookups, before_hits = framework.repositories.lookup_stats()
        name = ""
        try:
            for name in chunk.view.stages[stage]:
                processor = workflow.processors[name]
                port_values = gather_port_values(workflow, name, chunk.values)
                outputs, _iterations, degradations = fire_processor(
                    processor, port_values
                )
                if degradations:
                    emit({
                        "kind": "stat",
                        "shard": spec.index,
                        "job": chunk.job,
                        "seq": chunk.seq,
                        "items": 0,
                        "status": "degraded",
                        "stage_seconds": {},
                        "cache_lookups": 0,
                        "cache_hits": 0,
                    })
                for port, value in outputs.items():
                    chunk.values[(name, port)] = value
        except Exception as exc:  # noqa: BLE001 - chunk fault boundary
            emit({
                "kind": "error",
                "shard": spec.index,
                "job": chunk.job,
                "attempt": chunk.attempt,
                "seq": chunk.seq,
                "processor": name,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            })
            return False
        after_lookups, after_hits = framework.repositories.lookup_stats()
        chunk.cache_lookups += after_lookups - before_lookups
        chunk.cache_hits += after_hits - before_hits
        chunk.stage_seconds[stage] = time.perf_counter() - started
        return True

    def ship(chunk: _Chunk) -> None:
        """Encode and send one finished chunk's frontier values."""
        try:
            frontier = [
                [proc, port,
                 wire.encode_stage_value(chunk.values.get((proc, port)))]
                for proc, port in chunk.view.frontier
            ]
        except wire.WireError as exc:
            emit({
                "kind": "error",
                "shard": spec.index,
                "job": chunk.job,
                "attempt": chunk.attempt,
                "seq": chunk.seq,
                "processor": "",
                "error": {"type": "WireError", "message": str(exc)},
            })
            return
        emit({
            "kind": "part",
            "shard": spec.index,
            "job": chunk.job,
            "attempt": chunk.attempt,
            "seq": chunk.seq,
            "frontier": frontier,
            "cache_lookups": chunk.cache_lookups,
            "cache_hits": chunk.cache_hits,
        })
        emit({
            "kind": "stat",
            "shard": spec.index,
            "job": chunk.job,
            "seq": chunk.seq,
            "items": len(chunk.values[("", "dataSet")]),
            "status": "completed",
            "stage_seconds": dict(chunk.stage_seconds),
            "cache_lookups": chunk.cache_lookups,
            "cache_hits": chunk.cache_hits,
        })

    def stage_worker(stage: str, downstream: Optional["queue.Queue"]) -> None:
        own = stage_queues[stage]
        while True:
            kind, payload = own.get()
            if kind in ("token", "stop"):
                if downstream is not None:
                    downstream.put((kind, payload))
                elif kind == "token":
                    payload.set()
                if kind == "stop":
                    return
                continue
            chunk: _Chunk = payload
            if not run_stage(stage, chunk):
                continue  # error already reported; drop the chunk
            if downstream is not None:
                downstream.put((kind, chunk))
            else:
                ship(chunk)

    threads = []
    for index, stage in enumerate(STAGE_ORDER):
        downstream = (
            stage_queues[STAGE_ORDER[index + 1]]
            if index + 1 < len(STAGE_ORDER) else None
        )
        thread = threading.Thread(
            target=stage_worker, args=(stage, downstream),
            name=f"shard{spec.index}-{stage}", daemon=True,
        )
        thread.start()
        threads.append(thread)

    def barrier() -> None:
        """Wait for every queued chunk to clear the whole chain."""
        done = threading.Event()
        first_stage.put(("token", done))
        done.wait()

    emit({"kind": "ready", "shard": spec.index})
    while True:
        try:
            document = wire.decode_message(inbox.get())
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        except wire.WireError:
            continue
        kind = document["kind"]
        if kind == "stop":
            barrier()
            first_stage.put(("stop", None))
            for thread in threads:
                thread.join(config.worker_timeout)
            return
        if kind == "clear":
            barrier()
            framework.repositories.clear_transient()
            continue
        if kind == "view":
            fingerprint = document["fingerprint"]
            if fingerprint in views:
                continue
            try:
                view = framework.quality_view(document["xml"])
                workflow = view.compile(
                    optimize=document.get("mode") != "reference"
                )
                if invoker is not None:
                    from repro.resilience import apply_resilience

                    apply_resilience(workflow, invoker, config.resilience)
                if sorted(workflow.processors) != document["processors"]:
                    raise RuntimeError(
                        f"worker compile of view {fingerprint!r} emitted "
                        f"{sorted(workflow.processors)}, parent expected "
                        f"{document['processors']}; non-default compile "
                        f"options are not supported on the process backend"
                    )
                views[fingerprint] = _WorkerView(
                    workflow, document["shardable"]
                )
            except Exception as exc:  # noqa: BLE001 - compile boundary
                emit({
                    "kind": "error",
                    "scope": "view",
                    "shard": spec.index,
                    "fingerprint": fingerprint,
                    "error": {
                        "type": type(exc).__name__, "message": str(exc)
                    },
                })
            continue
        if kind == "chunk":
            view = views.get(document["fingerprint"])
            if view is None:
                emit({
                    "kind": "error",
                    "shard": spec.index,
                    "job": document["job"],
                    "attempt": document["attempt"],
                    "seq": document["seq"],
                    "processor": "",
                    "code": "unknown_view",
                    "error": {
                        "type": "RuntimeError",
                        "message": (
                            f"chunk references unknown view "
                            f"{document['fingerprint']!r}"
                        ),
                    },
                })
                continue
            items = [URIRef(item) for item in document["items"]]
            first_stage.put((
                "chunk",
                _Chunk(
                    int(document["job"]),
                    int(document["attempt"]),
                    int(document["seq"]),
                    view,
                    items,
                ),
            ))
