"""The execution service: a job queue drained by a worker pool.

This is the throughput layer over the per-call facade: callers submit
quality-view executions (or raw workflow enactments) as *jobs* and get
back :class:`~repro.runtime.jobs.JobHandle` futures.  A bounded queue
provides admission control with a configurable full-queue policy
(block until a slot frees, or reject immediately); ``submit_many``
pushes N datasets through one compiled view, sharing one compilation
and one annotation-repository session; ``shutdown`` drains gracefully.

Concurrency contract: all jobs of one service share the framework's
annotation repositories.  Writes are serialized by the RDF store's
index lock (see ``repro.rdf.graph``), and annotator evidence is keyed
per data item, so jobs over distinct items compose; per-execution
cache *clearing* however is batch-scoped — the service clears
transient repositories at submission time (``clear_cache=True``),
never while other jobs are in flight mid-batch.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

from repro.observability import (
    current_span,
    get_event_log,
    get_registry,
    start_span,
    use_span,
)
from repro.rdf import URIRef
from repro.resilience import ResilientInvoker, apply_resilience
from repro.runtime.config import POLICY_REJECT, RuntimeConfig
from repro.runtime.jobs import Job, JobBatch, JobHandle
from repro.runtime.metrics import RuntimeStats, RuntimeStatsSnapshot
from repro.runtime.parallel import ParallelEnactor
from repro.workflow.enactor import Enactor
from repro.workflow.model import Workflow

if TYPE_CHECKING:
    from repro.core.framework import QuratorFramework
    from repro.core.quality_view import QualityView

#: Queue sentinel telling one worker to exit.
_STOP = object()


class QueueFullError(RuntimeError):
    """Admission refused: the job queue is at capacity.

    Carries the refusal machine-readably so callers (the serving
    layer's 429 path, CLI batch) can surface backpressure without
    parsing the message: ``reason`` is ``"queue_full"`` (reject policy)
    or ``"queue_timeout"`` (block policy that timed out), and
    ``queue_depth``/``capacity`` describe the queue at refusal time.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "queue_full",
        queue_depth: int = 0,
        capacity: int = 0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.queue_depth = queue_depth
        self.capacity = capacity

    def details(self) -> Dict[str, Any]:
        """The refusal as one JSON-ready dict."""
        return {
            "reason": self.reason,
            "queue_depth": self.queue_depth,
            "capacity": self.capacity,
        }


class RuntimeClosedError(RuntimeError):
    """The service no longer accepts submissions."""


class ExecutionService:
    """Concurrent quality-view execution over one framework instance.

    Usually obtained via :meth:`QuratorFramework.runtime`; usable as a
    context manager (drains and shuts down on exit).
    """

    def __init__(
        self,
        framework: "QuratorFramework",
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.framework = framework
        self.config = (config or RuntimeConfig()).validated()
        self.stats = RuntimeStats(self.config.name)
        get_registry().gauge(
            "repro_runtime_worker_pool_size",
            "Configured worker threads of the execution service.",
            labels=("runtime",),
        ).labels(runtime=self.config.name).set(self.config.workers)
        #: Jobs that failed permanently (their ``job_retries`` budget —
        #: possibly zero — exhausted); inspect after a batch to triage.
        self.dead_letters: List[JobHandle] = []
        self.invoker: Optional[ResilientInvoker] = None
        if self.config.resilience is not None:
            # One shared invoker: all jobs see the same circuit breakers
            # and the same resilience counters.
            self.invoker = ResilientInvoker(
                self.config.resilience, services=framework.services
            )
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.queue_size)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._closed = False
        self._job_counter = 0
        if self.config.parallel_enactment:
            self._enactor: Enactor = ParallelEnactor(
                max_workers=self.config.enactment_workers,
                iteration_workers=self.config.iteration_workers,
            )
        else:
            self._enactor = Enactor()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{self.config.name}-worker-{i}",
                daemon=True,
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        view: "QualityView",
        items: Sequence[URIRef],
        *,
        clear_cache: bool = False,
        name: str = "",
        timeout: Optional[float] = None,
    ) -> JobHandle:
        """Queue one quality-view execution; returns its handle.

        The view is compiled eagerly (compilation errors surface at
        submission, not on the worker).  ``clear_cache=True`` resets
        transient repositories *now*, at admission — only safe when no
        other job is mid-flight against the same framework.
        """
        self._apply_resilience(view.compile())
        if clear_cache:
            self.framework.repositories.clear_transient()
        dataset = list(items)
        handle = self._new_handle(name or f"qv-{view.name}")

        def thunk():
            result = view.run(dataset, enactor=self._enactor, clear_cache=False)
            result.metrics = handle.metrics
            return result, self._enactor.last_trace

        self._enqueue(Job(handle, thunk, submitter_span=current_span()), timeout)
        return handle

    def submit_many(
        self,
        view: "QualityView",
        datasets: Sequence[Sequence[URIRef]],
        *,
        clear_cache: bool = True,
        name: str = "",
        timeout: Optional[float] = None,
    ) -> JobBatch:
        """Push N datasets through one view as one batch of jobs.

        The compilation and the annotation-repository session are
        shared: the view compiles once, transient repositories clear
        once (before any job starts), and every job enacts the same
        compiled workflow over its own dataset.
        """
        view.compile()
        if clear_cache:
            self.framework.repositories.clear_transient()
        prefix = name or f"qv-{view.name}"
        handles = [
            self.submit(
                view,
                dataset,
                clear_cache=False,
                name=f"{prefix}[{index}]",
                timeout=timeout,
            )
            for index, dataset in enumerate(datasets)
        ]
        return JobBatch(handles)

    def submit_workflow(
        self,
        workflow: Workflow,
        inputs: Optional[Mapping[str, Any]] = None,
        *,
        name: str = "",
        timeout: Optional[float] = None,
    ) -> JobHandle:
        """Queue a raw workflow enactment; the result is its outputs."""
        self._apply_resilience(workflow)
        handle = self._new_handle(name or f"wf-{workflow.name}")
        inputs = dict(inputs or {})

        def thunk():
            enacted = self._enactor.enact(workflow, inputs)
            return enacted.outputs, enacted.trace

        self._enqueue(Job(handle, thunk, submitter_span=current_span()), timeout)
        return handle

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no job is queued or running; False on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._outstanding == 0, timeout
            )

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the service.

        ``drain=True`` completes every accepted job first; otherwise
        queued jobs are cancelled (running ones still finish).  Either
        way no new submissions are accepted afterwards.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain(timeout)
        else:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(job, Job):
                    job.handle.cancel()
                    self._job_done()
                self._queue.task_done()
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=exc_info[0] is None)

    @property
    def closed(self) -> bool:
        """Whether the service still accepts submissions."""
        with self._lock:
            return self._closed

    @property
    def outstanding(self) -> int:
        """Jobs accepted and not yet finished (queued + running)."""
        with self._lock:
            return self._outstanding

    def queue_depth(self) -> int:
        """Jobs sitting in the queue right now (approximate under load).

        Exposed for external admission control (the serving layer's
        ``/healthz`` and 429 bodies); prefer :meth:`snapshot` for a
        consistent multi-counter reading.
        """
        return self._queue.qsize()

    def snapshot(self) -> RuntimeStatsSnapshot:
        """A point-in-time reading of the runtime's counters."""
        with self._lock:
            outstanding = self._outstanding
        return self.stats.snapshot(
            invoker=self.invoker, outstanding=outstanding
        )

    # -- internals ---------------------------------------------------------

    def _apply_resilience(self, workflow: Workflow) -> None:
        """Route a workflow's service calls through the shared invoker."""
        if self.invoker is not None:
            apply_resilience(workflow, self.invoker, self.config.resilience)

    def _new_handle(self, name: str) -> JobHandle:
        with self._lock:
            self._job_counter += 1
            job_id = self._job_counter
        handle = JobHandle(job_id, name=f"{name}#{job_id}")
        handle._on_cancel = self.stats.on_cancel
        return handle

    def _enqueue(self, job: Job, timeout: Optional[float]) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeClosedError(
                    f"runtime {self.config.name!r} is shut down"
                )
            self._outstanding += 1
        try:
            if self.config.queue_policy == POLICY_REJECT:
                try:
                    self._queue.put_nowait(job)
                except queue.Full:
                    raise QueueFullError(
                        f"job queue is full ({self.config.queue_size}); "
                        f"retry later or use queue_policy='block'",
                        reason="queue_full",
                        queue_depth=self._queue.qsize(),
                        capacity=self.config.queue_size,
                    ) from None
            else:
                try:
                    self._queue.put(job, timeout=timeout)
                except queue.Full:
                    raise QueueFullError(
                        f"job queue stayed full for {timeout}s",
                        reason="queue_timeout",
                        queue_depth=self._queue.qsize(),
                        capacity=self.config.queue_size,
                    ) from None
        except QueueFullError:
            self._job_done()
            self.stats.on_reject()
            raise
        self.stats.on_submit()

    def _job_done(self) -> None:
        with self._idle:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._idle.notify_all()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            try:
                self._run_job(item)
            finally:
                self._job_done()
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        handle = job.handle
        if not handle._try_start():
            return  # cancelled while queued
        self.stats.on_start()
        # Whole-job retries run inline on this worker (never re-enqueued,
        # so a bounded queue cannot deadlock on its own retries).
        attempts = 1 + self.config.job_retries
        failed = False
        # The job span is `always=True`: it must exist even with tracing
        # off, because every annotation-store read below attributes onto
        # it (exact per-job cache counts — no cross-talk between
        # overlapping jobs, unlike the old repository-wide window
        # deltas).  Re-activating the submitter's span first parents the
        # job under the trace that queued it.
        with use_span(job.submitter_span):
            with start_span(
                f"job:{handle.name}",
                always=True,
                boundary=True,
                job=handle.name,
                runtime=self.config.name,
            ) as span:
                for attempt in range(1, attempts + 1):
                    # Reset the worker thread's trace slot so a failure
                    # before this attempt's trace exists cannot fold a
                    # previous run's timings in.
                    self._enactor.last_trace = None
                    try:
                        value, trace = job.thunk()
                    except Exception as exc:  # noqa: BLE001 - job fault boundary
                        handle.metrics.record_trace(self._enactor.last_trace)
                        if attempt < attempts:
                            handle.metrics.retries += 1
                            self.stats.on_job_retry()
                            continue
                        failed = True
                        handle._fail(exc)
                    except BaseException as exc:  # noqa: BLE001 - never retried
                        failed = True
                        handle.metrics.record_trace(self._enactor.last_trace)
                        handle._fail(exc)
                    else:
                        handle.metrics.record_trace(trace)
                        handle._finish(value)
                    break
                if failed:
                    span.end(status="error")
        if failed:
            with self._lock:
                self.dead_letters.append(handle)
            self.stats.on_dead_letter()
        handle.metrics.cache_lookups = int(span.counter("cache.lookups"))
        handle.metrics.cache_hits = int(span.counter("cache.hits"))
        self.stats.on_finish(handle.metrics, failed=failed)
        get_event_log().emit(
            "job.finished",
            job=handle.name,
            runtime=self.config.name,
            outcome="failed" if failed else "completed",
            retries=handle.metrics.retries,
            cache_lookups=handle.metrics.cache_lookups,
            cache_hits=handle.metrics.cache_hits,
        )
