"""Hash partitioning of data items across worker shards.

The process backend routes every data item to exactly one worker by a
stable digest of its identifier, and the same function decides which
annotation-repository partition owns the item's memo entries — so a
worker never needs cross-process locking to annotate or enrich its own
items.  Stability matters twice over: the assignment must be identical
across interpreter runs (Python's builtin ``hash`` is salted per
process, so it is useless here) and across the parent and its workers
(which route and verify with the same function).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def shard_of(data_id: str, shards: int) -> int:
    """The owning shard of one data item, in ``range(shards)``.

    Uses the first 8 bytes of BLAKE2b over the UTF-8 identifier — a
    keyless, process-independent digest — so the mapping is a pure
    function of ``(data_id, shards)``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return 0
    digest = hashlib.blake2b(
        str(data_id).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % shards


def partition(items: Sequence[T], shards: int) -> List[List[T]]:
    """Split items into per-shard lists, preserving input order.

    Every item lands in exactly one list (``result[shard_of(item)]``),
    and within each list the original relative order is kept — the
    property the parent's result assembly relies on to reconstruct
    dataset-ordered values byte-equal to a serial enactment.
    """
    buckets: List[List[T]] = [[] for _ in range(shards)]
    for item in items:
        buckets[shard_of(str(item), shards)].append(item)
    return buckets


def owners(items: Iterable[T], shards: int) -> Dict[T, int]:
    """Item -> owning shard, for routing checks and tests."""
    return {item: shard_of(str(item), shards) for item in items}


def chunked(items: Sequence[T], chunk_size: int) -> List[List[T]]:
    """Split one shard's items into bounded chunks (order preserved).

    Chunks are the unit of streaming hand-off: a worker pushes each
    chunk through its stage chain and ships the partial result back as
    soon as that chunk clears the last shardable stage, so the parent
    starts merging while later chunks are still being annotated.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(items[start:start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


@dataclass(frozen=True)
class ShardSpec:
    """One worker's identity within a sharded runtime."""

    index: int
    count: int

    def owns(self, data_id: str) -> bool:
        """Whether this shard's repositories own the item's memo entries."""
        return shard_of(data_id, self.count) == self.index
