"""The Qurator service space (paper Sec. 5, Fig. 5).

The paper deploys QA and annotation operators as Web services exporting
one common WSDL interface with a shared XML message schema, discovered
by Taverna's scavenger.  This package reproduces that architecture
in-process: every service has an endpoint URL, a WSDL descriptor, and an
``invoke(xml) -> xml`` entry point using the common message schema, plus
a fast native-call path the workflow engine uses once a service has been
resolved.
"""

from repro.services.messages import (
    AnnotationMapMessage,
    DataSetMessage,
    MessageError,
)
from repro.services.interface import (
    AnnotationService,
    QualityAssertionService,
    Service,
    ServiceFault,
)
from repro.services.registry import ServiceRegistry
from repro.services.wsdl import wsdl_for

__all__ = [
    "AnnotationMapMessage",
    "AnnotationService",
    "DataSetMessage",
    "MessageError",
    "QualityAssertionService",
    "Service",
    "ServiceFault",
    "ServiceRegistry",
    "wsdl_for",
]
