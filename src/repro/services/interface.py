"""Service wrappers exposing operators through the common interface.

Every Qurator service takes a ``DataSetMessage`` plus an
``AnnotationMapMessage`` and returns an ``AnnotationMapMessage`` — the
"same WSDL interface" of Sec. 5.  ``invoke_xml`` exercises the full
message path (serialise → process → serialise); ``invoke`` is the
native fast path the workflow enactor uses.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, Mapping, Optional

from repro.annotation.map import AnnotationMap
from repro.services.messages import AnnotationMapMessage, DataSetMessage
from repro.rdf import URIRef


class ServiceFault(RuntimeError):
    """The service-layer error envelope (a SOAP fault analogue).

    Carries the failing service's name and endpoint so retried or
    dead-lettered invocations stay debuggable from the trace alone, and
    keeps the underlying exception both as ``cause`` and as
    ``__cause__`` (raise sites use ``raise ... from exc``).
    """

    def __init__(
        self,
        service: str,
        message: str,
        endpoint: Optional[str] = None,
        cause: Optional[BaseException] = None,
    ) -> None:
        where = f" at {endpoint}" if endpoint else ""
        super().__init__(f"fault from service {service!r}{where}: {message}")
        self.service = service
        self.fault_message = message
        self.endpoint = endpoint
        self.cause = cause


class Service(abc.ABC):
    """A deployed Qurator service: an endpoint plus the common interface.

    The paper's services are WSDL web services; ``latency`` models the
    network round trip of one invocation (seconds slept before
    processing, 0 by default).  Throughput experiments use it to study
    the concurrent runtime under realistic remote-call conditions.
    """

    def __init__(self, name: str, concept: URIRef, endpoint: str) -> None:
        self.name = name
        #: The IQ-model class this service implements.
        self.concept = concept
        self.endpoint = endpoint
        #: Simulated WSDL round-trip time per invocation, in seconds.
        self.latency: float = 0.0
        #: Optional :class:`repro.resilience.FaultInjector` consulted on
        #: every round trip (may sleep or raise an injected fault).
        self.fault_injector: Optional[Any] = None

    def with_latency(self, seconds: float) -> "Service":
        """Set the simulated round-trip time; returns self for chaining."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.latency = seconds
        return self

    def _round_trip(self) -> None:
        """Pay one invocation's simulated network cost.

        When a fault injector is attached it runs first, so an injected
        fault costs nothing extra while injected latency stacks on top
        of the service's own round-trip time.
        """
        if self.fault_injector is not None:
            self.fault_injector.on_invocation(self)
        if self.latency > 0:
            time.sleep(self.latency)

    @abc.abstractmethod
    def invoke(
        self,
        dataset: DataSetMessage,
        amap: AnnotationMap,
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Process a data set + annotation map into a new annotation map."""

    def invoke_xml(self, dataset_xml: str, amap_xml: str) -> str:
        """The wire-format entry point used by the message-path tests."""
        try:
            dataset = DataSetMessage.from_xml(dataset_xml)
            amap = AnnotationMapMessage.from_xml(amap_xml).amap
            result = self.invoke(dataset, amap)
        except ServiceFault:
            raise
        except Exception as exc:
            raise ServiceFault(
                self.name, str(exc), endpoint=self.endpoint, cause=exc
            ) from exc
        return AnnotationMapMessage(result).to_xml()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} at {self.endpoint}>"


class QualityAssertionService(Service):
    """Exposes a :class:`QualityAssertionOperator` as a service.

    ``item_local`` declares that the operator's verdict for an item
    depends only on that item's own evidence vector — never on the
    rest of the collection.  The quality-view compiler's filter
    pushdown relies on it: an item-local QA may safely score a
    narrowed collection.  Collection-relative QAs (e.g. thresholds at
    avg ± stddev of the score distribution) must leave it False.
    """

    def __init__(
        self,
        name: str,
        concept: URIRef,
        endpoint: str,
        operator_factory: Callable[..., Any],
        item_local: bool = False,
    ) -> None:
        super().__init__(name, concept, endpoint)
        #: Builds the QA operator given the view's configuration
        #: (tag_name, tag_syn_type, tag_sem_type, variables).
        self.operator_factory = operator_factory
        #: Per-item verdicts only; see the class docstring.
        self.item_local = item_local

    def build_operator(self, **config: Any):
        """Instantiate the QA operator from view configuration."""

        return self.operator_factory(**config)

    def invoke(
        self,
        dataset: DataSetMessage,
        amap: AnnotationMap,
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Process a data set + annotation map into a new map.

        A batched invocation passes a list of member operator
        configurations under the ``"operators"`` context key (the
        compiler's QA-fusion pass emits these): one round trip, the
        member operators chained over the same restricted map.  QA
        operators read only evidence vectors, so the chained result
        carries exactly the tags the member-by-member invocations
        would have produced.
        """

        self._round_trip()
        config = dict(context or {})
        member_configs = config.pop("operators", None)
        restricted = amap.subset(dataset.items) if dataset.items else amap
        for item in dataset.items:
            restricted.add_item(item)
        if member_configs:
            result = restricted
            for member_config in member_configs:
                operator = self.build_operator(**dict(member_config))
                result = operator.execute(result)
            return result
        operator = self.build_operator(**config)
        return operator.execute(restricted)


class AnnotationService(Service):
    """Exposes an :class:`AnnotationFunction` as a service.

    The service computes evidence for the items in the data set and
    merges it into the annotation map; the caller (an Annotation
    operator or the compiled workflow) persists it to the repository.
    """

    def __init__(
        self,
        name: str,
        concept: URIRef,
        endpoint: str,
        function,
    ) -> None:
        super().__init__(name, concept, endpoint)
        self.function = function

    def invoke(
        self,
        dataset: DataSetMessage,
        amap: AnnotationMap,
        context: Optional[Mapping[str, Any]] = None,
    ) -> AnnotationMap:
        """Process a data set + annotation map into a new map."""

        self._round_trip()
        computed = self.function.annotate(
            list(dataset.items), set(self.function.provides), context
        )
        result = amap.copy()
        result.merge(computed)
        return result
