"""The common XML message schema shared by all Qurator services.

Paper Sec. 5: "all QA services export the same WSDL interface, using a
common XML schema for the input and output messages.  The schema is
effectively a concrete model for the data sets, evidence types and
annotation maps described earlier in abstract terms."

Two messages exist: ``DataSetMessage`` (an ordered set of data-item
URIs) and ``AnnotationMapMessage`` (the XML encoding of an
``AnnotationMap``: evidence entries plus QA tags).
"""

from __future__ import annotations

import base64
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.annotation.map import AnnotationMap, TagValue
from repro.rdf import Literal, URIRef

_QNS = "http://qurator.org/messages#"


class MessageError(ValueError):
    """Raised on malformed service messages."""


#: Characters that cannot be carried in XML 1.0 text (plus '\r', which
#: conforming parsers normalise to '\n', silently corrupting values).
_XML_UNSAFE = re.compile("[\x00-\x08\x0b\x0c\x0e-\x1f\r\x7f]")


def _element(tag: str, **attrib: str) -> ET.Element:
    return ET.Element(tag, {k: v for k, v in attrib.items() if v is not None})


def _encode_value(value: Any) -> Tuple[str, str]:
    """Encode a Python/RDF value as (text, type marker)."""
    if isinstance(value, Literal):
        value = value.value
    if isinstance(value, URIRef):
        return str(value), "uri"
    if isinstance(value, bool):
        return ("true" if value else "false"), "boolean"
    if isinstance(value, int):
        return str(value), "integer"
    if isinstance(value, float):
        return repr(value), "double"
    if value is None:
        return "", "null"
    text = str(value)
    if _XML_UNSAFE.search(text):
        # Control characters are illegal in XML 1.0 (and '\r' would be
        # normalised away by any conforming parser): base64-encode.
        encoded = base64.b64encode(text.encode("utf-8")).decode("ascii")
        return encoded, "string-b64"
    return text, "string"


def _decode_value(text: str, kind: str) -> Any:
    if kind == "uri":
        return URIRef(text)
    if kind == "boolean":
        return text == "true"
    if kind == "integer":
        return int(text)
    if kind == "double":
        return float(text)
    if kind == "null":
        return None
    if kind == "string":
        return text
    if kind == "string-b64":
        try:
            return base64.b64decode(text.encode("ascii")).decode("utf-8")
        except Exception as exc:
            raise MessageError(f"invalid base64 string payload: {exc}") from exc
    raise MessageError(f"unknown value type marker {kind!r}")


@dataclass
class DataSetMessage:
    """An ordered collection of data-item references."""

    items: List[URIRef] = field(default_factory=list)

    def to_xml(self) -> str:
        """Serialise the message to its XML wire form."""

        root = _element("DataSet", xmlns=_QNS)
        for item in self.items:
            child = ET.SubElement(root, "item")
            child.set("ref", str(item))
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "DataSetMessage":
        """Parse the XML wire form; MessageError on bad input."""

        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise MessageError(f"malformed DataSet message: {exc}") from exc
        if _local(root.tag) != "DataSet":
            raise MessageError(f"expected DataSet root, got {root.tag!r}")
        items = []
        for child in root:
            if _local(child.tag) != "item":
                raise MessageError(f"unexpected element {child.tag!r} in DataSet")
            ref = child.get("ref")
            if not ref:
                raise MessageError("DataSet item without a ref attribute")
            items.append(URIRef(ref))
        return cls(items)


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


@dataclass
class AnnotationMapMessage:
    """The XML encoding of an annotation map."""

    amap: AnnotationMap = field(default_factory=AnnotationMap)

    def to_xml(self) -> str:
        """Serialise the message to its XML wire form."""

        root = _element("AnnotationMap", xmlns=_QNS)
        for item in self.amap.items():
            entry = ET.SubElement(root, "entry")
            entry.set("item", str(item))
            for evidence_type, value in self.amap.evidence_for(item).items():
                text, kind = _encode_value(value)
                evidence = ET.SubElement(entry, "evidence")
                evidence.set("type", str(evidence_type))
                evidence.set("valueType", kind)
                evidence.text = text
            for tag_name, tag in self.amap.tags_for(item).items():
                text, kind = _encode_value(tag.value)
                tag_el = ET.SubElement(entry, "tag")
                tag_el.set("name", tag_name)
                tag_el.set("valueType", kind)
                if tag.syn_type is not None:
                    tag_el.set("synType", str(tag.syn_type))
                if tag.sem_type is not None:
                    tag_el.set("semType", str(tag.sem_type))
                tag_el.text = text
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "AnnotationMapMessage":
        """Parse the XML wire form; MessageError on bad input."""

        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise MessageError(f"malformed AnnotationMap message: {exc}") from exc
        if _local(root.tag) != "AnnotationMap":
            raise MessageError(f"expected AnnotationMap root, got {root.tag!r}")
        amap = AnnotationMap()
        for entry in root:
            if _local(entry.tag) != "entry":
                raise MessageError(f"unexpected element {entry.tag!r}")
            item_ref = entry.get("item")
            if not item_ref:
                raise MessageError("entry without an item attribute")
            item = URIRef(item_ref)
            amap.add_item(item)
            for child in entry:
                local = _local(child.tag)
                kind = child.get("valueType", "string")
                value = _decode_value(child.text or "", kind)
                if local == "evidence":
                    type_ref = child.get("type")
                    if not type_ref:
                        raise MessageError("evidence element without a type")
                    amap.set_evidence(item, URIRef(type_ref), value)
                elif local == "tag":
                    name = child.get("name")
                    if not name:
                        raise MessageError("tag element without a name")
                    syn = child.get("synType")
                    sem = child.get("semType")
                    amap.set_tag(
                        item,
                        name,
                        value,
                        syn_type=URIRef(syn) if syn else None,
                        sem_type=URIRef(sem) if sem else None,
                    )
                else:
                    raise MessageError(f"unexpected element {child.tag!r}")
        return cls(amap)
